//! The dynamic SQL value.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::datatype::DataType;
use crate::date::Date;
use crate::error::{HanaError, Result};

/// A single dynamically-typed SQL value.
///
/// `Value` implements a **total order** (NULLs first, then by type rank,
/// then by value; doubles via `total_cmp`) so it can serve directly as the
/// sort key of the ordered dictionaries in the column store (§3.1) and as
/// a grouping key in hash aggregation. `Eq`/`Hash` are consistent with
/// that order (`f64` is hashed by bit pattern).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 32- or 64-bit integer (both SQL INTEGER and BIGINT map here).
    Int(i64),
    /// Double-precision float.
    Double(f64),
    /// UTF-8 string.
    Varchar(String),
    /// Calendar date.
    Date(Date),
    /// Microseconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// The value's data type, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::BigInt),
            Value::Double(_) => Some(DataType::Double),
            Value::Varchar(_) => Some(DataType::Varchar),
            Value::Date(_) => Some(DataType::Date),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// Whether this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. Dates are exposed as
    /// their day number so range predicates work uniformly.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Bool(b) => Some(*b as i64 as f64),
            Value::Date(d) => Some(d.0 as f64),
            Value::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Integer view of the value, if it has one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            Value::Date(d) => Some(d.0 as i64),
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// String view (only for `Varchar`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view (only for `Bool`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank used to order values of different types in a total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 2, // numerics compare with each other
            Value::Date(_) => 3,
            Value::Timestamp(_) => 4,
            Value::Varchar(_) => 5,
        }
    }

    /// SQL three-valued comparison: `None` if either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp(other))
    }

    /// Add two values with SQL numeric promotion. NULL propagates.
    pub fn add(&self, other: &Value) -> Result<Value> {
        self.arith(other, "+", |a, b| a + b, i64::checked_add)
    }

    /// Subtract with SQL numeric promotion. NULL propagates.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        self.arith(other, "-", |a, b| a - b, i64::checked_sub)
    }

    /// Multiply with SQL numeric promotion. NULL propagates.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        self.arith(other, "*", |a, b| a * b, i64::checked_mul)
    }

    /// Divide; integer division by zero is an execution error, and
    /// integer division produces a double (HANA promotes to decimal).
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let (a, b) = (
            self.as_f64()
                .ok_or_else(|| HanaError::Execution(format!("cannot divide {self}")))?,
            other
                .as_f64()
                .ok_or_else(|| HanaError::Execution(format!("cannot divide by {other}")))?,
        );
        if b == 0.0 {
            return Err(HanaError::Execution("division by zero".into()));
        }
        Ok(Value::Double(a / b))
    }

    fn arith(
        &self,
        other: &Value,
        op: &str,
        f: impl Fn(f64, f64) -> f64,
        g: impl Fn(i64, i64) -> Option<i64>,
    ) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => g(*a, *b)
                .map(Value::Int)
                .ok_or_else(|| HanaError::Execution(format!("integer overflow in {a} {op} {b}"))),
            _ => {
                let (a, b) = (self.as_f64(), other.as_f64());
                match (a, b) {
                    (Some(a), Some(b)) => Ok(Value::Double(f(a, b))),
                    _ => Err(HanaError::Execution(format!(
                        "cannot apply '{op}' to {self} and {other}"
                    ))),
                }
            }
        }
    }

    /// SQL `LIKE` with `%` (any run) and `_` (any one char) wildcards.
    pub fn sql_like(&self, pattern: &str) -> Option<bool> {
        let s = match self {
            Value::Null => return None,
            Value::Varchar(s) => s.as_str(),
            _ => return Some(false),
        };
        Some(like_match(s.as_bytes(), pattern.as_bytes()))
    }

    /// Parse a literal of the requested type from text (used by the CSV
    /// loaders, the HDFS text format and the TPC-H generator).
    pub fn parse_typed(text: &str, ty: DataType) -> Result<Value> {
        if text.is_empty() || text == "\\N" || text.eq_ignore_ascii_case("null") {
            return Ok(Value::Null);
        }
        let bad = |t: &str| HanaError::Parse(format!("cannot parse '{text}' as {t}"));
        match ty {
            DataType::Bool => match text.to_ascii_lowercase().as_str() {
                "true" | "1" | "t" => Ok(Value::Bool(true)),
                "false" | "0" | "f" => Ok(Value::Bool(false)),
                _ => Err(bad("BOOLEAN")),
            },
            DataType::Int | DataType::BigInt => text
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| bad("INTEGER")),
            DataType::Double => text
                .parse::<f64>()
                .map(Value::Double)
                .map_err(|_| bad("DOUBLE")),
            DataType::Varchar => Ok(Value::Varchar(text.to_string())),
            DataType::Date => Date::parse(text).map(Value::Date),
            DataType::Timestamp => text
                .parse::<i64>()
                .map(Value::Timestamp)
                .map_err(|_| bad("TIMESTAMP")),
        }
    }

    /// Approximate heap + inline footprint in bytes; used by the
    /// row-storage baseline of the Figure 2 compression experiment.
    pub fn storage_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Double(_) | Value::Timestamp(_) => 8,
            Value::Date(_) => 4,
            Value::Varchar(s) => s.len().max(1),
        }
    }
}

/// Collapse `-0.0` to `0.0` so ordering, equality and hashing agree.
fn norm_zero(d: f64) -> f64 {
    if d == 0.0 {
        0.0
    } else {
        d
    }
}

/// Iterative `LIKE` matcher with backtracking over `%`.
fn like_match(s: &[u8], p: &[u8]) -> bool {
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == b'_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            star_s += 1;
            si = star_s;
            pi = star_p + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => norm_zero(*a).total_cmp(&norm_zero(*b)),
            (Int(a), Double(b)) => (*a as f64).total_cmp(&norm_zero(*b)),
            (Double(a), Int(b)) => norm_zero(*a).total_cmp(&(*b as f64)),
            (Varchar(a), Varchar(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => (1u8, b).hash(state),
            // Integral doubles hash like ints so Int(2) == Double(2.0)
            // hash consistently with equality.
            Value::Int(i) => (2u8, *i as f64).to_bits_hash(state),
            Value::Double(d) => (2u8, *d).to_bits_hash(state),
            Value::Varchar(s) => (5u8, s).hash(state),
            Value::Date(d) => (3u8, d).hash(state),
            Value::Timestamp(t) => (4u8, t).hash(state),
        }
    }
}

/// Helper to hash an `(tag, f64)` pair by bit pattern.
trait BitsHash {
    fn to_bits_hash<H: Hasher>(&self, state: &mut H);
}

impl BitsHash for (u8, f64) {
    fn to_bits_hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
        // Normalize -0.0 to 0.0 so equal values hash equally.
        let v = if self.1 == 0.0 { 0.0 } else { self.1 };
        v.to_bits().hash(state);
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => {
                if d.fract() == 0.0 && d.abs() < 1e15 {
                    write!(f, "{d:.1}")
                } else {
                    write!(f, "{d}")
                }
            }
            Value::Varchar(s) => f.write_str(s),
            Value::Date(d) => write!(f, "{d}"),
            Value::Timestamp(t) => write!(f, "ts:{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn total_order_nulls_first() {
        let mut vals = [
            Value::from("z"),
            Value::Null,
            Value::from(3i64),
            Value::from(1.5),
            Value::from(false),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(false));
        assert_eq!(vals[2], Value::Double(1.5));
        assert_eq!(vals[3], Value::Int(3));
        assert_eq!(vals[4], Value::from("z"));
    }

    #[test]
    fn int_double_cross_comparison() {
        assert_eq!(Value::Int(2), Value::Double(2.0));
        assert!(Value::Int(2) < Value::Double(2.5));
        assert!(Value::Double(1.9) < Value::Int(2));
        assert_eq!(h(&Value::Int(2)), h(&Value::Double(2.0)));
    }

    #[test]
    fn sql_cmp_is_three_valued() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn arithmetic_promotes_and_propagates_null() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).mul(&Value::Double(1.5)).unwrap(),
            Value::Double(3.0)
        );
        assert!(Value::Int(1).add(&Value::Null).unwrap().is_null());
        assert!(Value::from("x").add(&Value::Int(1)).is_err());
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert_eq!(
            Value::Int(3).div(&Value::Int(2)).unwrap(),
            Value::Double(1.5)
        );
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::Int(i64::MIN).sub(&Value::Int(1)).is_err());
    }

    #[test]
    fn like_wildcards() {
        let v = Value::from("HOUSEHOLD");
        assert_eq!(v.sql_like("HOUSEHOLD"), Some(true));
        assert_eq!(v.sql_like("HOUSE%"), Some(true));
        assert_eq!(v.sql_like("%HOLD"), Some(true));
        assert_eq!(v.sql_like("%USE%"), Some(true));
        assert_eq!(v.sql_like("H_USEHOLD"), Some(true));
        assert_eq!(v.sql_like("H_SEHOLD"), Some(false));
        assert_eq!(v.sql_like("%X%"), Some(false));
        assert_eq!(Value::Null.sql_like("%"), None);
        assert_eq!(Value::from("").sql_like("%"), Some(true));
        assert_eq!(Value::from("").sql_like("_"), Some(false));
    }

    #[test]
    fn parse_typed_round_trips() {
        assert_eq!(
            Value::parse_typed("42", DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::parse_typed("1995-06-17", DataType::Date).unwrap(),
            Value::Date(Date::parse("1995-06-17").unwrap())
        );
        assert!(Value::parse_typed("", DataType::Int).unwrap().is_null());
        assert!(Value::parse_typed("\\N", DataType::Double)
            .unwrap()
            .is_null());
        assert!(Value::parse_typed("xyz", DataType::Int).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Double(3.0).to_string(), "3.0");
        assert_eq!(Value::Double(3.25).to_string(), "3.25");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(h(&Value::Double(0.0)), h(&Value::Double(-0.0)));
        assert_eq!(Value::Double(0.0), Value::Double(-0.0));
    }
}
