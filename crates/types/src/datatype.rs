//! SQL data types of the platform's table model.

use std::fmt;

use crate::error::{HanaError, Result};

/// The SQL data types supported across the in-memory store, the extended
/// storage and remote (Hive) sources.
///
/// SDA performs data-type mappings between engines (§4.2 of the paper);
/// in this reproduction all engines share this enum, and the adapter layer
/// checks [`DataType::is_convertible_from`] when importing remote schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean flags (e.g. the dedicated aging flag of hybrid tables).
    Bool,
    /// 32-bit signed integer.
    Int,
    /// 64-bit signed integer.
    BigInt,
    /// 64-bit IEEE-754 floating point (`DOUBLE`).
    Double,
    /// Variable-length UTF-8 string (`VARCHAR`); length is advisory.
    Varchar,
    /// Calendar date.
    Date,
    /// Microseconds since the Unix epoch (`TIMESTAMP`).
    Timestamp,
}

impl DataType {
    /// Whether a value of `other` can be losslessly widened to `self`
    /// when schemas from different engines are mapped onto each other.
    pub fn is_convertible_from(self, other: DataType) -> bool {
        use DataType::*;
        self == other
            || matches!(
                (self, other),
                (BigInt, Int) | (Double, Int) | (Double, BigInt) | (Timestamp, Date)
            )
    }

    /// Whether the type is numeric (participates in SUM/AVG and
    /// arithmetic).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::BigInt | DataType::Double)
    }

    /// Parse a SQL type name as it appears in DDL, e.g. `VARCHAR(30)`,
    /// `INTEGER`, `DOUBLE`.
    pub fn parse_sql(name: &str) -> Result<DataType> {
        let upper = name.trim().to_ascii_uppercase();
        let base = upper.split('(').next().unwrap_or("").trim();
        match base {
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "INT" | "INTEGER" | "SMALLINT" | "TINYINT" => Ok(DataType::Int),
            "BIGINT" => Ok(DataType::BigInt),
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => Ok(DataType::Double),
            "VARCHAR" | "NVARCHAR" | "CHAR" | "STRING" | "TEXT" => Ok(DataType::Varchar),
            "DATE" => Ok(DataType::Date),
            "TIMESTAMP" | "SECONDDATE" => Ok(DataType::Timestamp),
            other => Err(HanaError::Parse(format!("unknown data type '{other}'"))),
        }
    }

    /// Canonical SQL spelling, used by `EXPLAIN` and catalog dumps.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INTEGER",
            DataType::BigInt => "BIGINT",
            DataType::Double => "DOUBLE",
            DataType::Varchar => "VARCHAR",
            DataType::Date => "DATE",
            DataType::Timestamp => "TIMESTAMP",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sql_accepts_aliases_and_lengths() {
        assert_eq!(
            DataType::parse_sql("VARCHAR(30)").unwrap(),
            DataType::Varchar
        );
        assert_eq!(DataType::parse_sql("integer").unwrap(), DataType::Int);
        assert_eq!(
            DataType::parse_sql("DECIMAL(15,2)").unwrap(),
            DataType::Double
        );
        assert_eq!(DataType::parse_sql(" date ").unwrap(), DataType::Date);
        assert!(DataType::parse_sql("BLOB").is_err());
    }

    #[test]
    fn widening_rules() {
        assert!(DataType::BigInt.is_convertible_from(DataType::Int));
        assert!(DataType::Double.is_convertible_from(DataType::BigInt));
        assert!(DataType::Timestamp.is_convertible_from(DataType::Date));
        assert!(!DataType::Int.is_convertible_from(DataType::BigInt));
        assert!(!DataType::Varchar.is_convertible_from(DataType::Int));
        assert!(DataType::Varchar.is_convertible_from(DataType::Varchar));
    }

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Double.is_numeric());
        assert!(!DataType::Varchar.is_numeric());
        assert!(!DataType::Date.is_numeric());
    }
}
