//! Table schemas and column definitions.

use std::collections::HashMap;
use std::fmt;

use crate::datatype::DataType;
use crate::error::{HanaError, Result};
use crate::value::Value;

/// One column of a table or stream schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, stored lower-cased for case-insensitive SQL lookup.
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
    /// Whether NULLs are admitted.
    pub nullable: bool,
}

impl ColumnDef {
    /// A nullable column.
    pub fn new(name: &str, data_type: DataType) -> ColumnDef {
        ColumnDef {
            name: name.to_ascii_lowercase(),
            data_type,
            nullable: true,
        }
    }

    /// A NOT NULL column.
    pub fn not_null(name: &str, data_type: DataType) -> ColumnDef {
        ColumnDef {
            nullable: false,
            ..ColumnDef::new(name, data_type)
        }
    }
}

/// An ordered set of columns with `O(1)` name lookup.
///
/// Column names are case-insensitive, mirroring the SQL layer.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    by_name: HashMap<String, usize>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns
    }
}
impl Eq for Schema {}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Schema> {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if by_name.insert(c.name.clone(), i).is_some() {
                return Err(HanaError::Catalog(format!(
                    "duplicate column name '{}'",
                    c.name
                )));
            }
        }
        Ok(Schema { columns, by_name })
    }

    /// Convenience constructor from `(name, type)` pairs; panics on
    /// duplicates (intended for tests and generated schemas).
    pub fn of(cols: &[(&str, DataType)]) -> Schema {
        Schema::new(cols.iter().map(|(n, t)| ColumnDef::new(n, *t)).collect())
            .expect("static schema must not contain duplicates")
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if let Some(&i) = self.by_name.get(name) {
            return Some(i);
        }
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Index of a column, or a catalog error naming the column.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| HanaError::Catalog(format!("unknown column '{name}'")))
    }

    /// The column definition at `idx`.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Validate a row against this schema: arity, NOT NULL constraints
    /// and type compatibility (with numeric widening).
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(HanaError::Execution(format!(
                "row has {} values but schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            match v.data_type() {
                None if !c.nullable => {
                    return Err(HanaError::Execution(format!(
                        "NULL violates NOT NULL constraint on '{}'",
                        c.name
                    )));
                }
                None => {}
                Some(t) if c.data_type.is_convertible_from(t) => {}
                // Int literals feed INTEGER columns; doubles stay doubles.
                Some(DataType::BigInt) if c.data_type == DataType::Int => {}
                Some(t) => {
                    return Err(HanaError::Execution(format!(
                        "value of type {t} not assignable to column '{}' of type {}",
                        c.name, c.data_type
                    )));
                }
            }
        }
        Ok(())
    }

    /// A new schema with every column name prefixed by `qualifier.`
    /// (used when joins need disambiguated output columns).
    pub fn qualified(&self, qualifier: &str) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| ColumnDef {
                    name: format!("{}.{}", qualifier.to_ascii_lowercase(), c.name),
                    data_type: c.data_type,
                    nullable: c.nullable,
                })
                .collect(),
        )
        .expect("qualification preserves uniqueness")
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Result<Schema> {
        let mut cols = self.columns.clone();
        cols.extend(other.columns.iter().cloned());
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
            if !c.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Varchar),
            ("balance", DataType::Double),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.require("missing").is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("A", DataType::Int),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn check_row_validates_arity_nullability_types() {
        let s = Schema::new(vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("name", DataType::Varchar),
        ])
        .unwrap();
        assert!(s.check_row(&[Value::Int(1), Value::from("x")]).is_ok());
        assert!(s.check_row(&[Value::Int(1), Value::Null]).is_ok());
        assert!(s.check_row(&[Value::Null, Value::from("x")]).is_err());
        assert!(s.check_row(&[Value::Int(1)]).is_err());
        assert!(s
            .check_row(&[Value::from("oops"), Value::from("x")])
            .is_err());
    }

    #[test]
    fn qualification_and_join() {
        let a = sample().qualified("t");
        assert_eq!(a.index_of("t.id"), Some(0));
        let b = Schema::of(&[("other", DataType::Int)]);
        let j = a.join(&b).unwrap();
        assert_eq!(j.len(), 4);
        assert_eq!(j.index_of("other"), Some(3));
    }

    #[test]
    fn display_renders_ddl_like() {
        let s = Schema::new(vec![ColumnDef::not_null("id", DataType::Int)]).unwrap();
        assert_eq!(s.to_string(), "(id INTEGER NOT NULL)");
    }
}
