//! The platform-wide error type.
//!
//! A single error enum is shared across the workspace so that errors can
//! flow from the extended storage, the stream processor or a remote Hadoop
//! source up through the federated query processor without lossy
//! conversions. Each variant corresponds to one subsystem of the paper's
//! architecture (Figure 1).

use std::fmt;

/// Convenience alias used by every crate in the workspace.
pub type Result<T> = std::result::Result<T, HanaError>;

/// Errors raised anywhere in the data platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HanaError {
    /// Catalog-level problems: unknown/duplicate tables, schema mismatches.
    Catalog(String),
    /// SQL or CCL lexing/parsing failures, with a human-readable position.
    Parse(String),
    /// Query planning/optimization failures (unresolved columns, …).
    Plan(String),
    /// Runtime failures during (local) query execution.
    Execution(String),
    /// Failures in the in-memory column/row stores.
    Storage(String),
    /// Transaction manager failures: conflicts, aborted transactions,
    /// two-phase-commit participants voting no.
    Transaction(String),
    /// Permanent failures reported by a remote source reached through
    /// SDA (extended storage, Hive, MapReduce): schema mismatches,
    /// missing driver classes, malformed remote state. Retrying will
    /// not help; per §3.1 of the paper, any query touching a failed
    /// extended store aborts with this error.
    Remote(String),
    /// A remote call exceeded its deadline budget. Retryable — the
    /// remote may simply be slow, and a later attempt (or a wider
    /// deadline) can succeed.
    RemoteTimeout(String),
    /// A remote source is temporarily unreachable (connection refused,
    /// source flapping, circuit-breaker probe failed). Retryable.
    RemoteUnavailable(String),
    /// Event-stream-processor failures (bad CCL, closed streams).
    Stream(String),
    /// Underlying I/O problems (page files, HDFS simulator, WAL).
    Io(String),
    /// Invalid configuration (remote sources, cache validity, adapters).
    Config(String),
    /// Feature outside the supported SQL/CCL/HiveQL subset.
    Unsupported(String),
    /// Authentication / authorization failures from the platform's single
    /// credential control (§2 "Value").
    Security(String),
    /// Admission control rejected or timed out a statement because its
    /// workload class is at capacity (queue full or queue-timeout
    /// exceeded). Retryable: the overload is transient by definition —
    /// backing off and resubmitting is the intended client response.
    Overloaded(String),
}

impl HanaError {
    /// Short subsystem tag, used by log output and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            HanaError::Catalog(_) => "catalog",
            HanaError::Parse(_) => "parse",
            HanaError::Plan(_) => "plan",
            HanaError::Execution(_) => "execution",
            HanaError::Storage(_) => "storage",
            HanaError::Transaction(_) => "transaction",
            HanaError::Remote(_) => "remote",
            HanaError::RemoteTimeout(_) => "remote_timeout",
            HanaError::RemoteUnavailable(_) => "remote_unavailable",
            HanaError::Stream(_) => "stream",
            HanaError::Io(_) => "io",
            HanaError::Config(_) => "config",
            HanaError::Unsupported(_) => "unsupported",
            HanaError::Security(_) => "security",
            HanaError::Overloaded(_) => "overloaded",
        }
    }

    /// The error message without the subsystem tag.
    pub fn message(&self) -> &str {
        match self {
            HanaError::Catalog(m)
            | HanaError::Parse(m)
            | HanaError::Plan(m)
            | HanaError::Execution(m)
            | HanaError::Storage(m)
            | HanaError::Transaction(m)
            | HanaError::Remote(m)
            | HanaError::RemoteTimeout(m)
            | HanaError::RemoteUnavailable(m)
            | HanaError::Stream(m)
            | HanaError::Io(m)
            | HanaError::Config(m)
            | HanaError::Unsupported(m)
            | HanaError::Security(m)
            | HanaError::Overloaded(m) => m,
        }
    }

    /// A workload-management rejection: the statement's class is at
    /// capacity and the queue is full or the wait timed out (retryable).
    pub fn overloaded(msg: impl Into<String>) -> HanaError {
        HanaError::Overloaded(msg.into())
    }

    /// A permanent remote failure (will not succeed on retry).
    pub fn remote(msg: impl Into<String>) -> HanaError {
        HanaError::Remote(msg.into())
    }

    /// A remote call that ran out of deadline budget (retryable).
    pub fn remote_timeout(msg: impl Into<String>) -> HanaError {
        HanaError::RemoteTimeout(msg.into())
    }

    /// A temporarily unreachable remote source (retryable).
    pub fn remote_unavailable(msg: impl Into<String>) -> HanaError {
        HanaError::RemoteUnavailable(msg.into())
    }

    /// Whether a later attempt at the same operation can plausibly
    /// succeed. The federation layer's retry loop keys off this: only
    /// timeouts and transient unavailability are worth the backoff —
    /// everything else (parse errors, schema mismatches, permanent
    /// remote failures) fails immediately.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            HanaError::RemoteTimeout(_)
                | HanaError::RemoteUnavailable(_)
                | HanaError::Overloaded(_)
        )
    }

    /// Whether this error originated at a remote source (any of the
    /// three remote classes: permanent, timeout, unavailable).
    pub fn is_remote(&self) -> bool {
        matches!(
            self,
            HanaError::Remote(_) | HanaError::RemoteTimeout(_) | HanaError::RemoteUnavailable(_)
        )
    }
}

impl fmt::Display for HanaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind(), self.message())
    }
}

impl std::error::Error for HanaError {}

impl From<std::io::Error> for HanaError {
    fn from(e: std::io::Error) -> Self {
        HanaError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = HanaError::Remote("hive connection refused".into());
        assert_eq!(e.to_string(), "[remote] hive connection refused");
        assert_eq!(e.kind(), "remote");
        assert_eq!(e.message(), "hive connection refused");
    }

    #[test]
    fn retryability_taxonomy() {
        assert!(HanaError::remote_timeout("slow").is_retryable());
        assert!(HanaError::remote_unavailable("down").is_retryable());
        assert!(!HanaError::remote("bad schema").is_retryable());
        assert!(!HanaError::Parse("nope".into()).is_retryable());
        assert!(HanaError::overloaded("olap queue full").is_retryable());
        assert!(!HanaError::overloaded("olap queue full").is_remote());
        assert_eq!(HanaError::overloaded("x").kind(), "overloaded");
        for e in [
            HanaError::remote("x"),
            HanaError::remote_timeout("x"),
            HanaError::remote_unavailable("x"),
        ] {
            assert!(e.is_remote());
        }
        assert!(!HanaError::Catalog("x".into()).is_remote());
        assert_eq!(HanaError::remote_timeout("x").kind(), "remote_timeout");
        assert_eq!(
            HanaError::remote_unavailable("x").kind(),
            "remote_unavailable"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: HanaError = io.into();
        assert_eq!(e.kind(), "io");
        assert!(e.message().contains("gone"));
    }

    #[test]
    fn all_kinds_are_distinct() {
        let errs = [
            HanaError::Catalog(String::new()),
            HanaError::Parse(String::new()),
            HanaError::Plan(String::new()),
            HanaError::Execution(String::new()),
            HanaError::Storage(String::new()),
            HanaError::Transaction(String::new()),
            HanaError::Remote(String::new()),
            HanaError::RemoteTimeout(String::new()),
            HanaError::RemoteUnavailable(String::new()),
            HanaError::Stream(String::new()),
            HanaError::Io(String::new()),
            HanaError::Config(String::new()),
            HanaError::Unsupported(String::new()),
            HanaError::Security(String::new()),
            HanaError::Overloaded(String::new()),
        ];
        let mut kinds: Vec<_> = errs.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), errs.len());
    }
}
