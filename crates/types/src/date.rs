//! A minimal proleptic-Gregorian calendar date.
//!
//! TPC-H data, the time-series tables of Figure 2 and the aging mechanism
//! of §3.1 all need date arithmetic, but none of it needs time zones or
//! leap seconds, so we implement the classic civil-date conversion
//! (Howard Hinnant's algorithm) over an `i32` day count instead of pulling
//! in a calendar crate.

use std::fmt;

use crate::error::{HanaError, Result};

/// A calendar date stored as days since the Unix epoch (1970-01-01).
///
/// Ordering, hashing and equality follow the day count, so `Date` can be
/// used directly as a dictionary-encoded column value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Date(pub i32);

impl Date {
    /// Construct from a civil `(year, month, day)` triple.
    ///
    /// Months are 1-based. Out-of-range months/days are *not* validated
    /// beyond what the conversion needs; use [`Date::parse`] for validated
    /// input.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Date {
        // Days-from-civil (Hinnant). Shift so the year starts in March.
        let y = if m <= 2 { y - 1 } else { y };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as i64; // [0, 399]
        let mp = (m as i64 + 9) % 12; // [0, 11], March = 0
        let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        Date((era as i64 * 146_097 + doe - 719_468) as i32)
    }

    /// Convert back to a civil `(year, month, day)` triple.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let z = self.0 as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
        let y = if m <= 2 { y + 1 } else { y };
        (y as i32, m, d)
    }

    /// Parse an ISO `YYYY-MM-DD` string, validating month and day ranges.
    pub fn parse(s: &str) -> Result<Date> {
        let bad = || HanaError::Parse(format!("invalid date literal '{s}', expected YYYY-MM-DD"));
        let mut it = s.split('-');
        let y: i32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let m: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return Err(bad());
        }
        let date = Date::from_ymd(y, m, d);
        // Reject day overflow like February 30th by round-tripping.
        if date.to_ymd() != (y, m, d) {
            return Err(bad());
        }
        Ok(date)
    }

    /// The year component.
    pub fn year(self) -> i32 {
        self.to_ymd().0
    }

    /// The month component (1-based).
    pub fn month(self) -> u32 {
        self.to_ymd().1
    }

    /// The day-of-month component (1-based).
    pub fn day(self) -> u32 {
        self.to_ymd().2
    }

    /// This date plus `days` (may be negative).
    pub fn add_days(self, days: i32) -> Date {
        Date(self.0 + days)
    }

    /// Add whole months, clamping the day to the target month's length
    /// (matching SQL `ADD_MONTHS` semantics).
    pub fn add_months(self, months: i32) -> Date {
        let (y, m, d) = self.to_ymd();
        let total = y * 12 + (m as i32 - 1) + months;
        let (ny, nm) = (total.div_euclid(12), total.rem_euclid(12) as u32 + 1);
        let max_d = days_in_month(ny, nm);
        Date::from_ymd(ny, nm, d.min(max_d))
    }
}

/// Number of days in the given month of the given year.
fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month out of range"),
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).0, 0);
        assert_eq!(Date(0).to_ymd(), (1970, 1, 1));
    }

    #[test]
    fn round_trip_range() {
        // Every day over ~60 years round-trips through civil conversion.
        for day in -10_000..25_000 {
            let d = Date(day);
            let (y, m, dd) = d.to_ymd();
            assert_eq!(Date::from_ymd(y, m, dd), d);
        }
    }

    #[test]
    fn parse_and_display() {
        let d = Date::parse("1995-03-15").unwrap();
        assert_eq!(d.to_string(), "1995-03-15");
        assert_eq!(d.year(), 1995);
        assert_eq!(d.month(), 3);
        assert_eq!(d.day(), 15);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "1995",
            "1995-13-01",
            "1995-02-30",
            "95-1-1-1",
            "abcd-ef-gh",
        ] {
            assert!(Date::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn leap_years() {
        assert!(Date::parse("2000-02-29").is_ok());
        assert!(Date::parse("1900-02-29").is_err());
        assert!(Date::parse("1996-02-29").is_ok());
        assert!(Date::parse("1995-02-29").is_err());
    }

    #[test]
    fn add_months_clamps() {
        let d = Date::parse("1995-01-31").unwrap();
        assert_eq!(d.add_months(1).to_string(), "1995-02-28");
        assert_eq!(d.add_months(3).to_string(), "1995-04-30");
        assert_eq!(d.add_months(12).to_string(), "1996-01-31");
        assert_eq!(d.add_months(-1).to_string(), "1994-12-31");
    }

    #[test]
    fn ordering_follows_calendar() {
        assert!(Date::parse("1994-12-31").unwrap() < Date::parse("1995-01-01").unwrap());
    }
}
