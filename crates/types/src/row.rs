//! Row representation shared by the executors.

use std::fmt;

use crate::value::Value;

/// A single tuple. A thin newtype over `Vec<Value>` so the executors can
/// attach row-level helpers without exposing the representation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// An empty row.
    pub fn new() -> Row {
        Row(Vec::new())
    }

    /// Build from any iterator of values.
    pub fn from_values<I: IntoIterator<Item = Value>>(vals: I) -> Row {
        Row(vals.into_iter().collect())
    }

    /// The values of this row.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the row has no values.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value at `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// Concatenate two rows (join output), consuming both.
    pub fn concat(mut self, other: Row) -> Row {
        self.0.extend(other.0);
        self
    }

    /// Project the row to the given column indices.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Render as a delimited text line (the HDFS text file format).
    pub fn to_delimited(&self, sep: char) -> String {
        let mut out = String::new();
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                out.push(sep);
            }
            if v.is_null() {
                out.push_str("\\N");
            } else {
                out.push_str(&v.to_string());
            }
        }
        out
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.to_delimited(','))
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_and_project() {
        let a = Row::from_values([Value::Int(1), Value::from("x")]);
        let b = Row::from_values([Value::Double(2.5)]);
        let j = a.concat(b);
        assert_eq!(j.len(), 3);
        let p = j.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Double(2.5), Value::Int(1)]);
    }

    #[test]
    fn delimited_escapes_null() {
        let r = Row::from_values([Value::Int(1), Value::Null, Value::from("a|b")]);
        assert_eq!(r.to_delimited('|'), "1|\\N|a|b");
    }
}
