//! Query result sets.

use std::fmt;

use crate::error::{HanaError, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// The materialized result of a query: an output schema plus rows.
///
/// This is what `HanaPlatform::execute_sql` hands back to applications —
/// whether the rows came from the in-memory store, the extended storage,
/// an ESP window or a federated Hive subquery.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResultSet {
    /// Output schema (column names may be expression aliases).
    pub schema: Schema,
    /// The result rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// An empty result with the given schema.
    pub fn empty(schema: Schema) -> ResultSet {
        ResultSet {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build from a schema and rows.
    pub fn new(schema: Schema, rows: Vec<Row>) -> ResultSet {
        ResultSet { schema, rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single scalar of a one-row, one-column result (aggregates).
    pub fn scalar(&self) -> Result<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Ok(&self.rows[0][0])
        } else {
            Err(HanaError::Execution(format!(
                "expected scalar result, got {} rows x {} cols",
                self.rows.len(),
                self.schema.len()
            )))
        }
    }

    /// All values of the named column.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.require(name)?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Approximate payload size in bytes (sum of per-value storage
    /// footprints) — the `bytes` figure operators report into query
    /// profiles.
    pub fn approx_bytes(&self) -> u64 {
        self.rows
            .iter()
            .flat_map(|r| r.values())
            .map(|v| v.storage_bytes() as u64)
            .sum()
    }

    /// Sort rows by the given column indices ascending (test helper —
    /// makes unordered results comparable).
    pub fn sorted_by(mut self, cols: &[usize]) -> ResultSet {
        self.rows.sort_by(|a, b| {
            cols.iter()
                .map(|&c| a[c].cmp(&b[c]))
                .find(|o| !o.is_eq())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self
    }
}

impl fmt::Display for ResultSet {
    /// Pretty-print as an aligned ASCII table, the way SAP HANA Studio
    /// would render a result grid.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.to_ascii_uppercase())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        sep(f)?;
        write!(f, "|")?;
        for (h, w) in headers.iter().zip(&widths) {
            write!(f, " {h:w$} |")?;
        }
        writeln!(f)?;
        sep(f)?;
        for row in &cells {
            write!(f, "|")?;
            for (c, w) in row.iter().zip(&widths) {
                write!(f, " {c:w$} |")?;
            }
            writeln!(f)?;
        }
        sep(f)?;
        write!(f, "{} row(s)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;

    fn rs() -> ResultSet {
        ResultSet::new(
            Schema::of(&[("id", DataType::Int), ("name", DataType::Varchar)]),
            vec![
                Row::from_values([Value::Int(2), Value::from("beta")]),
                Row::from_values([Value::Int(1), Value::from("alpha")]),
            ],
        )
    }

    #[test]
    fn scalar_accessor() {
        let one = ResultSet::new(
            Schema::of(&[("cnt", DataType::BigInt)]),
            vec![Row::from_values([Value::Int(7)])],
        );
        assert_eq!(one.scalar().unwrap(), &Value::Int(7));
        assert!(rs().scalar().is_err());
    }

    #[test]
    fn column_extraction_and_sorting() {
        let sorted = rs().sorted_by(&[0]);
        assert_eq!(
            sorted.column("name").unwrap(),
            vec![Value::from("alpha"), Value::from("beta")]
        );
        assert!(sorted.column("nope").is_err());
    }

    #[test]
    fn display_renders_grid() {
        let out = rs().to_string();
        assert!(out.contains("| ID | NAME"), "got:\n{out}");
        assert!(out.contains("2 row(s)"));
    }
}
