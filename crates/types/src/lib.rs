//! # hana-types
//!
//! Shared foundation types for the `hana-data-platform` reproduction of
//! *"SAP HANA — From Relational OLAP Database to Big Data Infrastructure"*
//! (EDBT 2015): SQL values, data types, schemas, rows, result sets and the
//! platform-wide error enum.
//!
//! Every other crate in the workspace builds on these definitions, so they
//! are deliberately dependency-light and allocation-conscious: [`Value`]
//! carries small scalars inline, comparisons never allocate, and
//! [`Schema`] lookups are `O(1)` after construction.

mod agg;
mod datatype;
mod date;
mod error;
mod resultset;
mod row;
mod schema;
mod value;

pub use agg::{Accumulator, AggFunc};
pub use datatype::DataType;
pub use date::Date;
pub use error::{HanaError, Result};
pub use resultset::ResultSet;
pub use row::Row;
pub use schema::{ColumnDef, Schema};
pub use value::Value;
