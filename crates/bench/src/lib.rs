//! # hana-bench
//!
//! Shared harness code for the benchmark suite: the TPC-H federation
//! world of the paper's §4.4 experiment (HANA + Hive side-by-side with
//! the paper's table placement) and the measurement loop that
//! regenerates Figures 14 and 15.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hana_core::{HanaPlatform, Session};
use hana_hadoop::{Hdfs, Hive, MrCluster, MrConfig, MrFunctionRegistry};
use hana_tpch::{federated_tables, local_tables, queries, TpchQuery};
use hana_types::Result;

/// The side-by-side setup of Figure 11 loaded with TPC-H data.
pub struct TpchWorld {
    /// The platform (single point of access).
    pub hana: Arc<HanaPlatform>,
    /// An administrator session.
    pub session: Session,
    /// The attached Hive instance.
    pub hive: Arc<Hive>,
    /// Whether PART is local (the Q14/Q19 placement).
    pub part_local: bool,
}

/// Cluster knobs of the simulated Hadoop environment.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// TPC-H scale factor (0.01 ≈ 1.5k customers / ~60k lineitems).
    pub scale: f64,
    /// RNG seed for data generation.
    pub seed: u64,
    /// MR job startup cost.
    pub job_startup: Duration,
    /// MR task startup cost.
    pub task_startup: Duration,
    /// Concurrent MR task slots.
    pub worker_slots: usize,
    /// HDFS block size (drives map-task counts).
    pub block_size: usize,
    /// Per-row ODBC transfer cost of fetching remote results into HANA.
    pub odbc_row_cost_us: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            scale: 0.01,
            seed: 2015,
            job_startup: Duration::from_millis(8),
            task_startup: Duration::from_millis(1),
            worker_slots: 4,
            block_size: 1024 * 1024,
            odbc_row_cost_us: 60,
        }
    }
}

impl TpchWorld {
    /// Build a world with the paper's placement. `part_local` selects
    /// the Q14/Q19 variant ("PART only for Q14 and Q19" is local).
    pub fn build(config: &WorldConfig, part_local: bool) -> Result<TpchWorld> {
        let data = hana_tpch::generate(config.scale, config.seed);
        let hdfs = Arc::new(Hdfs::with_config(6, config.block_size, 3));
        let mr = Arc::new(MrCluster::new(
            hdfs,
            MrConfig {
                worker_slots: config.worker_slots,
                job_startup: config.job_startup,
                task_startup: config.task_startup,
            },
        ));
        let hive = Arc::new(Hive::new(Arc::clone(&mr)));
        let registry = Arc::new(MrFunctionRegistry::new(mr));

        let hana = Arc::new(HanaPlatform::new_in_memory());
        let session = hana.connect("SYSTEM", "manager")?;
        hana.attach_hadoop(Arc::clone(&hive), registry);
        hana.execute_sql(
            &session,
            &format!(
                "CREATE REMOTE SOURCE HIVE1 ADAPTER \"hiveodbc\" \
                 CONFIGURATION 'DSN=hive1;row_cost_us={}' \
                 WITH CREDENTIAL TYPE 'PASSWORD' USING 'user=dfuser;password=dfpass'",
                config.odbc_row_cost_us
            ),
        )?;

        // Placement probe queries use Q14/Q19 vs the rest.
        let probe = if part_local { "Q14" } else { "Q1*" };
        let federated = federated_tables(probe);
        let local = local_tables(probe);

        for name in federated {
            let t = data.table(name);
            hive.create_table(name, t.schema.clone())?;
            hive.load(name, &t.rows)?;
            hana.execute_sql(
                &session,
                &format!("CREATE VIRTUAL TABLE {name} AT hive1.default.default.{name}"),
            )?;
        }
        for name in local {
            let t = data.table(name);
            let cols: Vec<String> = t
                .schema
                .columns()
                .iter()
                .map(|c| format!("{} {}", c.name, c.data_type.sql_name()))
                .collect();
            hana.execute_sql(
                &session,
                &format!("CREATE COLUMN TABLE {name} ({})", cols.join(", ")),
            )?;
            hana.load_rows(&session, name, &t.rows)?;
            hana.execute_sql(&session, &format!("MERGE DELTA OF {name}"))?;
        }
        Ok(TpchWorld {
            hana,
            session,
            hive,
            part_local,
        })
    }

    /// Whether this world has the right placement for `query_name`.
    pub fn fits(&self, query_name: &str) -> bool {
        let wants_part_local = query_name.starts_with("Q14") || query_name.starts_with("Q19");
        wants_part_local == self.part_local
    }

    /// Run one query, optionally with `WITH HINT (USE_REMOTE_CACHE)`.
    /// Returns the elapsed time and row count.
    pub fn run(&self, q: &TpchQuery, cached: bool) -> Result<(Duration, usize)> {
        let sql = if cached {
            format!("{} WITH HINT (USE_REMOTE_CACHE)", q.sql)
        } else {
            q.sql.clone()
        };
        let start = Instant::now();
        let rs = self.hana.execute_sql(&self.session, &sql)?;
        Ok((start.elapsed(), rs.len()))
    }
}

/// One Figure 14/15 measurement row.
#[derive(Debug, Clone)]
pub struct MaterializationRow {
    /// Query id.
    pub name: &'static str,
    /// Whether every referenced table is federated.
    pub all_remote: bool,
    /// Baseline (SDA normal mode).
    pub normal: Duration,
    /// First hinted execution (materializes).
    pub first_cached: Duration,
    /// Steady-state hinted execution (cache hit).
    pub steady_cached: Duration,
    /// Result rows (sanity: identical across modes).
    pub rows: usize,
}

impl MaterializationRow {
    /// Figure 14's metric: runtime benefit of remote materialization.
    pub fn benefit_percent(&self) -> f64 {
        100.0 * (1.0 - self.steady_cached.as_secs_f64() / self.normal.as_secs_f64().max(1e-9))
    }

    /// Figure 15's metric: one-time materialization overhead.
    pub fn overhead_percent(&self) -> f64 {
        100.0
            * (self.first_cached.as_secs_f64() / self.normal.as_secs_f64().max(1e-9) - 1.0).max(0.0)
    }
}

/// Run the full Figure 14/15 experiment: every query in normal mode,
/// then first + steady cached executions. Builds both placements.
pub fn run_materialization_experiment(config: &WorldConfig) -> Result<Vec<MaterializationRow>> {
    let world_a = TpchWorld::build(config, false)?;
    let world_b = TpchWorld::build(config, true)?;
    // The §4.4 configuration: caching enabled with a long validity.
    world_a.hana.set_remote_cache(true, 1_000_000);
    world_b.hana.set_remote_cache(true, 1_000_000);

    let mut rows = Vec::new();
    for q in queries() {
        let world = if world_a.fits(q.name) {
            &world_a
        } else {
            &world_b
        };
        // Warm the engines once so allocator effects don't skew the
        // first measurement.
        let (_, expected_rows) = world.run(&q, false)?;
        let (normal, n1) = world.run(&q, false)?;
        let (first_cached, n2) = world.run(&q, true)?;
        let (steady_cached, n3) = world.run(&q, true)?;
        assert_eq!(n1, expected_rows, "{}: normal runs agree", q.name);
        assert_eq!(n1, n2, "{}: materialized run returns same rows", q.name);
        assert_eq!(n1, n3, "{}: cache hit returns same rows", q.name);
        rows.push(MaterializationRow {
            name: q.name,
            all_remote: q.all_remote,
            normal,
            first_cached,
            steady_cached,
            rows: n1,
        });
    }
    Ok(rows)
}

/// Render the Figure 14 + Figure 15 tables as text.
pub fn render_figures(rows: &[MaterializationRow]) -> String {
    let mut sorted: Vec<&MaterializationRow> = rows.iter().collect();
    sorted.sort_by(|a, b| b.benefit_percent().total_cmp(&a.benefit_percent()));
    let mut out = String::new();
    out.push_str("Figure 14 — runtime benefit of remote materialization\n");
    out.push_str("query   | placement  | normal     | cache hit  | benefit %\n");
    out.push_str("--------+------------+------------+------------+----------\n");
    for r in &sorted {
        out.push_str(&format!(
            "{:<7} | {:<10} | {:>8.1}ms | {:>8.1}ms | {:>7.2}\n",
            r.name,
            if r.all_remote { "all-remote" } else { "mixed" },
            r.normal.as_secs_f64() * 1e3,
            r.steady_cached.as_secs_f64() * 1e3,
            r.benefit_percent(),
        ));
    }
    out.push('\n');
    let mut by_overhead: Vec<&MaterializationRow> = rows.iter().collect();
    by_overhead.sort_by(|a, b| b.overhead_percent().total_cmp(&a.overhead_percent()));
    out.push_str("Figure 15 — one-time materialization overhead\n");
    out.push_str("query   | first cached | overhead %\n");
    out.push_str("--------+--------------+-----------\n");
    for r in &by_overhead {
        out.push_str(&format!(
            "{:<7} | {:>10.1}ms | {:>8.2}\n",
            r.name,
            r.first_cached.as_secs_f64() * 1e3,
            r.overhead_percent(),
        ));
    }
    out
}
