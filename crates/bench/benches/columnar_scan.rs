//! Ablation — the column-store design choices of §3.1: codec selection
//! (plain vs. RLE vs. sparse), dictionary-space predicate evaluation,
//! and the delta-merge effect on scan speed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hana_columnar::{ColumnPredicate, ColumnTable, MainColumn, RowIdBitmap, VidCodec};
use hana_types::{DataType, Schema, Value};

const ROWS: usize = 200_000;

fn codec_inputs() -> Vec<(&'static str, Vec<u32>)> {
    // Sorted data -> long runs -> RLE; skewed -> sparse; shuffled -> plain.
    let rle: Vec<u32> = (0..ROWS).map(|i| (i / 10_000) as u32).collect();
    let sparse: Vec<u32> = (0..ROWS)
        .map(|i| if i % 50 == 0 { (i % 7) as u32 + 1 } else { 0 })
        .collect();
    let plain: Vec<u32> = (0..ROWS)
        .map(|i| ((i as u64 * 2_654_435_761) % 65_521) as u32)
        .collect();
    vec![
        ("rle_friendly", rle),
        ("sparse_friendly", sparse),
        ("high_entropy", plain),
    ]
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_ablation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));
    for (name, vids) in codec_inputs() {
        let codec = VidCodec::encode(&vids);
        println!(
            "{name}: selected codec = {}, payload = {} bytes",
            codec.name(),
            codec.payload_bytes()
        );
        group.bench_function(format!("{name}/encode"), |b| {
            b.iter(|| VidCodec::encode(&vids))
        });
        let m = hana_columnar::VidMatch::range(1, 3);
        group.bench_function(format!("{name}/scan_{}", codec.name()), |b| {
            b.iter(|| {
                let mut out = RowIdBitmap::new(vids.len());
                codec.scan_into(&m, &mut out, 0);
                out.count()
            })
        });
    }
    group.finish();
}

fn bench_delta_vs_main(c: &mut Criterion) {
    let schema = Schema::of(&[("v", DataType::Int), ("tag", DataType::Varchar)]);
    let mut fresh = ColumnTable::new("t", schema.clone());
    for i in 0..ROWS as i64 {
        fresh
            .insert(
                &[
                    Value::Int(i % 1000),
                    Value::from(["a", "b", "c"][i as usize % 3]),
                ],
                1,
            )
            .unwrap();
    }
    let mut merged = fresh.clone();
    merged.merge_delta();
    println!(
        "memory: delta-resident {} bytes vs merged {} bytes",
        fresh.payload_bytes(),
        merged.payload_bytes()
    );

    let pred = ColumnPredicate::Between(Value::Int(100), Value::Int(200));
    let mut group = c.benchmark_group("delta_merge_ablation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_function("scan_delta_resident", |b| {
        b.iter(|| fresh.scan(0, &pred, 1).unwrap().count())
    });
    group.bench_function("scan_after_merge", |b| {
        b.iter(|| merged.scan(0, &pred, 1).unwrap().count())
    });
    group.bench_function("merge_cost", |b| {
        b.iter(|| {
            let mut t = fresh.clone();
            t.merge_delta();
            t
        })
    });
    group.finish();
}

fn bench_dictionary_scan(c: &mut Criterion) {
    // Dictionary-space evaluation: a LIKE over 200k strings touches only
    // the distinct values.
    let values: Vec<Value> = (0..ROWS)
        .map(|i| Value::from(format!("customer-segment-{:03}", i % 200)))
        .collect();
    let col = MainColumn::build(&values);
    let mut group = c.benchmark_group("dictionary_space_eval");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_function("like_scan_200_distinct", |b| {
        b.iter(|| {
            let mut out = RowIdBitmap::new(ROWS);
            col.scan_into(&ColumnPredicate::Like("%-1__".into()), &mut out, 0);
            out.count()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codecs,
    bench_delta_vs_main,
    bench_dictionary_scan
);
criterion_main!(benches);
