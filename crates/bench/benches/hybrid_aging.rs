//! E7 — hybrid tables: aging cost and the query-performance trade-off
//! between all-hot, hybrid (union plan) and all-cold placements.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hana_core::HanaPlatform;
use hana_types::{Row, Value};

const ROWS: i64 = 50_000;

fn platform_with_hybrid(aged_fraction: f64) -> (HanaPlatform, hana_core::Session) {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE sales (id INTEGER, year INTEGER, amount DOUBLE, aged BOOLEAN) \
         USING HYBRID EXTENDED STORAGE AGING ON aged",
    )
    .unwrap();
    let cutoff = (ROWS as f64 * aged_fraction) as i64;
    let rows: Vec<Row> = (0..ROWS)
        .map(|i| {
            Row::from_values([
                Value::Int(i),
                Value::Int(2010 + (i % 10)),
                Value::Double((i % 500) as f64),
                Value::Bool(i < cutoff),
            ])
        })
        .collect();
    hana.load_rows(&s, "sales", &rows).unwrap();
    hana.execute_sql(&s, "MERGE DELTA OF sales").unwrap();
    (hana, s)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid_aging");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));

    group.bench_function("aging_run_80pct", |b| {
        b.iter(|| {
            let (hana, s) = platform_with_hybrid(0.8);
            let moved = hana.run_aging(&s, "sales").unwrap();
            assert_eq!(moved as i64, ROWS * 8 / 10);
            hana
        })
    });

    // Query cost by placement (same data, different hot/cold split).
    let q = "SELECT year, SUM(amount) FROM sales WHERE year >= 2015 GROUP BY year";
    for (label, aged) in [("all_hot", 0.0), ("mixed_50_50", 0.5), ("mostly_cold", 0.9)] {
        let (hana, s) = platform_with_hybrid(aged);
        hana.run_aging(&s, "sales").unwrap();
        group.bench_function(format!("aggregate_query/{label}"), |b| {
            b.iter(|| {
                let rs = hana.execute_sql(&s, q).unwrap();
                assert_eq!(rs.len(), 5);
                rs
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
