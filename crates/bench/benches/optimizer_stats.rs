//! Cost-based optimizer benchmarks: what the persisted column
//! statistics buy at plan time and at run time.
//!
//! Three measurements, emitted to `BENCH_optimizer_stats.json`:
//!
//! 1. **Planning latency** — a point lookup planned from the persisted
//!    synopsis vs the heuristic fallback that rebuilds plan-time
//!    histograms from the column store.
//! 2. **Broadcast↔repartition flip** — the same distributed join shape
//!    with a 50-row and a 40 000-row build side: statistics flip the
//!    exchange strategy, and each choice is compared against the forced
//!    alternative (via the runtime knob) to price the decision.
//! 3. **Remote-scan↔semijoin flip** — the same federated join shape
//!    with a selective and an unselective remote filter: statistics
//!    flip the SDA strategy between pulling the remote rows and
//!    shipping the local keys.
//!
//! No environment knob is set anywhere: every strategy choice under
//! "stats" comes from the synopses collected at MERGE DELTA / bulk
//! load. The forced alternatives use the thread-scoped knob override,
//! which only the `Runtime` (statistics-less) path consults.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use hana_core::{HanaPlatform, Session};
use hana_query::{
    override_broadcast_build_row_limit, DistJoinStrategy, FederationStrategy, PlanNode, PlanOp,
    PlannerContext, NO_STATS,
};
use hana_sql::{parse_statement, Statement};
use hana_types::{Row, Value};

const FACT_ROWS: usize = 120_000;
const FACT_KEYS: i64 = 300;
const PARTITIONS: usize = 4;
const TINY_ROWS: i64 = 50;
const HUGE_ROWS: i64 = 40_000;
const REMOTE_ROWS: i64 = 20_000;

const TINY_JOIN: &str = "SELECT f.v, t.v FROM facts f JOIN tiny t ON f.k = t.k";
const HUGE_JOIN: &str = "SELECT f.v, h.v FROM facts f JOIN huge h ON f.k = h.k";
// Point lookup on the 40k-row *local* merged table: the heuristic
// fallback rebuilds a plan-time histogram from the column store on
// every plan; the synopsis path just reads the persisted one.
const POINT_Q: &str = "SELECT v FROM huge WHERE k = 12345";

fn sda_join(bound: i64) -> String {
    format!(
        "SELECT d.v, f.f_val FROM dim d JOIN fact f ON d.k = f.f_dim \
         WHERE d.k < 5 AND f.f_val < {bound}"
    )
}

/// Platform with the distributed world (`facts` over 4 nodes, `tiny`
/// and `huge` build sides) and the federated world (`dim` local,
/// `fact` in the internal IQ store) — all merged, so every table has a
/// persisted synopsis.
fn setup() -> (HanaPlatform, Session) {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    let load = |hana: &HanaPlatform, s: &Session, t: &str, rows: Vec<Row>| {
        hana.load_rows(s, t, &rows).unwrap();
        hana.execute_sql(s, &format!("MERGE DELTA OF {t}")).unwrap();
    };

    hana.execute_sql(
        &s,
        &format!(
            "CREATE COLUMN TABLE facts (k INTEGER, v INTEGER) \
             PARTITION BY HASH(k) PARTITIONS {PARTITIONS}"
        ),
    )
    .unwrap();
    load(
        &hana,
        &s,
        "facts",
        (0..FACT_ROWS)
            .map(|i| Row::from_values([Value::Int(i as i64 % FACT_KEYS), Value::Int(i as i64)]))
            .collect(),
    );

    hana.execute_sql(&s, "CREATE COLUMN TABLE tiny (k INTEGER, v INTEGER)")
        .unwrap();
    load(
        &hana,
        &s,
        "tiny",
        (0..TINY_ROWS)
            .map(|i| Row::from_values([Value::Int(i), Value::Int(i)]))
            .collect(),
    );

    hana.execute_sql(&s, "CREATE COLUMN TABLE huge (k INTEGER, v INTEGER)")
        .unwrap();
    load(
        &hana,
        &s,
        "huge",
        (0..HUGE_ROWS)
            .map(|i| Row::from_values([Value::Int(i), Value::Int(i)]))
            .collect(),
    );

    hana.execute_sql(&s, "CREATE COLUMN TABLE dim (k INTEGER, v INTEGER)")
        .unwrap();
    load(
        &hana,
        &s,
        "dim",
        (0..100)
            .map(|i| Row::from_values([Value::Int(i), Value::Int(i)]))
            .collect(),
    );

    hana.execute_sql(
        &s,
        "CREATE TABLE fact (f_dim INTEGER, f_val INTEGER) USING EXTENDED STORAGE",
    )
    .unwrap();
    // Extended-storage loads go straight to the IQ store (no delta):
    // the remote side's strategy inputs come from the source's own
    // metadata, not the catalog synopses.
    let remote_rows: Vec<Row> = (0..REMOTE_ROWS)
        .map(|i| Row::from_values([Value::Int(i % 100), Value::Int(i)]))
        .collect();
    hana.load_rows(&s, "fact", &remote_rows).unwrap();
    (hana, s)
}

fn query(sql: &str) -> hana_sql::Query {
    let Statement::Query(q) = parse_statement(sql).unwrap() else {
        panic!("not a query: {sql}")
    };
    q
}

/// Plan from the platform catalog's persisted synopses.
fn plan_with_stats(hana: &HanaPlatform, sql: &str) -> PlanNode {
    PlannerContext::new(hana.catalog().as_ref())
        .planner()
        .plan(&query(sql))
        .unwrap()
}

/// Plan with statistics switched off — the heuristic / runtime-knob
/// path, used as the baseline and to force the alternative exchange.
fn plan_without_stats(hana: &HanaPlatform, sql: &str) -> PlanNode {
    PlannerContext::new(hana.catalog().as_ref())
        .with_stats(&NO_STATS)
        .planner()
        .plan(&query(sql))
        .unwrap()
}

fn hash_join_dist(node: &PlanNode) -> Option<DistJoinStrategy> {
    match &node.op {
        PlanOp::HashJoin { dist, .. } => Some(*dist),
        PlanOp::Filter { input, .. }
        | PlanOp::Aggregate { input, .. }
        | PlanOp::Finish { input, .. } => hash_join_dist(input),
        _ => None,
    }
}

fn sda_strategy(plan: &PlanNode) -> &'static str {
    let strategies = plan.strategies();
    if strategies.contains(&FederationStrategy::SemiJoin) {
        "semijoin"
    } else if strategies.contains(&FederationStrategy::RemoteScan) {
        "remote-scan"
    } else {
        "other"
    }
}

fn bench_optimizer_stats(c: &mut Criterion) {
    let (hana, s) = setup();
    let mut group = c.benchmark_group("optimizer_stats");
    group.bench_function("plan/point_lookup_stats", |b| {
        b.iter(|| plan_with_stats(&hana, POINT_Q))
    });
    group.bench_function("plan/point_lookup_heuristic", |b| {
        b.iter(|| plan_without_stats(&hana, POINT_Q))
    });
    let tiny = plan_with_stats(&hana, TINY_JOIN);
    group.bench_function("dist_join/tiny_build_broadcast", |b| {
        b.iter(|| hana.execute_plan(&s, &tiny).unwrap().len())
    });
    let huge = plan_with_stats(&hana, HUGE_JOIN);
    group.bench_function("dist_join/huge_build_repartition", |b| {
        b.iter(|| hana.execute_plan(&s, &huge).unwrap().len())
    });
    group.finish();
}

fn median_nanos(mut f: impl FnMut()) -> u128 {
    const RUNS: usize = 15;
    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[RUNS / 2]
}

fn emit_json() {
    let (hana, s) = setup();

    // ---- planning latency: synopsis vs rebuilt histograms ----
    let plan_stats_ns = median_nanos(|| {
        plan_with_stats(&hana, POINT_Q);
    });
    let plan_heur_ns = median_nanos(|| {
        plan_without_stats(&hana, POINT_Q);
    });
    let plan_speedup = plan_heur_ns as f64 / plan_stats_ns as f64;
    println!(
        "optimizer_stats: point-lookup planning {:.3} ms from synopsis \
         ({plan_speedup:.2}x vs {:.3} ms heuristic histogram rebuild)",
        plan_stats_ns as f64 / 1e6,
        plan_heur_ns as f64 / 1e6,
    );

    // ---- flip (a): broadcast <-> repartition, no knob set ----
    assert!(
        std::env::var(hana_query::ENV_BROADCAST_BUILD_ROW_LIMIT).is_err(),
        "the flip must come from statistics, not the env knob"
    );
    let tiny = plan_with_stats(&hana, TINY_JOIN);
    let huge = plan_with_stats(&hana, HUGE_JOIN);
    assert_eq!(hash_join_dist(&tiny), Some(DistJoinStrategy::Broadcast));
    assert_eq!(hash_join_dist(&huge), Some(DistJoinStrategy::Repartition));
    let tiny_expected = (TINY_ROWS as usize) * (FACT_ROWS / FACT_KEYS as usize);
    let huge_expected = (FACT_KEYS as usize) * (FACT_ROWS / FACT_KEYS as usize);
    assert_eq!(hana.execute_plan(&s, &tiny).unwrap().len(), tiny_expected);
    assert_eq!(hana.execute_plan(&s, &huge).unwrap().len(), huge_expected);

    // Forced alternatives: a statistics-less plan resolves the exchange
    // at run time through the (thread-overridden) knob.
    let tiny_runtime = plan_without_stats(&hana, TINY_JOIN);
    let huge_runtime = plan_without_stats(&hana, HUGE_JOIN);
    assert_eq!(
        hash_join_dist(&tiny_runtime),
        Some(DistJoinStrategy::Runtime)
    );

    let tiny_ns = median_nanos(|| {
        hana.execute_plan(&s, &tiny).unwrap();
    });
    let tiny_forced_ns = {
        let _g = override_broadcast_build_row_limit(1); // tiny side must gather
        median_nanos(|| {
            hana.execute_plan(&s, &tiny_runtime).unwrap();
        })
    };
    let huge_ns = median_nanos(|| {
        hana.execute_plan(&s, &huge).unwrap();
    });
    let huge_forced_ns = {
        let _g = override_broadcast_build_row_limit(usize::MAX); // huge side must broadcast
        median_nanos(|| {
            hana.execute_plan(&s, &huge_runtime).unwrap();
        })
    };
    let tiny_speedup = tiny_forced_ns as f64 / tiny_ns as f64;
    let huge_speedup = huge_forced_ns as f64 / huge_ns as f64;
    println!(
        "optimizer_stats: {TINY_ROWS}-row build -> broadcast {:.3} ms \
         ({tiny_speedup:.2}x vs forced repartition {:.3} ms)",
        tiny_ns as f64 / 1e6,
        tiny_forced_ns as f64 / 1e6,
    );
    println!(
        "optimizer_stats: {HUGE_ROWS}-row build -> repartition {:.3} ms \
         ({huge_speedup:.2}x vs forced broadcast {:.3} ms)",
        huge_ns as f64 / 1e6,
        huge_forced_ns as f64 / 1e6,
    );

    // ---- flip (b): remote-scan <-> semijoin on remote selectivity ----
    let selective = plan_with_stats(&hana, &sda_join(3));
    let unselective = plan_with_stats(&hana, &sda_join(19_000));
    assert_eq!(sda_strategy(&selective), "remote-scan");
    assert_eq!(sda_strategy(&unselective), "semijoin");
    assert_eq!(hana.execute_plan(&s, &selective).unwrap().len(), 3);
    assert_eq!(hana.execute_plan(&s, &unselective).unwrap().len(), 950);
    let selective_ns = median_nanos(|| {
        hana.execute_plan(&s, &selective).unwrap();
    });
    let unselective_ns = median_nanos(|| {
        hana.execute_plan(&s, &unselective).unwrap();
    });
    let heur_selective = sda_strategy(&plan_without_stats(&hana, &sda_join(3)));
    let heur_unselective = sda_strategy(&plan_without_stats(&hana, &sda_join(19_000)));
    println!(
        "optimizer_stats: federated join f_val<3 -> remote-scan {:.3} ms, \
         f_val<19000 -> semijoin {:.3} ms (heuristic would pick \
         {heur_selective} / {heur_unselective})",
        selective_ns as f64 / 1e6,
        unselective_ns as f64 / 1e6,
    );

    let json = format!(
        "{{\n  \"bench\": \"optimizer_stats\",\n  \
         \"planning\": {{\"stats_median_ns\": {plan_stats_ns}, \
         \"heuristic_median_ns\": {plan_heur_ns}, \"speedup\": {plan_speedup:.3}}},\n  \
         \"dist_join\": {{\"fact_rows\": {FACT_ROWS}, \"partitions\": {PARTITIONS}, \
         \"tiny_build_rows\": {TINY_ROWS}, \"huge_build_rows\": {HUGE_ROWS}, \
         \"tiny\": {{\"strategy\": \"broadcast\", \"median_ns\": {tiny_ns}, \
         \"forced_repartition_ns\": {tiny_forced_ns}, \"speedup\": {tiny_speedup:.3}}}, \
         \"huge\": {{\"strategy\": \"repartition\", \"median_ns\": {huge_ns}, \
         \"forced_broadcast_ns\": {huge_forced_ns}, \"speedup\": {huge_speedup:.3}}}}},\n  \
         \"sda_join\": {{\"remote_rows\": {REMOTE_ROWS}, \
         \"selective\": {{\"strategy\": \"remote-scan\", \"rows\": 3, \
         \"median_ns\": {selective_ns}}}, \
         \"unselective\": {{\"strategy\": \"semijoin\", \"rows\": 950, \
         \"median_ns\": {unselective_ns}}}, \
         \"heuristic_strategies\": [\"{heur_selective}\", \"{heur_unselective}\"]}}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_optimizer_stats.json"
    );
    std::fs::write(path, json).expect("write BENCH_optimizer_stats.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_optimizer_stats);

fn main() {
    benches();
    emit_json();
}
