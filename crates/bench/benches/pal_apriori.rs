//! E6 — PAL: apriori mining cost over warranty-claim-style transactions
//! (§4.1) and classifier scoring latency ("classify new readouts …
//! in real-time").

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hana_pal::{apriori, kmeans, AprioriParams, RuleClassifier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn transactions(n: usize) -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(99);
    let dtcs = ["P0300", "P0420", "P0171", "B1342", "C1201", "U0100"];
    let ctx = ["hot", "cold", "city", "highway", "towing"];
    (0..n)
        .map(|_| {
            let mut items = vec![
                format!("dtc_{}", dtcs[rng.random_range(0..dtcs.len())]),
                ctx[rng.random_range(0..ctx.len())].to_string(),
            ];
            let risky =
                items.contains(&"dtc_P0300".to_string()) && items.contains(&"hot".to_string());
            if risky && rng.random_range(0..10) < 9 {
                items.push("claim".into());
            }
            items.sort();
            items.dedup();
            items
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let txs = transactions(10_000);
    let params = AprioriParams {
        min_support: 0.005,
        min_confidence: 0.8,
        max_len: 3,
    };

    let mut group = c.benchmark_group("pal");
    group.sample_size(10);
    group.throughput(Throughput::Elements(txs.len() as u64));
    group.bench_function("apriori_10k_transactions", |b| {
        b.iter(|| apriori(&txs, params).unwrap())
    });

    let rules = apriori(&txs, params).unwrap();
    println!("mined {} rules (confidence >= 0.8)", rules.len());
    let clf = RuleClassifier::new(&rules, "claim");
    let readout = vec![
        "dtc_P0300".to_string(),
        "hot".to_string(),
        "city".to_string(),
    ];
    group.throughput(Throughput::Elements(1));
    group.bench_function("classifier_score_single_readout", |b| {
        b.iter(|| clf.score(&readout))
    });

    // k-means on load profiles.
    let points: Vec<Vec<f64>> = (0..5_000)
        .map(|i| vec![(i % 100) as f64, ((i * 7) % 50) as f64])
        .collect();
    group.throughput(Throughput::Elements(points.len() as u64));
    group.bench_function("kmeans_5k_points_k4", |b| {
        b.iter(|| kmeans(&points, 4, 25).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
