//! OLTP hot-path benchmarks: what the secondary index and the
//! expression bytecode VM buy over the scan/tree-walk baselines.
//!
//! Three measurements, emitted to `BENCH_point_lookup.json`:
//!
//! 1. **Point lookup** — `WHERE k = const` on a 400 000-row merged
//!    table, through the ordered secondary index vs the full predicate
//!    column scan of an identical unindexed table.
//! 2. **Selective range** — `WHERE k BETWEEN lo AND hi` (~0.06 % of
//!    the rows) through the same index's range walk vs the full scan.
//! 3. **Compiled filter** — an arithmetic predicate + projection that
//!    column-scan pushdown cannot absorb, executed by the bytecode VM
//!    (one dispatch per opcode per 1024-row block) vs the per-row
//!    tree-walking evaluator (forced via the thread-scoped knob).
//!
//! Both tables hold identical data, so every indexed answer is checked
//! against the scan answer before timing; the EXPLAIN assertions pin
//! the plans actually being compared (Index Seek with `stats`
//! provenance vs Table Scan).

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use hana_core::{HanaPlatform, Session};
use hana_query::override_compiled_expressions;
use hana_types::{Row, Value};

const ROWS: i64 = 400_000;

// `k` is unique, so the point lookup hits exactly one row.
const POINT_IX: &str = "SELECT v FROM orders WHERE k = 123457";
const POINT_SCAN: &str = "SELECT v FROM orders_heap WHERE k = 123457";
// 241 of 400 000 rows: selective enough for the planner's pure-range
// seek gate on the leading index column.
const RANGE_IX: &str = "SELECT v FROM orders WHERE k BETWEEN 60000 AND 60240";
const RANGE_SCAN: &str = "SELECT v FROM orders_heap WHERE k BETWEEN 60000 AND 60240";
// Arithmetic keeps this predicate (and the projection) off the
// column-scan pushdown path, so both run through the expression
// engine: 400k rows filtered, 40k projected.
const VM_Q: &str = "SELECT k * 2 + v FROM orders_heap WHERE k * 2 + 1 < 80001";

/// Two identical 400k-row merged tables; only `orders` is indexed.
fn setup() -> (HanaPlatform, Session) {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    let rows: Vec<Row> = (0..ROWS)
        .map(|i| Row::from_values([Value::Int(i), Value::Int(i % 1000)]))
        .collect();
    for t in ["orders", "orders_heap"] {
        hana.execute_sql(
            &s,
            &format!("CREATE COLUMN TABLE {t} (k INTEGER, v INTEGER)"),
        )
        .unwrap();
        hana.load_rows(&s, t, &rows).unwrap();
    }
    hana.execute_sql(&s, "CREATE INDEX ix_orders ON orders (k)")
        .unwrap();
    // Merge after CREATE INDEX: rebuilds the index's sorted main side
    // and persists the synopses the planner's seek estimate reads.
    for t in ["orders", "orders_heap"] {
        hana.execute_sql(&s, &format!("MERGE DELTA OF {t}"))
            .unwrap();
    }
    (hana, s)
}

fn explain(hana: &HanaPlatform, s: &Session, sql: &str) -> String {
    let rs = hana.execute_sql(s, &format!("EXPLAIN {sql}")).unwrap();
    rs.rows
        .iter()
        .map(|r| r[0].to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn sorted_ints(hana: &HanaPlatform, s: &Session, sql: &str) -> Vec<Value> {
    let mut vals: Vec<Value> = hana
        .execute_sql(s, sql)
        .unwrap()
        .rows
        .into_iter()
        .map(|r| r[0].clone())
        .collect();
    vals.sort();
    vals
}

fn bench_point_lookup(c: &mut Criterion) {
    let (hana, s) = setup();
    let mut group = c.benchmark_group("point_lookup");
    group.bench_function("point/index_seek", |b| {
        b.iter(|| hana.execute_sql(&s, POINT_IX).unwrap().rows.len())
    });
    group.bench_function("point/full_scan", |b| {
        b.iter(|| hana.execute_sql(&s, POINT_SCAN).unwrap().rows.len())
    });
    group.bench_function("filter/compiled", |b| {
        b.iter(|| hana.execute_sql(&s, VM_Q).unwrap().rows.len())
    });
    group.bench_function("filter/interpreted", |b| {
        let _g = override_compiled_expressions(false);
        b.iter(|| hana.execute_sql(&s, VM_Q).unwrap().rows.len())
    });
    group.finish();
}

fn median_nanos(mut f: impl FnMut()) -> u128 {
    const RUNS: usize = 15;
    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[RUNS / 2]
}

fn emit_json() {
    let (hana, s) = setup();

    // Pin the plans being compared: the indexed side must seek with
    // statistics-backed estimates, the baseline side must scan.
    for q in [POINT_IX, RANGE_IX] {
        let text = explain(&hana, &s, q);
        assert!(text.contains("Index Seek orders.ix_orders"), "{text}");
        assert!(text.contains("stats"), "{text}");
    }
    for q in [POINT_SCAN, RANGE_SCAN] {
        let text = explain(&hana, &s, q);
        assert!(!text.contains("Index Seek"), "{text}");
    }
    // Identical data: indexed answers must equal scan answers.
    assert_eq!(
        sorted_ints(&hana, &s, POINT_IX),
        sorted_ints(&hana, &s, POINT_SCAN)
    );
    assert_eq!(
        sorted_ints(&hana, &s, RANGE_IX),
        sorted_ints(&hana, &s, RANGE_SCAN)
    );
    let compiled_rows = sorted_ints(&hana, &s, VM_Q);
    let interpreted_rows = {
        let _g = override_compiled_expressions(false);
        sorted_ints(&hana, &s, VM_Q)
    };
    assert_eq!(compiled_rows, interpreted_rows);
    assert_eq!(compiled_rows.len(), 40_000);

    let point_ix_ns = median_nanos(|| {
        hana.execute_sql(&s, POINT_IX).unwrap();
    });
    let point_scan_ns = median_nanos(|| {
        hana.execute_sql(&s, POINT_SCAN).unwrap();
    });
    let range_ix_ns = median_nanos(|| {
        hana.execute_sql(&s, RANGE_IX).unwrap();
    });
    let range_scan_ns = median_nanos(|| {
        hana.execute_sql(&s, RANGE_SCAN).unwrap();
    });
    let vm_ns = median_nanos(|| {
        hana.execute_sql(&s, VM_Q).unwrap();
    });
    let tree_ns = {
        let _g = override_compiled_expressions(false);
        median_nanos(|| {
            hana.execute_sql(&s, VM_Q).unwrap();
        })
    };

    let point_speedup = point_scan_ns as f64 / point_ix_ns as f64;
    let range_speedup = range_scan_ns as f64 / range_ix_ns as f64;
    let vm_speedup = tree_ns as f64 / vm_ns as f64;
    println!(
        "point_lookup: point seek {:.3} ms ({point_speedup:.1}x vs \
         {:.3} ms full scan of {ROWS} rows)",
        point_ix_ns as f64 / 1e6,
        point_scan_ns as f64 / 1e6,
    );
    println!(
        "point_lookup: range seek (241 rows) {:.3} ms ({range_speedup:.1}x \
         vs {:.3} ms full scan)",
        range_ix_ns as f64 / 1e6,
        range_scan_ns as f64 / 1e6,
    );
    println!(
        "point_lookup: compiled filter+projection {:.3} ms ({vm_speedup:.2}x \
         vs {:.3} ms tree-walk)",
        vm_ns as f64 / 1e6,
        tree_ns as f64 / 1e6,
    );

    let json = format!(
        "{{\n  \"bench\": \"point_lookup\",\n  \"rows\": {ROWS},\n  \
         \"point\": {{\"baseline\": \"full column scan\", \
         \"index_seek_ns\": {point_ix_ns}, \"full_scan_ns\": {point_scan_ns}, \
         \"speedup\": {point_speedup:.3}}},\n  \
         \"range\": {{\"baseline\": \"full column scan\", \"hit_rows\": 241, \
         \"index_seek_ns\": {range_ix_ns}, \"full_scan_ns\": {range_scan_ns}, \
         \"speedup\": {range_speedup:.3}}},\n  \
         \"compiled_filter\": {{\"baseline\": \"tree-walk evaluator\", \
         \"compiled_ns\": {vm_ns}, \"interpreted_ns\": {tree_ns}, \
         \"speedup\": {vm_speedup:.3}}}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_point_lookup.json");
    std::fs::write(path, json).expect("write BENCH_point_lookup.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_point_lookup);

fn main() {
    benches();
    emit_json();
}
