//! Vectorized scan/aggregate kernels: batch bit-unpacking against the
//! scalar per-element reference, synopsis-driven skip-scan on banded
//! data, and the fused late-materializing group-by.
//!
//! Besides the criterion timings, the run emits
//! `BENCH_scan_kernels.json` at the repository root with median
//! wall-clock numbers, speedups, and the block scanned/skipped counts
//! observed through the metrics registry.

use std::time::Instant;

use criterion::{criterion_group, Criterion, Throughput};
use hana_columnar::{RowIdBitmap, VidCodec, VidMatch, BLOCK_ROWS};
use hana_core::HanaPlatform;
use hana_types::{Row, Value};

const ROWS: usize = 1_000_000;
const GROUP_ROWS: usize = 200_000;

fn mix(i: usize) -> usize {
    i.wrapping_mul(2_654_435_761)
}

/// High-entropy vids (~16-bit packed width, no banding): every block's
/// synopsis spans the whole domain, so nothing can be skipped and the
/// comparison isolates the bulk-unpacking kernel itself.
fn entropy_codec() -> VidCodec {
    let vids: Vec<u32> = (0..ROWS).map(|i| (mix(i) % 50_000) as u32 + 1).collect();
    VidCodec::encode(&vids)
}

/// Block-banded vids: each 1024-row block draws from a narrow, strictly
/// increasing band (43 distinct values per block keep the payload
/// Plain), so a selective range predicate intersects only a few block
/// synopses and the skip-scan prunes the rest.
fn banded_codec() -> VidCodec {
    let vids: Vec<u32> = (0..ROWS)
        .map(|i| ((i / BLOCK_ROWS) * 48 + mix(i) % 43) as u32 + 1)
        .collect();
    VidCodec::encode(&vids)
}

/// ~20% selectivity over the entropy data: every block still matches.
fn full_match() -> VidMatch {
    VidMatch::range(1, 10_000)
}

/// A ~20-band window over the banded data: ~2% of blocks survive the
/// synopsis test.
fn banded_match() -> VidMatch {
    VidMatch::range(20_000, 20_960)
}

fn bench_scan_kernels(c: &mut Criterion) {
    let entropy = entropy_codec();
    let banded = banded_codec();
    let fm = full_match();
    let bm = banded_match();
    let mut group = c.benchmark_group("scan_kernels");
    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_function("full_scan/scalar", |b| {
        b.iter(|| {
            let mut out = RowIdBitmap::new(ROWS);
            entropy.scan_into_scalar(&fm, &mut out, 0);
            out.count()
        })
    });
    group.bench_function("full_scan/vectorized", |b| {
        b.iter(|| {
            let mut out = RowIdBitmap::new(ROWS);
            entropy.scan_into(&fm, &mut out, 0);
            out.count()
        })
    });
    group.bench_function("skip_scan/scalar", |b| {
        b.iter(|| {
            let mut out = RowIdBitmap::new(ROWS);
            banded.scan_into_scalar(&bm, &mut out, 0);
            out.count()
        })
    });
    group.bench_function("skip_scan/vectorized", |b| {
        b.iter(|| {
            let mut out = RowIdBitmap::new(ROWS);
            banded.scan_into(&bm, &mut out, 0);
            out.count()
        })
    });
    group.finish();
}

fn median_nanos(mut f: impl FnMut()) -> u128 {
    const RUNS: usize = 15;
    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[RUNS / 2]
}

/// Median scan times for one codec/match pair, with the vectorized
/// result checked against the scalar reference.
fn scan_pair(codec: &VidCodec, m: &VidMatch) -> (u128, u128) {
    let mut reference = RowIdBitmap::new(ROWS);
    codec.scan_into_scalar(m, &mut reference, 0);
    let mut fast = RowIdBitmap::new(ROWS);
    codec.scan_into(m, &mut fast, 0);
    assert_eq!(fast, reference, "vectorized scan diverged from scalar");
    let scalar_ns = median_nanos(|| {
        let mut out = RowIdBitmap::new(ROWS);
        codec.scan_into_scalar(m, &mut out, 0);
    });
    let vector_ns = median_nanos(|| {
        let mut out = RowIdBitmap::new(ROWS);
        codec.scan_into(m, &mut out, 0);
    });
    (scalar_ns, vector_ns)
}

/// Blocks scanned/skipped by one vectorized scan, read as a delta of
/// the global metrics registry counters.
fn block_counts(codec: &VidCodec, m: &VidMatch) -> (u64, u64) {
    let before = hana_obs::registry().snapshot();
    let mut out = RowIdBitmap::new(ROWS);
    codec.scan_into(m, &mut out, 0);
    let after = hana_obs::registry().snapshot();
    (
        after.counter("hana_columnar_blocks_scanned_total")
            - before.counter("hana_columnar_blocks_scanned_total"),
        after.counter("hana_columnar_blocks_skipped_total")
            - before.counter("hana_columnar_blocks_skipped_total"),
    )
}

/// Fused (vid-keyed, late-materializing) against generic (row-at-a-time)
/// group-by through the SQL front end. `SUM(v + 0)` computes the same
/// aggregate but the expression argument defeats the fusion gate, so it
/// runs the row-materializing path on the identical table.
fn group_by_medians() -> (u128, u128) {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(&s, "CREATE COLUMN TABLE t (g INTEGER, v INTEGER)")
        .unwrap();
    let rows: Vec<Row> = (0..GROUP_ROWS)
        .map(|i| Row::from_values([Value::Int((mix(i) % 1_000) as i64), Value::Int(i as i64)]))
        .collect();
    hana.load_rows(&s, "t", &rows).unwrap();
    hana.execute_sql(&s, "MERGE DELTA OF t").unwrap();
    let fused_q = "SELECT g, COUNT(*) AS n, SUM(v) AS total FROM t GROUP BY g";
    let generic_q = "SELECT g, COUNT(*) AS n, SUM(v + 0) AS total FROM t GROUP BY g";
    let fused = hana.execute_sql(&s, fused_q).unwrap();
    let generic = hana.execute_sql(&s, generic_q).unwrap();
    assert_eq!(fused.len(), 1_000);
    assert_eq!(fused.len(), generic.len());
    let generic_ns = median_nanos(|| {
        hana.execute_sql(&s, generic_q).unwrap();
    });
    let fused_ns = median_nanos(|| {
        hana.execute_sql(&s, fused_q).unwrap();
    });
    (generic_ns, fused_ns)
}

/// Direct `Instant` medians for the machine-readable summary (the
/// criterion stub reports means on stdout only).
fn emit_json() {
    let entropy = entropy_codec();
    let fm = full_match();
    let (full_scalar, full_vector) = scan_pair(&entropy, &fm);
    let full_speedup = full_scalar as f64 / full_vector as f64;
    println!(
        "scan_kernels: full scan vectorized {:.3} ms ({full_speedup:.2}x vs scalar {:.3} ms)",
        full_vector as f64 / 1e6,
        full_scalar as f64 / 1e6,
    );

    let banded = banded_codec();
    let bm = banded_match();
    let (skip_scalar, skip_vector) = scan_pair(&banded, &bm);
    let skip_speedup = skip_scalar as f64 / skip_vector as f64;
    let (scanned, skipped) = block_counts(&banded, &bm);
    assert!(skipped > 0, "selective banded scan should skip blocks");
    println!(
        "scan_kernels: skip scan vectorized {:.3} ms ({skip_speedup:.2}x vs scalar {:.3} ms), \
         {scanned} blocks scanned / {skipped} skipped",
        skip_vector as f64 / 1e6,
        skip_scalar as f64 / 1e6,
    );

    let (generic_ns, fused_ns) = group_by_medians();
    let group_speedup = generic_ns as f64 / fused_ns as f64;
    let fused_rows_per_sec = GROUP_ROWS as f64 / (fused_ns as f64 / 1e9);
    println!(
        "scan_kernels: fused group-by {:.3} ms ({group_speedup:.2}x vs generic {:.3} ms, \
         {fused_rows_per_sec:.0} rows/s)",
        fused_ns as f64 / 1e6,
        generic_ns as f64 / 1e6,
    );

    let json = format!(
        "{{\n  \"bench\": \"scan_kernels\",\n  \"rows\": {ROWS},\n  \
         \"full_scan\": {{\"scalar_median_ns\": {full_scalar}, \
         \"vectorized_median_ns\": {full_vector}, \"speedup\": {full_speedup:.3}}},\n  \
         \"skip_scan\": {{\"scalar_median_ns\": {skip_scalar}, \
         \"vectorized_median_ns\": {skip_vector}, \"speedup\": {skip_speedup:.3}, \
         \"blocks_scanned\": {scanned}, \"blocks_skipped\": {skipped}}},\n  \
         \"group_by\": {{\"rows\": {GROUP_ROWS}, \"generic_median_ns\": {generic_ns}, \
         \"fused_median_ns\": {fused_ns}, \"speedup\": {group_speedup:.3}, \
         \"fused_rows_per_sec\": {fused_rows_per_sec:.0}}}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan_kernels.json");
    std::fs::write(path, json).expect("write BENCH_scan_kernels.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_scan_kernels);

fn main() {
    benches();
    emit_json();
}
