//! E17 — streaming ingest: sustained pipeline throughput vs the
//! per-row INSERT baseline, and OLAP interference while the stream
//! (plus periodic delta merges) is running. Emits
//! `BENCH_streaming_ingest.json` at the repository root with both
//! rows/sec figures, the OLAP p95 with and without concurrent ingest,
//! and the speedup of micro-batched epochs over per-row inserts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion, Throughput};
use hana_core::HanaPlatform;
use hana_ingest::{IngestConfig, IngestRuntime};
use hana_session::SessionManager;
use hana_types::{Row, Value};

/// Rows streamed through the pipeline in the timed run.
const STREAM_ROWS: usize = 50_000;
/// Rows inserted one statement at a time for the baseline rate.
const INSERT_ROWS: usize = 2_000;
/// OLAP query repetitions per latency sample set.
const OLAP_ITERS: usize = 120;

fn platform() -> (Arc<HanaPlatform>, hana_core::Session) {
    let hana = Arc::new(HanaPlatform::new_in_memory());
    let s = hana.connect("SYSTEM", "manager").unwrap();
    (hana, s)
}

fn event(i: usize) -> Row {
    Row::from_values([Value::Int(i as i64 % 997), Value::Int(i as i64)])
}

/// Stream `n` rows through an ESP-fed pipeline into a 2-partition
/// table and return sustained rows/sec (send → epoch-committed).
fn run_pipeline(n: usize) -> f64 {
    let (hana, s) = platform();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE readings (k INTEGER, v INTEGER) \
         PARTITION BY HASH(k) PARTITIONS 2",
    )
    .unwrap();
    hana.esp()
        .deploy("CREATE INPUT STREAM events SCHEMA (k INTEGER, v INTEGER);")
        .unwrap();
    let rt = IngestRuntime::install_with(&hana, &s, IngestConfig::default());
    rt.attach("feed", "events", "readings").unwrap();
    let start = Instant::now();
    for i in 0..n {
        hana.esp().send("events", i as i64, event(i)).unwrap();
    }
    let stats = rt.detach("feed").unwrap();
    let elapsed = start.elapsed();
    assert_eq!(stats.rows_committed as usize, n, "every row exactly once");
    n as f64 / elapsed.as_secs_f64()
}

/// Insert `n` rows one SQL statement at a time — the rate a naive
/// row-at-a-time bridge would sustain.
fn run_per_row_inserts(n: usize) -> f64 {
    let (hana, s) = platform();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE readings (k INTEGER, v INTEGER) \
         PARTITION BY HASH(k) PARTITIONS 2",
    )
    .unwrap();
    let start = Instant::now();
    for i in 0..n {
        hana.execute_sql(
            &s,
            &format!("INSERT INTO readings VALUES ({}, {i})", i % 997),
        )
        .unwrap();
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// p95 over `OLAP_ITERS` runs of a group-by scan, optionally while a
/// pipeline streams into the same table and a merger consolidates it.
fn olap_p95_us(with_ingest: bool) -> f64 {
    let (hana, s) = platform();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE readings (k INTEGER, v INTEGER) \
         PARTITION BY HASH(k) PARTITIONS 2",
    )
    .unwrap();
    let seed: Vec<Row> = (0..50_000).map(event).collect();
    hana.load_rows(&s, "readings", &seed).unwrap();
    hana.execute_sql(&s, "MERGE DELTA OF readings").unwrap();

    let manager = SessionManager::new(Arc::clone(&hana));
    let olap = manager.connect("SYSTEM", "manager").unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let mut background = Vec::new();
    if with_ingest {
        hana.esp()
            .deploy("CREATE INPUT STREAM events SCHEMA (k INTEGER, v INTEGER);")
            .unwrap();
        let rt = IngestRuntime::install_with(&hana, &s, IngestConfig::default());
        rt.attach("feed", "events", "readings").unwrap();
        {
            let hana = Arc::clone(&hana);
            let stop = Arc::clone(&stop);
            // A *sustained* feed (~25k rows/s), not an unbounded flood:
            // the point is interference at a steady rate, not racing
            // table growth against the scans.
            background.push(std::thread::spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..256 {
                        hana.esp().send("events", i as i64, event(i)).unwrap();
                        i += 1;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                i
            }));
        }
        {
            let hana = Arc::clone(&hana);
            let s = hana.connect("SYSTEM", "manager").unwrap();
            let stop = Arc::clone(&stop);
            background.push(std::thread::spawn(move || {
                let mut merges = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    hana.execute_sql(&s, "MERGE DELTA OF readings").unwrap();
                    merges += 1;
                    // Merge cadence: consolidation every quarter second,
                    // not a merge storm pinning the table write lock.
                    std::thread::sleep(Duration::from_millis(250));
                }
                merges
            }));
        }
        // Let the stream actually get going before sampling.
        std::thread::sleep(Duration::from_millis(50));
    }

    let mut lat_us: Vec<f64> = Vec::with_capacity(OLAP_ITERS);
    for _ in 0..OLAP_ITERS {
        let t0 = Instant::now();
        olap.execute("SELECT k, COUNT(*) AS n, SUM(v) AS s FROM readings GROUP BY k")
            .unwrap();
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    stop.store(true, Ordering::Relaxed);
    for h in background {
        h.join().unwrap();
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    lat_us[(lat_us.len() * 95) / 100]
}

fn bench_streaming_ingest(c: &mut Criterion) {
    let (hana, s) = platform();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE readings (k INTEGER, v INTEGER) \
         PARTITION BY HASH(k) PARTITIONS 2",
    )
    .unwrap();
    let batch: Vec<Row> = (0..1024).map(event).collect();
    let mut epoch = 0u64;
    let mut group = c.benchmark_group("streaming_ingest");
    group.throughput(Throughput::Elements(batch.len() as u64));
    // One exactly-once epoch commit of a full micro-batch — the unit
    // of work the pipeline worker pays per batch.
    group.bench_function("epoch_commit/1024_rows", |b| {
        b.iter(|| {
            epoch += 1;
            hana.commit_ingest_batch(&s, "bench", epoch, "readings", &batch)
                .unwrap()
        })
    });
    group.finish();
}

fn emit_json() {
    let insert_rate = run_per_row_inserts(INSERT_ROWS);
    let pipeline_rate = run_pipeline(STREAM_ROWS);
    let speedup = pipeline_rate / insert_rate;
    let p95_quiet = olap_p95_us(false);
    let p95_ingest = olap_p95_us(true);

    println!(
        "streaming_ingest: pipeline {pipeline_rate:.0} rows/s vs per-row inserts \
         {insert_rate:.0} rows/s ({speedup:.1}x); OLAP p95 {p95_quiet:.0}us quiet, \
         {p95_ingest:.0}us with concurrent ingest+merges"
    );
    assert!(
        speedup >= 2.0,
        "micro-batched ingest must clearly beat per-row inserts, measured {speedup:.2}x"
    );
    assert!(
        p95_ingest < p95_quiet * 25.0,
        "concurrent ingest+merges must not collapse OLAP latency \
         ({p95_ingest:.0}us vs {p95_quiet:.0}us quiet)"
    );

    let json = format!(
        "{{\n  \"bench\": \"streaming_ingest\",\n  \
         \"stream_rows\": {STREAM_ROWS},\n  \
         \"baseline\": \"per_row_insert\",\n  \
         \"per_row_insert\": {{\"rows\": {INSERT_ROWS}, \"rows_per_sec\": {ir:.1}}},\n  \
         \"pipeline\": {{\"rows\": {STREAM_ROWS}, \"rows_per_sec\": {pr:.1}}},\n  \
         \"olap_p95_quiet_us\": {pq:.1},\n  \
         \"olap_p95_with_ingest_us\": {pi:.1},\n  \
         \"speedup\": {speedup:.2}\n}}\n",
        ir = insert_rate,
        pr = pipeline_rate,
        pq = p95_quiet,
        pi = p95_ingest,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_streaming_ingest.json"
    );
    std::fs::write(path, json).expect("write BENCH_streaming_ingest.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_streaming_ingest);

fn main() {
    benches();
    emit_json();
}
