//! Multi-session front-end benchmark: sustained mixed OLTP/OLAP
//! throughput through the hana-session layer — shared plan cache,
//! prepared statements, and workload-class admission control.
//!
//! 128 concurrent sessions (one OS thread each) hammer a single
//! platform: most run prepared point lookups (OLTP), the rest run
//! group-by aggregates (OLAP). Besides the criterion timings, the run
//! emits `BENCH_concurrent_qps.json` at the repository root with
//! sustained QPS and per-class p50/p95/p99 latencies read from the
//! `hana_session_latency_ns_{oltp,olap}` histograms in the hana-obs
//! registry, plus plan-cache hit/miss counts and the peak admitted
//! OLAP concurrency observed by the admission controller.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, Criterion, Throughput};
use hana_core::HanaPlatform;
use hana_session::{SessionManager, WorkloadClass};
use hana_types::{Row, Value};

const ROWS: i64 = 50_000;
const GROUPS: i64 = 97;
/// Total concurrent sessions (ISSUE floor: at least 100).
const SESSIONS: usize = 128;
/// Sessions running analytical statements; the rest are OLTP.
const OLAP_SESSIONS: usize = 24;
/// OLTP sessions cycle this many distinct keys, so once warm the
/// steady state is cache-hit dominated by construction.
const HOT_KEYS: i64 = 997;
const WARMUP: Duration = Duration::from_millis(600);
const MEASURE: Duration = Duration::from_millis(1200);

const LOOKUP_Q: &str = "SELECT v FROM accounts WHERE k = ?";
// Two aggregate shapes so OLAP sessions exercise the shared cache too.
const AGG_QS: [&str; 2] = [
    "SELECT v, COUNT(*) AS n, SUM(k) AS total FROM accounts GROUP BY v",
    "SELECT v, COUNT(*) AS n FROM accounts WHERE k >= 0 GROUP BY v",
];

fn mix(i: i64) -> i64 {
    (i.wrapping_mul(2_654_435_761)).rem_euclid(ROWS)
}

fn setup() -> Arc<SessionManager> {
    let platform = Arc::new(HanaPlatform::new_in_memory());
    let s = platform.connect("SYSTEM", "manager").unwrap();
    platform
        .execute_sql(&s, "CREATE COLUMN TABLE accounts (k INTEGER, v INTEGER)")
        .unwrap();
    let rows: Vec<Row> = (0..ROWS)
        .map(|i| Row::from_values([Value::Int(i), Value::Int(i % GROUPS)]))
        .collect();
    platform.load_rows(&s, "accounts", &rows).unwrap();
    platform.execute_sql(&s, "MERGE DELTA OF accounts").unwrap();
    Arc::new(SessionManager::new(platform))
}

fn counter(name: &str) -> u64 {
    hana_obs::registry().counter(name).get()
}

fn median_nanos(mut f: impl FnMut()) -> u128 {
    const RUNS: usize = 15;
    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = std::time::Instant::now();
        f();
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[RUNS / 2]
}

fn bench_concurrent_qps(c: &mut Criterion) {
    let manager = setup();
    let session = manager.connect("SYSTEM", "manager").unwrap();
    let lookup = session.prepare(LOOKUP_Q).unwrap();
    let mut group = c.benchmark_group("concurrent_qps");
    group.throughput(Throughput::Elements(1));
    // Same binding every time: after the first execution the canonical
    // text hits the shared plan cache and skips parse + plan entirely.
    group.bench_function("session/lookup_cache_hit", |b| {
        b.iter(|| {
            session
                .execute_prepared(&lookup, &[Value::Int(42)])
                .unwrap()
                .len()
        })
    });
    // A fresh binding per iteration keys a fresh cache entry, so every
    // execution pays the full parse/plan path — the uncached baseline.
    group.bench_function("session/lookup_cache_miss", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            session
                .execute_prepared(&lookup, &[Value::Int(mix(i))])
                .unwrap()
                .len()
        })
    });
    group.bench_function("session/group_by_agg", |b| {
        b.iter(|| session.execute(AGG_QS[0]).unwrap().len())
    });
    group.finish();
}

struct StormOutcome {
    oltp_ops: u64,
    olap_ops: u64,
    olap_rejected: u64,
}

/// Run `SESSIONS` concurrent sessions against `manager` until `stop`
/// flips, tallying completed statements per class.
fn run_storm(manager: &Arc<SessionManager>, stop: &Arc<AtomicBool>) -> StormOutcome {
    let oltp_ops = Arc::new(AtomicU64::new(0));
    let olap_ops = Arc::new(AtomicU64::new(0));
    let olap_rejected = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(SESSIONS);
    for t in 0..SESSIONS {
        let manager = Arc::clone(manager);
        let stop = Arc::clone(stop);
        let oltp_ops = Arc::clone(&oltp_ops);
        let olap_ops = Arc::clone(&olap_ops);
        let olap_rejected = Arc::clone(&olap_rejected);
        handles.push(std::thread::spawn(move || {
            let session = manager.connect("SYSTEM", "manager").unwrap();
            if t < OLAP_SESSIONS {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    match session.execute(AGG_QS[i % AGG_QS.len()]) {
                        Ok(_) => {
                            olap_ops.fetch_add(1, Ordering::Relaxed);
                        }
                        // Admission shedding is a legal steady-state
                        // outcome for analytical bursts: back off.
                        Err(e) if e.kind() == "overloaded" => {
                            olap_rejected.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(e) => panic!("olap session failed: {e}"),
                    }
                }
            } else {
                let lookup = session.prepare(LOOKUP_Q).unwrap();
                let mut i = t as i64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    session
                        .execute_prepared(&lookup, &[Value::Int(mix(i % HOT_KEYS))])
                        .unwrap();
                    oltp_ops.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    // Warmup: let every session connect, fill the plan cache, settle.
    std::thread::sleep(WARMUP);
    let oltp_at_start = oltp_ops.load(Ordering::Relaxed);
    let olap_at_start = olap_ops.load(Ordering::Relaxed);
    let rejected_at_start = olap_rejected.load(Ordering::Relaxed);
    std::thread::sleep(MEASURE);
    let outcome = StormOutcome {
        oltp_ops: oltp_ops.load(Ordering::Relaxed) - oltp_at_start,
        olap_ops: olap_ops.load(Ordering::Relaxed) - olap_at_start,
        olap_rejected: olap_rejected.load(Ordering::Relaxed) - rejected_at_start,
    };
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    outcome
}

fn emit_json() {
    let manager = setup();
    let stop = Arc::new(AtomicBool::new(false));

    // Single-session plan-cache effect before the storm starts.
    let session = manager.connect("SYSTEM", "manager").unwrap();
    let lookup = session.prepare(LOOKUP_Q).unwrap();
    let mut i = 0;
    let miss_ns = median_nanos(|| {
        i += 1;
        session
            .execute_prepared(&lookup, &[Value::Int(mix(i))])
            .unwrap();
    });
    let hit_ns = median_nanos(|| {
        session
            .execute_prepared(&lookup, &[Value::Int(42)])
            .unwrap();
    });
    let cache_speedup = miss_ns as f64 / hit_ns as f64;
    println!(
        "concurrent_qps: prepared lookup {:.3} ms on cache hit vs {:.3} ms uncached \
         ({cache_speedup:.1}x from the shared plan cache)",
        hit_ns as f64 / 1e6,
        miss_ns as f64 / 1e6,
    );

    let hits_before = counter("hana_session_plan_cache_hits_total");
    let misses_before = counter("hana_session_plan_cache_misses_total");
    let outcome = run_storm(&manager, &stop);
    let hits = counter("hana_session_plan_cache_hits_total") - hits_before;
    let misses = counter("hana_session_plan_cache_misses_total") - misses_before;

    let obs = hana_obs::registry();
    let oltp = obs.histogram("hana_session_latency_ns_oltp").snapshot();
    let olap = obs.histogram("hana_session_latency_ns_olap").snapshot();
    let (_, _, olap_peak) = manager.workload().class_stats(WorkloadClass::Olap);
    let (_, _, oltp_peak) = manager.workload().class_stats(WorkloadClass::Oltp);

    let secs = MEASURE.as_secs_f64();
    let total_qps = (outcome.oltp_ops + outcome.olap_ops) as f64 / secs;
    let oltp_qps = outcome.oltp_ops as f64 / secs;
    let olap_qps = outcome.olap_ops as f64 / secs;

    // Acceptance anchors: the front end really sustained the session
    // count, the cache ran hot, and admission bounded OLAP.
    const { assert!(SESSIONS >= 100, "bench must drive 100+ concurrent sessions") };
    assert!(
        outcome.oltp_ops > 0 && outcome.olap_ops > 0,
        "both classes ran"
    );
    assert!(
        hits > misses,
        "steady state must be cache-hit dominated ({hits} hits vs {misses} misses)"
    );
    assert!(
        olap_peak <= 8,
        "admission must bound OLAP concurrency at the class limit (peak {olap_peak})"
    );

    println!(
        "concurrent_qps: {SESSIONS} sessions sustained {total_qps:.0} QPS \
         (oltp {oltp_qps:.0}, olap {olap_qps:.0}; {} olap statements shed)",
        outcome.olap_rejected
    );
    println!(
        "concurrent_qps: oltp p50/p95/p99 = {:.3}/{:.3}/{:.3} ms, \
         olap p50/p95/p99 = {:.3}/{:.3}/{:.3} ms",
        oltp.p50 as f64 / 1e6,
        oltp.p95 as f64 / 1e6,
        oltp.p99 as f64 / 1e6,
        olap.p50 as f64 / 1e6,
        olap.p95 as f64 / 1e6,
        olap.p99 as f64 / 1e6,
    );
    println!(
        "concurrent_qps: plan cache {hits} hits / {misses} misses, \
         peak running oltp={oltp_peak} olap={olap_peak}"
    );

    let json = format!(
        "{{\n  \"bench\": \"concurrent_qps\",\n  \"sessions\": {SESSIONS},\n  \
         \"oltp_sessions\": {oltp_n},\n  \"olap_sessions\": {OLAP_SESSIONS},\n  \
         \"rows\": {ROWS},\n  \"measure_secs\": {secs:.3},\n  \
         \"qps\": {{\"total\": {total_qps:.1}, \"oltp\": {oltp_qps:.1}, \
         \"olap\": {olap_qps:.1}}},\n  \
         \"oltp_latency_ns\": {{\"count\": {oc}, \"p50\": {op50}, \"p95\": {op95}, \
         \"p99\": {op99}}},\n  \
         \"olap_latency_ns\": {{\"count\": {ac}, \"p50\": {ap50}, \"p95\": {ap95}, \
         \"p99\": {ap99}}},\n  \
         \"plan_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \
         \"hit_median_ns\": {hit_ns}, \"miss_median_ns\": {miss_ns}, \
         \"speedup\": {cache_speedup:.1}}},\n  \
         \"admission\": {{\"oltp_peak_running\": {oltp_peak}, \
         \"olap_peak_running\": {olap_peak}, \"olap_shed\": {shed}}}\n}}\n",
        oltp_n = SESSIONS - OLAP_SESSIONS,
        oc = oltp.count,
        op50 = oltp.p50,
        op95 = oltp.p95,
        op99 = oltp.p99,
        ac = olap.count,
        ap50 = olap.p50,
        ap95 = olap.p95,
        ap99 = olap.p99,
        shed = outcome.olap_rejected,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_concurrent_qps.json"
    );
    std::fs::write(path, json).expect("write BENCH_concurrent_qps.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_concurrent_qps);

fn main() {
    benches();
    emit_json();
}
