//! E15 — group commit vs per-commit fsync: 32 concurrent committers
//! drive durable transactions through the WAL twice, once with the
//! group-commit window enabled (one fsync per batch) and once with it
//! disabled (every commit pays its own fsync). Emits
//! `BENCH_wal_commit.json` at the repository root with both
//! throughputs, the fsync counts actually paid, and the speedup over
//! the per-commit baseline.
//!
//! The log directories live under `target/` — *not* `/tmp`, which is
//! commonly tmpfs where fsync is free and the comparison meaningless.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion, Throughput};
use hana_txn::{LogRecord, Wal, WalConfig};

/// Concurrent committer threads (ISSUE floor: 32).
const COMMITTERS: u64 = 32;
/// Durable transactions per committer in the timed comparison.
const TXNS_PER_COMMITTER: u64 = 64;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target"))
        .join(format!("bench-wal-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(window: Duration) -> WalConfig {
    WalConfig {
        group_commit_window: window,
        ..WalConfig::default()
    }
}

fn counter(name: &str) -> u64 {
    hana_obs::registry().counter(name).get()
}

struct ModeOutcome {
    elapsed: Duration,
    fsyncs: u64,
    commits_per_sec: f64,
}

/// Run the 32-committer storm against a fresh log with `window` and
/// return wall time, fsyncs paid and throughput.
fn run_storm(tag: &str, window: Duration) -> ModeOutcome {
    let dir = bench_dir(tag);
    let wal = Arc::new(Wal::open_dir_with(&dir, config(window)).unwrap());
    let fsyncs_before = counter("hana_wal_fsyncs_total");
    let start = Instant::now();
    let handles: Vec<_> = (0..COMMITTERS)
        .map(|t| {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || {
                for i in 0..TXNS_PER_COMMITTER {
                    let tid = t * TXNS_PER_COMMITTER + i + 1;
                    wal.append(LogRecord::Begin { tid }).unwrap();
                    wal.append(LogRecord::Data {
                        tid,
                        engine: "hana".into(),
                        payload: format!("INSERT INTO accounts VALUES ({tid}, {i})"),
                    })
                    .unwrap();
                    // The durable wait is the commit point: the ticket
                    // resolves when the record is on disk.
                    wal.submit_durable(LogRecord::Commit { tid, cid: tid })
                        .wait()
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let fsyncs = counter("hana_wal_fsyncs_total") - fsyncs_before;
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    let total = (COMMITTERS * TXNS_PER_COMMITTER) as f64;
    ModeOutcome {
        elapsed,
        fsyncs,
        commits_per_sec: total / elapsed.as_secs_f64(),
    }
}

fn bench_wal_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_commit");
    group.throughput(Throughput::Elements(1));

    // Single-committer durable append latency in both modes — the
    // uncontended cost floor (group commit only wins under concurrency).
    let direct_dir = bench_dir("direct-single");
    let direct = Wal::open_dir_with(&direct_dir, config(Duration::ZERO)).unwrap();
    let mut tid = 0;
    group.bench_function("per_commit_fsync/single", |b| {
        b.iter(|| {
            tid += 1;
            direct
                .append_durable(LogRecord::Commit { tid, cid: tid })
                .unwrap()
        })
    });
    drop(direct);
    let _ = std::fs::remove_dir_all(&direct_dir);

    let grouped_dir = bench_dir("grouped-single");
    let grouped = Wal::open_dir_with(&grouped_dir, config(Duration::from_micros(200))).unwrap();
    let mut tid = 0;
    group.bench_function("group_commit/single", |b| {
        b.iter(|| {
            tid += 1;
            grouped
                .append_durable(LogRecord::Commit { tid, cid: tid })
                .unwrap()
        })
    });
    drop(grouped);
    let _ = std::fs::remove_dir_all(&grouped_dir);
    group.finish();
}

fn emit_json() {
    let baseline = run_storm("direct", Duration::ZERO);
    let grouped = run_storm("grouped", Duration::from_micros(200));
    let speedup = grouped.commits_per_sec / baseline.commits_per_sec;
    let total = COMMITTERS * TXNS_PER_COMMITTER;

    println!(
        "wal_commit: {COMMITTERS} committers x {TXNS_PER_COMMITTER} txns — \
         group commit {:.0} commits/s over {} fsyncs vs per-commit fsync \
         {:.0} commits/s over {} fsyncs ({speedup:.1}x)",
        grouped.commits_per_sec, grouped.fsyncs, baseline.commits_per_sec, baseline.fsyncs,
    );
    assert!(
        grouped.fsyncs < baseline.fsyncs / 4,
        "group commit must batch fsyncs ({} vs {})",
        grouped.fsyncs,
        baseline.fsyncs
    );
    assert!(
        speedup >= 5.0,
        "group commit must be at least 5x per-commit fsync at {COMMITTERS} \
         committers, measured {speedup:.1}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"wal_commit\",\n  \"committers\": {COMMITTERS},\n  \
         \"txns_per_committer\": {TXNS_PER_COMMITTER},\n  \"total_commits\": {total},\n  \
         \"baseline\": \"per_commit_fsync\",\n  \
         \"per_commit_fsync\": {{\"secs\": {bs:.4}, \"commits_per_sec\": {bq:.1}, \
         \"fsyncs\": {bf}}},\n  \
         \"group_commit\": {{\"window_us\": 200, \"secs\": {gs:.4}, \
         \"commits_per_sec\": {gq:.1}, \"fsyncs\": {gf}}},\n  \
         \"speedup\": {speedup:.2}\n}}\n",
        bs = baseline.elapsed.as_secs_f64(),
        bq = baseline.commits_per_sec,
        bf = baseline.fsyncs,
        gs = grouped.elapsed.as_secs_f64(),
        gq = grouped.commits_per_sec,
        gf = grouped.fsyncs,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal_commit.json");
    std::fs::write(path, json).expect("write BENCH_wal_commit.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_wal_commit);

fn main() {
    benches();
    emit_json();
}
