//! E8 — ESP ingest throughput for the §3.2 use cases: plain window
//! retention, prefilter + aggregate, ESP join enrichment, and pattern
//! matching.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hana_esp::EspEngine;
use hana_types::{DataType, ResultSet, Row, Schema, Value};

const EVENTS: usize = 20_000;

fn engine() -> EspEngine {
    let esp = EspEngine::new();
    esp.deploy(
        "CREATE INPUT STREAM events SCHEMA (cell VARCHAR(8), kind VARCHAR(8), load DOUBLE);\n\
         CREATE OUTPUT WINDOW health AS \
             SELECT cell, AVG(load) AS avg_load, COUNT(*) AS n \
             FROM events WHERE kind = 'status' GROUP BY cell KEEP 5000 ROWS",
    )
    .unwrap();
    esp
}

fn ev(i: usize) -> Row {
    Row::from_values([
        Value::from(["c1", "c2", "c3", "c4"][i % 4]),
        Value::from(if i.is_multiple_of(5) {
            "billing"
        } else {
            "status"
        }),
        Value::Double((i % 100) as f64),
    ])
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("esp_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(EVENTS as u64));

    group.bench_function("prefilter_window_ingest", |b| {
        b.iter(|| {
            let esp = engine();
            for i in 0..EVENTS {
                esp.send("events", i as i64, ev(i)).unwrap();
            }
            esp.window_snapshot("health").unwrap()
        })
    });

    group.bench_function("esp_join_enrichment", |b| {
        let esp = engine();
        esp.register_reference(
            "cells",
            ResultSet::new(
                Schema::of(&[("cell_id", DataType::Varchar), ("city", DataType::Varchar)]),
                (0..4)
                    .map(|i| {
                        Row::from_values([
                            Value::from(format!("c{}", i + 1)),
                            Value::from(format!("city-{i}")),
                        ])
                    })
                    .collect(),
            ),
        );
        esp.deploy(
            "CREATE OUTPUT STREAM located AS \
             SELECT e.cell, r.city, e.load FROM events e JOIN cells r ON e.cell = r.cell_id \
             WHERE e.load > 50",
        )
        .unwrap();
        b.iter(|| {
            for i in 0..EVENTS {
                esp.send("events", i as i64, ev(i)).unwrap();
            }
        })
    });

    group.bench_function("pattern_matching", |b| {
        let esp = engine();
        esp.define_pattern(
            "spike",
            "events",
            &["load > 90", "load > 95", "kind = 'billing'"],
            60,
        )
        .unwrap();
        b.iter(|| {
            for i in 0..EVENTS {
                esp.send("events", i as i64 * 1000, ev(i)).unwrap();
            }
            esp.take_alerts("spike")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
