//! Scale-out exchange benchmarks: partition pruning against a full
//! fan-out scan, and partial-aggregate shuffles against gathering every
//! row to the coordinator.
//!
//! Besides the criterion timings, the run emits
//! `BENCH_dist_shuffle.json` at the repository root with median
//! wall-clock numbers, speedups, and the partitions-pruned /
//! rows-shuffled counts observed through the metrics registry.

use std::collections::HashMap;
use std::time::Instant;

use criterion::{criterion_group, Criterion, Throughput};
use hana_core::{HanaPlatform, Session};
use hana_types::{Row, Value};

const ROWS: usize = 200_000;
const GROUPS: i64 = 64;
const PARTITIONS: usize = 4;

fn mix(i: usize) -> usize {
    i.wrapping_mul(2_654_435_761)
}

/// A platform with a hash-partitioned `t(k, v)` over [`PARTITIONS`]
/// nodes, `ROWS` rows, `k` drawn from [`GROUPS`] groups.
fn setup() -> (HanaPlatform, Session) {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(
        &s,
        &format!(
            "CREATE COLUMN TABLE t (k INTEGER, v INTEGER) \
             PARTITION BY HASH(k) PARTITIONS {PARTITIONS}"
        ),
    )
    .unwrap();
    let rows: Vec<Row> = (0..ROWS)
        .map(|i| {
            Row::from_values([
                Value::Int((mix(i) as i64).rem_euclid(GROUPS)),
                Value::Int(i as i64),
            ])
        })
        .collect();
    hana.load_rows(&s, "t", &rows).unwrap();
    hana.execute_sql(&s, "MERGE DELTA OF t").unwrap();
    (hana, s)
}

// A point predicate on the partition key prunes all but one partition;
// the same shape on the non-key column must fan out to every node.
const PRUNED_Q: &str = "SELECT COUNT(*) FROM t WHERE k = 7";
const UNPRUNED_Q: &str = "SELECT COUNT(*) FROM t WHERE v >= 0";
const PARTIAL_AGG_Q: &str = "SELECT k, COUNT(*) AS n, SUM(v) AS total FROM t GROUP BY k";
const GATHER_ALL_Q: &str = "SELECT k, v FROM t";

/// The gather-all baseline: ship every row to the coordinator and
/// aggregate there — what a distributed plan without partition-wise
/// partial aggregation would do.
fn gather_all_group_by(hana: &HanaPlatform, s: &Session) -> usize {
    let rs = hana.execute_sql(s, GATHER_ALL_Q).unwrap();
    let mut acc: HashMap<Value, (i64, i64)> = HashMap::new();
    for row in &rs.rows {
        let e = acc.entry(row[0].clone()).or_insert((0, 0));
        e.0 += 1;
        if let Value::Int(v) = row[1] {
            e.1 += v;
        }
    }
    acc.len()
}

fn bench_dist_shuffle(c: &mut Criterion) {
    let (hana, s) = setup();
    let mut group = c.benchmark_group("dist_shuffle");
    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_function("scan/pruned", |b| {
        b.iter(|| hana.execute_sql(&s, PRUNED_Q).unwrap().len())
    });
    group.bench_function("scan/unpruned", |b| {
        b.iter(|| hana.execute_sql(&s, UNPRUNED_Q).unwrap().len())
    });
    group.bench_function("group_by/partial_agg", |b| {
        b.iter(|| hana.execute_sql(&s, PARTIAL_AGG_Q).unwrap().len())
    });
    group.bench_function("group_by/gather_all", |b| {
        b.iter(|| gather_all_group_by(&hana, &s))
    });
    group.finish();
}

fn median_nanos(mut f: impl FnMut()) -> u128 {
    const RUNS: usize = 15;
    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[RUNS / 2]
}

/// Delta of a global registry counter across `f`.
fn counter_delta(name: &str, mut f: impl FnMut()) -> u64 {
    let before = hana_obs::registry().counter(name).get();
    f();
    hana_obs::registry().counter(name).get() - before
}

/// Direct `Instant` medians for the machine-readable summary (the
/// criterion stub reports means on stdout only).
fn emit_json() {
    let (hana, s) = setup();

    // Correctness anchors before timing anything.
    let pruned_rs = hana.execute_sql(&s, PRUNED_Q).unwrap();
    assert!(matches!(pruned_rs.scalar().unwrap(), Value::Int(n) if *n > 0));
    assert_eq!(
        hana.execute_sql(&s, PARTIAL_AGG_Q).unwrap().len(),
        GROUPS as usize
    );
    assert_eq!(gather_all_group_by(&hana, &s), GROUPS as usize);

    let pruned = counter_delta("hana_dist_partitions_pruned_total", || {
        hana.execute_sql(&s, PRUNED_Q).unwrap();
    });
    assert_eq!(pruned as usize, PARTITIONS - 1, "point predicate prunes");
    let pruned_ns = median_nanos(|| {
        hana.execute_sql(&s, PRUNED_Q).unwrap();
    });
    let unpruned_ns = median_nanos(|| {
        hana.execute_sql(&s, UNPRUNED_Q).unwrap();
    });
    let prune_speedup = unpruned_ns as f64 / pruned_ns as f64;
    println!(
        "dist_shuffle: pruned scan {:.3} ms ({prune_speedup:.2}x vs unpruned {:.3} ms, \
         {pruned}/{PARTITIONS} partitions pruned)",
        pruned_ns as f64 / 1e6,
        unpruned_ns as f64 / 1e6,
    );

    let partial_shuffled = counter_delta("hana_dist_rows_shuffled_total", || {
        hana.execute_sql(&s, PARTIAL_AGG_Q).unwrap();
    });
    let gather_shuffled = counter_delta("hana_dist_rows_shuffled_total", || {
        gather_all_group_by(&hana, &s);
    });
    assert!(
        partial_shuffled <= GROUPS as u64 * PARTITIONS as u64,
        "partial aggregation ships at most one state per (group, node)"
    );
    assert_eq!(gather_shuffled as usize, ROWS, "gather-all ships every row");
    let partial_ns = median_nanos(|| {
        hana.execute_sql(&s, PARTIAL_AGG_Q).unwrap();
    });
    let gather_ns = median_nanos(|| {
        gather_all_group_by(&hana, &s);
    });
    let agg_speedup = gather_ns as f64 / partial_ns as f64;
    println!(
        "dist_shuffle: partial-agg group-by {:.3} ms ({agg_speedup:.2}x vs gather-all \
         {:.3} ms; {partial_shuffled} vs {gather_shuffled} items shuffled)",
        partial_ns as f64 / 1e6,
        gather_ns as f64 / 1e6,
    );

    let json = format!(
        "{{\n  \"bench\": \"dist_shuffle\",\n  \"rows\": {ROWS},\n  \
         \"partitions\": {PARTITIONS},\n  \"groups\": {GROUPS},\n  \
         \"scan\": {{\"pruned_median_ns\": {pruned_ns}, \
         \"unpruned_median_ns\": {unpruned_ns}, \"speedup\": {prune_speedup:.3}, \
         \"partitions_pruned\": {pruned}}},\n  \
         \"group_by\": {{\"partial_agg_median_ns\": {partial_ns}, \
         \"gather_all_median_ns\": {gather_ns}, \"speedup\": {agg_speedup:.3}, \
         \"partial_rows_shuffled\": {partial_shuffled}, \
         \"gather_rows_shuffled\": {gather_shuffled}}}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dist_shuffle.json");
    std::fs::write(path, json).expect("write BENCH_dist_shuffle.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_dist_shuffle);

fn main() {
    benches();
    emit_json();
}
