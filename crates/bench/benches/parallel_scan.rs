//! Morsel-driven parallel scan scaling: serial `ColumnTable::scan`
//! against `par_scan` at 1, 2, 4 and 8 workers on a 1M-row table.
//!
//! Besides the criterion timings, the run emits
//! `BENCH_parallel_scan.json` at the repository root with median
//! wall-clock numbers and per-worker-count speedups.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use hana_columnar::{ColumnPredicate, ColumnTable};
use hana_exec::{ExecConfig, ExecContext};
use hana_types::{DataType, Schema, Value};

const ROWS: usize = 1_000_000;
const DELTA_TAIL: usize = 50_000;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A merged 1M-row main plus an unmerged delta tail, with enough
/// distinct values that the codec stays bit-packed (no degenerate RLE).
fn build_table() -> ColumnTable {
    let mut t = ColumnTable::new("t", Schema::of(&[("v", DataType::Int)]));
    for i in 0..ROWS as i64 {
        t.insert(&[Value::Int((i * 2_654_435_761) % 10_000)], 1)
            .unwrap();
    }
    t.merge_delta();
    for i in 0..DELTA_TAIL as i64 {
        t.insert(&[Value::Int(i % 10_000)], 1).unwrap();
    }
    t
}

fn pred() -> ColumnPredicate {
    ColumnPredicate::Between(Value::Int(1_000), Value::Int(3_000))
}

fn bench_parallel_scan(c: &mut Criterion) {
    let t = build_table();
    let pred = pred();
    let mut group = c.benchmark_group("parallel_scan");
    group.throughput(Throughput::Elements((ROWS + DELTA_TAIL) as u64));
    group.bench_function("serial", |b| {
        b.iter(|| t.scan(0, &pred, 5).unwrap().count())
    });
    for workers in WORKER_COUNTS {
        let exec = ExecContext::new(ExecConfig::default().with_workers(workers));
        group.bench_function(BenchmarkId::new("par", workers), |b| {
            b.iter(|| t.par_scan(&exec, 0, &pred, 5).unwrap().count())
        });
    }
    group.finish();
}

fn median_nanos(mut f: impl FnMut()) -> u128 {
    const RUNS: usize = 15;
    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[RUNS / 2]
}

/// Direct `Instant` medians for the machine-readable summary (the
/// criterion stub reports means on stdout only).
fn emit_json() {
    let t = build_table();
    let pred = pred();
    let serial = t.scan(0, &pred, 5).unwrap();
    let serial_ns = median_nanos(|| {
        t.scan(0, &pred, 5).unwrap();
    });
    let mut entries = Vec::new();
    for workers in WORKER_COUNTS {
        let exec = ExecContext::new(ExecConfig::default().with_workers(workers));
        assert_eq!(
            t.par_scan(&exec, 0, &pred, 5).unwrap(),
            serial,
            "parallel scan diverged from serial"
        );
        let ns = median_nanos(|| {
            t.par_scan(&exec, 0, &pred, 5).unwrap();
        });
        let speedup = serial_ns as f64 / ns as f64;
        println!(
            "parallel_scan: {workers} workers {:.3} ms ({speedup:.2}x vs serial {:.3} ms)",
            ns as f64 / 1e6,
            serial_ns as f64 / 1e6,
        );
        entries.push(format!(
            "    {{\"workers\": {workers}, \"median_ns\": {ns}, \"speedup\": {speedup:.3}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"parallel_scan\",\n  \"rows\": {},\n  \
         \"serial_median_ns\": {serial_ns},\n  \"parallel\": [\n{}\n  ]\n}}\n",
        ROWS + DELTA_TAIL,
        entries.join(",\n"),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_parallel_scan.json"
    );
    std::fs::write(path, json).expect("write BENCH_parallel_scan.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_parallel_scan);

fn main() {
    benches();
    emit_json();
}
