//! E1 / Figure 2 — the time-series storage claim: "compress the data by
//! more than a factor of 10 compared to row-oriented storage and more
//! than a factor of 3 compared to columnar storage".
//!
//! Benchmarks ingest and scan throughput of the three layouts and prints
//! the measured compression factors once at startup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hana_columnar::{Compensation, TimeSeriesTable};

const POINTS: usize = 100_000;

/// Plateau-heavy sensor signal with occasional gaps (energy-meter style).
fn meter_value(i: usize) -> Option<f64> {
    if i.is_multiple_of(97) {
        None
    } else {
        Some(100.0 + (i / 50) as f64 * 0.5 + ((i / 200) % 3) as f64 * 0.1)
    }
}

fn build(points: usize) -> TimeSeriesTable {
    let mut t =
        TimeSeriesTable::new("meters", 0, 60_000_000, &["power"], Compensation::Linear).unwrap();
    for i in 0..points {
        t.push(&[meter_value(i)]).unwrap();
    }
    t
}

fn report_compression() {
    let t = build(POINTS);
    let (ts, row, col) = (
        t.compressed_bytes(),
        t.row_layout_bytes(),
        t.plain_columnar_bytes(),
    );
    println!("--- Figure 2 reproduction ({POINTS} sensor readings) ---");
    println!("row-oriented : {row:>10} bytes");
    println!("plain columnar: {col:>9} bytes");
    println!("time series  : {ts:>10} bytes");
    println!(
        "factors      : {:.1}x vs rows (paper >10x), {:.1}x vs columnar (paper >3x)",
        row as f64 / ts as f64,
        col as f64 / ts as f64
    );
    assert!(row as f64 / ts as f64 > 10.0);
    assert!(col as f64 / ts as f64 > 3.0);
}

fn bench(c: &mut Criterion) {
    report_compression();

    let mut group = c.benchmark_group("fig2_timeseries");
    group.sample_size(10);
    group.throughput(Throughput::Elements(POINTS as u64));
    group.bench_function(BenchmarkId::new("ingest", POINTS), |b| {
        b.iter(|| build(POINTS))
    });

    let table = build(POINTS);
    group.bench_function(BenchmarkId::new("scan_compensated", POINTS), |b| {
        b.iter(|| {
            let v = table.series_values(0);
            assert_eq!(v.len(), POINTS);
            v
        })
    });
    group.bench_function(BenchmarkId::new("windowed_avg", POINTS), |b| {
        b.iter(|| table.avg(0, 0, POINTS as i64 * 60_000_000 / 2))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
