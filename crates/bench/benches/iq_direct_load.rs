//! E9 — extended storage: direct-load throughput ("Big Data scenarios
//! with high ingestion rate requirements", §3.1) and the zone-map /
//! bitmap-index pruning ablation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hana_columnar::ColumnPredicate;
use hana_iq::IqEngine;
use hana_types::{DataType, Row, Schema, Value};

const ROWS: usize = 100_000;

fn rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::from_values([
                Value::Int(i as i64),
                Value::from(["sensor", "billing", "gps"][i % 3]),
                Value::Double((i % 1_000) as f64),
            ])
        })
        .collect()
}

fn schema() -> Schema {
    Schema::of(&[
        ("id", DataType::Int),
        ("kind", DataType::Varchar),
        ("v", DataType::Double),
    ])
}

fn bench_direct_load(c: &mut Criterion) {
    let data = rows(ROWS);
    let mut group = c.benchmark_group("iq_direct_load");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_function("bulk_load_100k", |b| {
        b.iter(|| {
            let iq = IqEngine::new("iq-load", 512).unwrap();
            iq.create_table("t", schema()).unwrap();
            iq.direct_load("t", &data, 1).unwrap();
            iq
        })
    });
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let iq = IqEngine::new("iq-prune", 4096).unwrap();
    iq.create_table("t", schema()).unwrap();
    iq.direct_load("t", &rows(ROWS), 1).unwrap();

    let mut group = c.benchmark_group("iq_scan_ablation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));
    // Zone maps prune: the id column is load-ordered, so a narrow range
    // touches one chunk in ~25.
    group.bench_function("range_scan_prunable", |b| {
        b.iter(|| {
            iq.scan(
                "t",
                &[(
                    "id".into(),
                    ColumnPredicate::Between(Value::Int(1_000), Value::Int(1_100)),
                )],
                Some(&["id".to_string()]),
                1,
            )
            .unwrap()
        })
    });
    // The same selectivity on an unordered column defeats zone maps.
    group.bench_function("range_scan_unprunable", |b| {
        b.iter(|| {
            iq.scan(
                "t",
                &[(
                    "v".into(),
                    ColumnPredicate::Between(Value::Double(10.0), Value::Double(11.0)),
                )],
                Some(&["id".to_string()]),
                1,
            )
            .unwrap()
        })
    });
    // Equality on a 3-value column: served by the FP-style bitmap index.
    group.bench_function("bitmap_index_equality", |b| {
        b.iter(|| {
            iq.scan(
                "t",
                &[("kind".into(), ColumnPredicate::Eq(Value::from("gps")))],
                Some(&["kind".to_string()]),
                1,
            )
            .unwrap()
        })
    });
    group.finish();

    let (hits, misses) = iq.cache().stats();
    let pruned = iq
        .stats
        .chunks_pruned
        .load(std::sync::atomic::Ordering::Relaxed);
    println!("buffer cache: {hits} hits / {misses} misses; chunks pruned: {pruned}");
}

criterion_group!(benches, bench_direct_load, bench_pruning);
criterion_main!(benches);
