//! E2 / Figure 7 — the federated join strategies against the extended
//! storage: remote scan vs. semijoin vs. table relocation, under the
//! paper's scenario (selective local predicate, large remote table),
//! plus the optimizer's own choice.
//!
//! Plans are constructed explicitly so each strategy is measured even
//! when the cost model would not pick it.

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use hana_columnar::{ColumnPredicate, ColumnTable};
use hana_iq::IqEngine;
use hana_query::{
    execute_plan, Catalog, EstSource, FederationStrategy, PlanNode, PlanOp, PlannerContext,
    TableSource,
};
use hana_sda::{IqAdapter, SdaAdapter, SdaRegistry};
use hana_sql::{parse_statement, Expr, JoinKind, Statement};
use hana_types::{DataType, HanaError, Result, Row, Schema, Value};
use parking_lot::RwLock;

const DIM_ROWS: i64 = 1_000;
const FACT_ROWS: i64 = 100_000;

struct BenchCatalog {
    tables: HashMap<String, TableSource>,
    sda: SdaRegistry,
    iq: Arc<IqEngine>,
}

impl Catalog for BenchCatalog {
    fn resolve_table(&self, name: &str) -> Result<TableSource> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| HanaError::Catalog(name.into()))
    }
    fn sda(&self) -> &SdaRegistry {
        &self.sda
    }
    fn iq_engine(&self, _source: &str) -> Result<Arc<IqEngine>> {
        Ok(Arc::clone(&self.iq))
    }
}

fn world() -> BenchCatalog {
    let mut dim = ColumnTable::new(
        "dim",
        Schema::of(&[("d_id", DataType::Int), ("d_name", DataType::Varchar)]),
    );
    for i in 0..DIM_ROWS {
        dim.insert(&[Value::Int(i), Value::from(format!("d{i}"))], 1)
            .unwrap();
    }
    dim.merge_delta();
    let iq = Arc::new(IqEngine::new("iq-fig7", 2048).unwrap());
    iq.create_table(
        "fact",
        Schema::of(&[("f_dim", DataType::Int), ("f_val", DataType::Double)]),
    )
    .unwrap();
    let rows: Vec<Row> = (0..FACT_ROWS)
        .map(|i| Row::from_values([Value::Int(i % DIM_ROWS), Value::Double(i as f64)]))
        .collect();
    iq.direct_load("fact", &rows, 1).unwrap();
    let sda = SdaRegistry::new();
    let adapter: Arc<dyn SdaAdapter> = Arc::new(IqAdapter::new(Arc::clone(&iq)));
    sda.create_remote_source("iq", adapter, "internal", None)
        .unwrap();
    let mut tables = HashMap::new();
    tables.insert(
        "dim".into(),
        TableSource::Column(Arc::new(RwLock::new(dim))),
    );
    tables.insert(
        "fact".into(),
        TableSource::Extended {
            source: "iq".into(),
            remote_table: "fact".into(),
            schema: iq.table_schema("fact").unwrap(),
        },
    );
    BenchCatalog { tables, sda, iq }
}

/// The local side of the Figure 7 scenario: `dim` filtered to one row.
fn local_scan(cat: &BenchCatalog) -> PlanNode {
    let schema = cat.tables["dim"].schema().qualified("d");
    PlanNode {
        op: PlanOp::ColumnScan {
            binding: "d".into(),
            table: "dim".into(),
            preds: vec![("d_id".into(), ColumnPredicate::Eq(Value::Int(42)))],
        },
        schema,
        est_rows: 1.0,
        est_source: EstSource::Heuristic,
    }
}

fn strategy_plan(cat: &BenchCatalog, strategy: FederationStrategy) -> PlanNode {
    let local = local_scan(cat);
    let fact_schema = cat.tables["fact"].schema().qualified("f");
    let joined = local.schema.join(&fact_schema).unwrap();
    match strategy {
        FederationStrategy::RemoteScan => {
            let remote = PlanNode {
                op: PlanOp::RemoteQuery {
                    source: "iq".into(),
                    query: match parse_statement("SELECT * FROM fact f").unwrap() {
                        Statement::Query(q) => q,
                        _ => unreachable!(),
                    },
                    label: "remote scan".into(),
                },
                schema: fact_schema,
                est_rows: FACT_ROWS as f64,
                est_source: EstSource::Heuristic,
            };
            PlanNode {
                op: PlanOp::HashJoin {
                    left: Box::new(local),
                    right: Box::new(remote),
                    left_key: "d.d_id".into(),
                    right_key: "f.f_dim".into(),
                    kind: JoinKind::Inner,
                    dist: hana_query::DistJoinStrategy::Runtime,
                },
                schema: joined,
                est_rows: 100.0,
                est_source: EstSource::Heuristic,
            }
        }
        FederationStrategy::SemiJoin => PlanNode {
            op: PlanOp::SemiJoin {
                local: Box::new(local),
                local_key: "d.d_id".into(),
                source: "iq".into(),
                remote_table: "fact".into(),
                remote_preds: Vec::<Expr>::new(),
                remote_key: "f.f_dim".into(),
                remote_binding: "f".into(),
            },
            schema: joined,
            est_rows: 100.0,
            est_source: EstSource::Heuristic,
        },
        FederationStrategy::TableRelocation => PlanNode {
            op: PlanOp::RelocateJoin {
                local: Box::new(local),
                local_key: "d.d_id".into(),
                source: "iq".into(),
                remote_table: "fact".into(),
                remote_preds: Vec::<Expr>::new(),
                remote_key: "f.f_dim".into(),
                remote_binding: "f".into(),
            },
            schema: joined,
            est_rows: 100.0,
            est_source: EstSource::Heuristic,
        },
        FederationStrategy::UnionPlan => unreachable!("not a join strategy"),
    }
}

fn bench(c: &mut Criterion) {
    let cat = world();
    let expected = (FACT_ROWS / DIM_ROWS) as usize;

    let mut group = c.benchmark_group("fig7_federation");
    group.sample_size(10);
    for strategy in [
        FederationStrategy::RemoteScan,
        FederationStrategy::SemiJoin,
        FederationStrategy::TableRelocation,
    ] {
        let plan = strategy_plan(&cat, strategy);
        group.bench_function(strategy.name().replace(' ', "_"), |b| {
            b.iter(|| {
                let rs = execute_plan(&plan, &cat, 1).unwrap();
                assert_eq!(rs.len(), expected, "{strategy:?}");
                rs
            })
        });
    }
    // What the cost-based optimizer actually picks for the scenario.
    let Statement::Query(q) = parse_statement(
        "SELECT d.d_name, f.f_val FROM dim d JOIN fact f ON d.d_id = f.f_dim \
         WHERE d.d_id = 42",
    )
    .unwrap() else {
        unreachable!()
    };
    let chosen = PlannerContext::new(&cat).planner().plan(&q).unwrap();
    println!(
        "optimizer choice for the Figure 7 scenario: {:?}",
        chosen.strategies()
    );
    assert!(chosen.strategies().contains(&FederationStrategy::SemiJoin));
    group.bench_function("optimizer_choice", |b| {
        b.iter(|| execute_plan(&chosen, &cat, 1).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
