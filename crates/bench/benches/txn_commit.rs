//! E10 — transaction-path benchmarks: auto-commit DML through the
//! platform, distributed (two-participant) commits, and the read-only
//! optimization of the improved 2PC.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hana_core::HanaPlatform;
use hana_txn::{TransactionManager, TwoPhaseParticipant};

fn bench_platform_dml(c: &mut Criterion) {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(&s, "CREATE COLUMN TABLE t (a INTEGER, b VARCHAR(16))")
        .unwrap();
    hana.execute_sql(&s, "CREATE TABLE cold (a INTEGER) USING EXTENDED STORAGE")
        .unwrap();

    let mut group = c.benchmark_group("txn_commit");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    let mut i = 0i64;
    group.bench_function("autocommit_insert_local", |b| {
        b.iter(|| {
            i += 1;
            hana.execute_sql(&s, &format!("INSERT INTO t VALUES ({i}, 'x')"))
                .unwrap()
        })
    });
    group.bench_function("autocommit_insert_extended", |b| {
        b.iter(|| {
            i += 1;
            hana.execute_sql(&s, &format!("INSERT INTO cold VALUES ({i})"))
                .unwrap()
        })
    });
    group.bench_function("distributed_txn_both_engines", |b| {
        b.iter(|| {
            i += 1;
            hana.execute_sql(&s, "BEGIN").unwrap();
            hana.execute_sql(&s, &format!("INSERT INTO t VALUES ({i}, 'y')"))
                .unwrap();
            hana.execute_sql(&s, &format!("INSERT INTO cold VALUES ({i})"))
                .unwrap();
            hana.execute_sql(&s, "COMMIT").unwrap()
        })
    });
    group.finish();
}

fn bench_coordinator(c: &mut Criterion) {
    // Raw coordinator throughput with no-op participants, showing the
    // read-only optimization skipping phase 2.
    struct Noop(&'static str, bool);
    impl TwoPhaseParticipant for Noop {
        fn name(&self) -> &str {
            self.0
        }
        fn prepare(&self, _tid: u64) -> hana_types::Result<hana_txn::Vote> {
            Ok(if self.1 {
                hana_txn::Vote::Prepared
            } else {
                hana_txn::Vote::ReadOnly
            })
        }
        fn commit(&self, _tid: u64, _cid: u64) -> hana_types::Result<()> {
            Ok(())
        }
        fn abort(&self, _tid: u64) -> hana_types::Result<()> {
            Ok(())
        }
    }
    let tm = TransactionManager::new();
    let writers: Vec<Arc<dyn TwoPhaseParticipant>> =
        vec![Arc::new(Noop("a", true)), Arc::new(Noop("b", true))];
    let readers: Vec<Arc<dyn TwoPhaseParticipant>> =
        vec![Arc::new(Noop("a", false)), Arc::new(Noop("b", false))];

    let mut group = c.benchmark_group("coordinator");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    group.bench_function("2pc_two_writers", |b| {
        b.iter(|| tm.commit(tm.begin(), &writers).unwrap())
    });
    group.bench_function("2pc_read_only_skips_phase2", |b| {
        b.iter(|| {
            let r = tm.commit(tm.begin(), &readers).unwrap();
            assert_eq!(r.read_only_skipped.len(), 2);
            r
        })
    });
    group.finish();
}

criterion_group!(benches, bench_platform_dml, bench_coordinator);
criterion_main!(benches);
