//! E4/E5 / Figures 14 and 15 — remote materialization on the federated
//! TPC-H setup.
//!
//! The full 12-query tables are produced by
//! `cargo run --release --example tpch_federated`; this Criterion bench
//! measures representative queries from both groups (all-remote Q6/Q1*
//! and mixed Q14) in SDA-normal vs. cache-hit mode, plus the one-time
//! materialization (CTAS) cost.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use hana_bench::{TpchWorld, WorldConfig};
use hana_tpch::queries;

fn config() -> WorldConfig {
    WorldConfig {
        scale: 0.002,
        seed: 2015,
        job_startup: Duration::from_millis(2),
        task_startup: Duration::from_micros(200),
        worker_slots: 4,
        block_size: 1024 * 1024,
        odbc_row_cost_us: 30,
    }
}

fn bench(c: &mut Criterion) {
    let cfg = config();
    let remote_world = TpchWorld::build(&cfg, false).unwrap();
    let local_part_world = TpchWorld::build(&cfg, true).unwrap();
    remote_world.hana.set_remote_cache(true, 1_000_000);
    local_part_world.hana.set_remote_cache(true, 1_000_000);
    let all = queries();

    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    for name in ["Q6", "Q1*", "Q14"] {
        let q = all.iter().find(|q| q.name == name).unwrap().clone();
        let world = if remote_world.fits(name) {
            &remote_world
        } else {
            &local_part_world
        };
        let tag = name.replace('*', "s");
        group.bench_function(format!("{tag}/normal"), |b| {
            b.iter(|| world.run(&q, false).unwrap())
        });
        // Warm the cache once, then measure steady-state hits.
        world.run(&q, true).unwrap();
        group.bench_function(format!("{tag}/cache_hit"), |b| {
            b.iter(|| world.run(&q, true).unwrap())
        });
    }
    group.finish();

    // Figure 15: the one-time materialization cost (CTAS) for Q6.
    let mut group = c.benchmark_group("fig15_materialization_overhead");
    group.sample_size(10);
    let q6 = all.iter().find(|q| q.name == "Q6").unwrap().clone();
    group.bench_function("Q6/ctas_cost", |b| {
        b.iter(|| {
            // Force a fresh materialization by running against a query
            // variant with a unique predicate (distinct cache key).
            static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut q = q6.clone();
            q.sql = q
                .sql
                .replace("l_quantity < 24", &format!("l_quantity < {}", 24 + (n % 3)));
            remote_world.run(&q, true).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
