//! # hana-ingest: streaming ingest with exactly-once delivery
//!
//! Bridges the ESP event-stream engine and the relational platform:
//! an [`IngestPipeline`] subscribes to a stream/window via an ESP
//! table sink, buffers rows into bounded micro-batches, and commits
//! each batch as a numbered *epoch* through the platform's durable
//! ingest ledger ([`hana_core::HanaPlatform::commit_ingest_batch`]).
//! Epochs are monotone per pipeline and replay-deduplicated, so a
//! crash, a WAL replay, or a chunk-level retry inside the distributed
//! repartition exchange delivers every source row exactly once.
//!
//! The [`IngestRuntime`] owns the pipelines and implements
//! [`hana_core::IngestDriver`], which wires `CREATE STREAM SINK ... ON
//! <stream> INTO <table>` and `DROP STREAM SINK` SQL through to
//! [`IngestRuntime::attach`] / [`IngestRuntime::detach`].
//!
//! Backpressure propagates end to end: a full pipeline buffer blocks
//! the ESP sink emission, which blocks `EspEngine::send`, which (with
//! the engine's bounded input gate) blocks the event producer.

mod config;
mod pipeline;
mod runtime;

pub use config::{IngestConfig, DEFAULT_BATCH_ROWS, DEFAULT_MAX_INFLIGHT};
pub use pipeline::{IngestPipeline, IngestStats};
pub use runtime::IngestRuntime;
