//! The runtime that owns ingest pipelines and backs the `CREATE
//! STREAM SINK` / `DROP STREAM SINK` SQL statements.

use std::collections::HashMap;
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use hana_core::{HanaPlatform, IngestDriver, Session};
use hana_esp::{Sink, SinkId, TableWriter};
use hana_types::{HanaError, Result, Row, Schema};

use crate::{IngestConfig, IngestPipeline, IngestStats};

struct Registered {
    pipeline: Arc<IngestPipeline>,
    /// ESP target the sink is attached to (lowercased).
    source: String,
    sink_id: SinkId,
}

/// Owns the pipelines of one platform and implements
/// [`IngestDriver`] so SQL can manage them.
///
/// Pipelines commit under the session that installed the runtime (a
/// service identity): the worker threads outlive the statement that
/// created a sink, so per-statement sessions would be the wrong
/// lifetime. `CREATE STREAM SINK` itself is still privilege-checked
/// against the issuing session by the platform.
pub struct IngestRuntime {
    platform: Weak<HanaPlatform>,
    session: Session,
    config: IngestConfig,
    pipelines: Mutex<HashMap<String, Registered>>,
}

impl IngestRuntime {
    /// Build a runtime with [`IngestConfig::from_env`] and register it
    /// as the platform's ingest driver.
    pub fn install(platform: &Arc<HanaPlatform>, session: &Session) -> Arc<IngestRuntime> {
        IngestRuntime::install_with(platform, session, IngestConfig::from_env())
    }

    /// [`IngestRuntime::install`] with an explicit configuration.
    pub fn install_with(
        platform: &Arc<HanaPlatform>,
        session: &Session,
        config: IngestConfig,
    ) -> Arc<IngestRuntime> {
        let rt = Arc::new(IngestRuntime {
            platform: Arc::downgrade(platform),
            session: session.clone(),
            config,
            pipelines: Mutex::new(HashMap::new()),
        });
        platform.register_ingest_driver(Arc::clone(&rt) as Arc<dyn IngestDriver>);
        rt
    }

    fn platform(&self) -> Result<Arc<HanaPlatform>> {
        self.platform
            .upgrade()
            .ok_or_else(|| HanaError::Stream("platform shut down".into()))
    }

    /// Start a pipeline named `name` that subscribes to ESP target
    /// `source` (a stream, window, or CCL output stream) and delivers
    /// into `table`. Epoch numbering resumes from the platform ledger.
    pub fn attach(&self, name: &str, source: &str, table: &str) -> Result<Arc<IngestPipeline>> {
        let platform = self.platform()?;
        let key = name.to_ascii_lowercase();
        let source_key = source.to_ascii_lowercase();
        // Fail before spawning anything if either end is missing.
        platform.catalog().table(table)?;
        platform.esp().target_kind(&source_key)?;

        let mut pipelines = self.pipelines.lock();
        if pipelines.contains_key(&key) {
            return Err(HanaError::Stream(format!(
                "stream sink '{key}' already exists"
            )));
        }
        let pipeline =
            IngestPipeline::start(&platform, &self.session, self.config.clone(), &key, table)?;
        let weak = Arc::downgrade(&pipeline);
        let writer: TableWriter =
            Arc::new(
                move |_table: &str, _schema: &Schema, rows: &[Row]| match weak.upgrade() {
                    Some(p) => p.submit(rows),
                    None => Err(HanaError::Stream("ingest pipeline detached".into())),
                },
            );
        let sink_id = match platform.esp().attach_sink(
            &source_key,
            Sink::Table {
                table: table.to_string(),
                writer,
            },
        ) {
            Ok(id) => id,
            Err(e) => {
                let _ = pipeline.close();
                return Err(e);
            }
        };
        pipelines.insert(
            key,
            Registered {
                pipeline: Arc::clone(&pipeline),
                source: source_key,
                sink_id,
            },
        );
        Ok(pipeline)
    }

    /// Detach the ESP sink, drain and stop the pipeline, and return its
    /// final counters. `Err` if no such sink, or if the pipeline had
    /// already failed.
    pub fn detach(&self, name: &str) -> Result<IngestStats> {
        let key = name.to_ascii_lowercase();
        let Some(entry) = self.pipelines.lock().remove(&key) else {
            return Err(HanaError::Stream(format!("unknown stream sink '{key}'")));
        };
        if let Some(platform) = self.platform.upgrade() {
            platform.esp().detach_sink(&entry.source, entry.sink_id);
        }
        entry.pipeline.close()
    }

    /// Look up a running pipeline by sink name.
    pub fn pipeline(&self, name: &str) -> Option<Arc<IngestPipeline>> {
        self.pipelines
            .lock()
            .get(&name.to_ascii_lowercase())
            .map(|e| Arc::clone(&e.pipeline))
    }

    /// Names of the running pipelines, sorted.
    pub fn pipeline_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.pipelines.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

impl IngestDriver for IngestRuntime {
    fn create_sink(&self, _session: &Session, name: &str, source: &str, table: &str) -> Result<()> {
        self.attach(name, source, table).map(|_| ())
    }

    fn drop_sink(&self, name: &str) -> Result<bool> {
        match self.detach(name) {
            Ok(_) => Ok(true),
            Err(HanaError::Stream(msg)) if msg.starts_with("unknown stream sink") => Ok(false),
            Err(e) => Err(e),
        }
    }
}
