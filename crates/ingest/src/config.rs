//! Pipeline tuning knobs, overridable from the environment.

use std::time::Duration;

use hana_sda::RetryPolicy;

/// Default rows per micro-batch (`HANA_INGEST_BATCH_ROWS`).
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// Default bound on buffered batches (`HANA_INGEST_MAX_INFLIGHT`): the
/// pipeline holds at most `batch_rows × max_inflight` rows; a full
/// buffer blocks [`IngestPipeline::submit`](crate::IngestPipeline::submit)
/// — and through the ESP sink, `EspEngine::send` — until the worker
/// drains it.
pub const DEFAULT_MAX_INFLIGHT: usize = 4;

/// Tuning of one [`IngestPipeline`](crate::IngestPipeline).
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Rows the worker commits per epoch (a partial batch commits when
    /// the queue runs dry or on flush).
    pub batch_rows: usize,
    /// Buffered-batch bound; see [`DEFAULT_MAX_INFLIGHT`].
    pub max_inflight: usize,
    /// Backoff schedule between *batch-level* commit retries. Chunk
    /// transfers inside the repartition exchange retry on their own;
    /// this policy paces the outer loop when a whole epoch commit
    /// fails with a retryable error (e.g. a partition node down).
    /// `max_attempts` is not a bound here — retryable epoch failures
    /// retry until the fault heals; the ledger makes that safe.
    pub retry: RetryPolicy,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            batch_rows: DEFAULT_BATCH_ROWS,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            retry: RetryPolicy::default()
                .with_base_backoff(Duration::from_millis(5))
                .with_max_backoff(Duration::from_millis(250)),
        }
    }
}

impl IngestConfig {
    /// Defaults overridden by `HANA_INGEST_BATCH_ROWS` and
    /// `HANA_INGEST_MAX_INFLIGHT`; malformed values warn and fall back.
    pub fn from_env() -> IngestConfig {
        let mut cfg = IngestConfig::default();
        cfg.batch_rows = env_positive("HANA_INGEST_BATCH_ROWS", cfg.batch_rows);
        cfg.max_inflight = env_positive("HANA_INGEST_MAX_INFLIGHT", cfg.max_inflight);
        cfg
    }

    /// Copy with a specific batch size.
    pub fn with_batch_rows(mut self, rows: usize) -> IngestConfig {
        self.batch_rows = rows.max(1);
        self
    }

    /// Copy with a specific in-flight bound.
    pub fn with_max_inflight(mut self, batches: usize) -> IngestConfig {
        self.max_inflight = batches.max(1);
        self
    }

    /// Copy with a specific batch-retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> IngestConfig {
        self.retry = retry;
        self
    }

    /// Row capacity of the pipeline buffer.
    pub(crate) fn capacity_rows(&self) -> usize {
        self.batch_rows.max(1) * self.max_inflight.max(1)
    }
}

fn env_positive(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                hana_obs::warn(format!(
                    "ingest: ignoring invalid {var}='{raw}' (want a positive integer); \
                     using {default}"
                ));
                default
            }
        },
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_warns_and_falls_back() {
        assert_eq!(env_positive("HANA_INGEST_TEST_UNSET", 7), 7);
        std::env::set_var("HANA_INGEST_TEST_BAD", "minus three");
        assert_eq!(env_positive("HANA_INGEST_TEST_BAD", 7), 7);
        std::env::set_var("HANA_INGEST_TEST_GOOD", " 64 ");
        assert_eq!(env_positive("HANA_INGEST_TEST_GOOD", 7), 64);
        std::env::remove_var("HANA_INGEST_TEST_BAD");
        std::env::remove_var("HANA_INGEST_TEST_GOOD");
    }

    #[test]
    fn capacity_is_batch_times_inflight() {
        let cfg = IngestConfig::default()
            .with_batch_rows(8)
            .with_max_inflight(3);
        assert_eq!(cfg.capacity_rows(), 24);
    }
}
