//! The micro-batching pipeline: a bounded row buffer, one worker
//! thread, and exactly-once epoch commits through
//! [`HanaPlatform::commit_ingest_batch`].
//!
//! Producers ([`IngestPipeline::submit`], usually called from an ESP
//! sink while the engine lock is held) block when the buffer is full —
//! that is the backpressure the ESP input gate propagates to event
//! sources. The worker drains up to `batch_rows` rows at a time,
//! stamps the batch with the pipeline's next epoch, and commits it.
//! Retryable commit failures (a partition node down or flaky beyond
//! the chunk retry budget) are retried **under the same epoch** until
//! the fault heals: the platform ledger deduplicates any partial
//! re-delivery, so the retry loop cannot duplicate rows. Permanent
//! failures poison the pipeline; subsequent submits surface the error.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Instant;

use hana_core::{HanaPlatform, IngestCommit, Session};
use hana_types::{HanaError, Result, Row};

use crate::IngestConfig;

/// Monotonic pipeline counters (a snapshot; see
/// [`IngestPipeline::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Rows accepted by `submit`.
    pub rows_submitted: u64,
    /// Rows committed into the target table.
    pub rows_committed: u64,
    /// Epochs committed.
    pub batches_committed: u64,
    /// Epochs acknowledged as already-committed duplicates.
    pub epochs_deduped: u64,
    /// Batch-level commit retries.
    pub retries: u64,
    /// `submit` calls that had to wait for buffer space.
    pub backpressure_waits: u64,
    /// Highest committed epoch.
    pub last_epoch: u64,
}

struct PipeState {
    queue: VecDeque<Row>,
    /// Rows taken off the queue and currently committing.
    committing: usize,
    next_epoch: u64,
    stopped: bool,
    poisoned: Option<String>,
    stats: IngestStats,
}

struct Shared {
    name: String,
    table: String,
    platform: Weak<HanaPlatform>,
    session: Session,
    config: IngestConfig,
    state: Mutex<PipeState>,
    /// Signals the worker: rows available or stopping.
    data: Condvar,
    /// Signals producers/flushers: space freed or batch finished.
    space: Condvar,
    /// Backpressure warn-once-per-episode latch.
    engaged: AtomicBool,
    started: Instant,
}

/// A running ingest pipeline. Dropping the handle stops the worker
/// after it drains what was already submitted.
pub struct IngestPipeline {
    shared: Arc<Shared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl IngestPipeline {
    /// Start a pipeline delivering into `table`, resuming epoch
    /// numbering from the platform's ledger (so a restarted pipeline
    /// under the same name continues, and re-deliveries of old epochs
    /// dedup).
    pub fn start(
        platform: &Arc<HanaPlatform>,
        session: &Session,
        config: IngestConfig,
        name: &str,
        table: &str,
    ) -> Result<Arc<IngestPipeline>> {
        platform.catalog().table(table)?; // must exist
        let shared = Arc::new(Shared {
            name: name.to_string(),
            table: table.to_string(),
            platform: Arc::downgrade(platform),
            session: session.clone(),
            config,
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                committing: 0,
                next_epoch: platform.ingest_epoch(name) + 1,
                stopped: false,
                poisoned: None,
                stats: IngestStats::default(),
            }),
            data: Condvar::new(),
            space: Condvar::new(),
            engaged: AtomicBool::new(false),
            started: Instant::now(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name(format!("hana-ingest-{name}"))
            .spawn(move || worker_loop(&worker_shared))
            .map_err(|e| HanaError::Io(format!("spawn ingest worker: {e}")))?;
        Ok(Arc::new(IngestPipeline {
            shared,
            worker: Mutex::new(Some(worker)),
        }))
    }

    /// Pipeline name (the ledger key).
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Target table.
    pub fn table(&self) -> &str {
        &self.shared.table
    }

    /// Queue `rows` for delivery, blocking while the bounded buffer is
    /// full (backpressure). Errors once the pipeline is poisoned or
    /// closed — nothing further will be delivered.
    pub fn submit(&self, rows: &[Row]) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let sh = &*self.shared;
        let cap = sh.config.capacity_rows();
        let mut state = sh.state.lock().expect("pipeline lock");
        loop {
            if let Some(msg) = &state.poisoned {
                return Err(HanaError::Stream(format!(
                    "ingest pipeline '{}' failed: {msg}",
                    sh.name
                )));
            }
            if state.stopped {
                return Err(HanaError::Stream(format!(
                    "ingest pipeline '{}' is closed",
                    sh.name
                )));
            }
            if state.queue.len() < cap {
                break;
            }
            state.stats.backpressure_waits += 1;
            hana_obs::registry()
                .counter("hana_ingest_backpressure_waits_total")
                .inc();
            if !sh.engaged.swap(true, Ordering::Relaxed) {
                hana_obs::warn(format!(
                    "ingest pipeline '{}': buffer full ({cap} rows); blocking producer",
                    sh.name
                ));
            }
            state = sh.space.wait(state).expect("pipeline lock");
        }
        // One submission may overshoot the bound by its own size (a
        // window flush can be larger than the buffer); the next caller
        // waits until the worker drains below `cap` again.
        state.stats.rows_submitted += rows.len() as u64;
        state.queue.extend(rows.iter().cloned());
        drop(state);
        sh.data.notify_one();
        Ok(())
    }

    /// Block until everything submitted so far is committed (or surface
    /// the pipeline failure).
    pub fn flush(&self) -> Result<()> {
        let sh = &*self.shared;
        let mut state = sh.state.lock().expect("pipeline lock");
        loop {
            if let Some(msg) = &state.poisoned {
                return Err(HanaError::Stream(format!(
                    "ingest pipeline '{}' failed: {msg}",
                    sh.name
                )));
            }
            if state.queue.is_empty() && state.committing == 0 {
                return Ok(());
            }
            state = sh.space.wait(state).expect("pipeline lock");
        }
    }

    /// Stop the worker after draining the buffer and join it. Returns
    /// the final counters; a poisoned pipeline surfaces its error.
    pub fn close(&self) -> Result<IngestStats> {
        {
            let mut state = self.shared.state.lock().expect("pipeline lock");
            state.stopped = true;
        }
        self.shared.data.notify_all();
        if let Some(handle) = self.worker.lock().expect("worker lock").take() {
            let _ = handle.join();
        }
        let state = self.shared.state.lock().expect("pipeline lock");
        match &state.poisoned {
            Some(msg) => Err(HanaError::Stream(format!(
                "ingest pipeline '{}' failed: {msg}",
                self.shared.name
            ))),
            None => Ok(state.stats),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> IngestStats {
        self.shared.state.lock().expect("pipeline lock").stats
    }
}

impl Drop for IngestPipeline {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pipeline lock");
            state.stopped = true;
        }
        self.shared.data.notify_all();
        if let Some(handle) = self.worker.lock().expect("worker lock").take() {
            let _ = handle.join();
        }
    }
}

fn worker_loop(sh: &Shared) {
    loop {
        // Wait for work (or a stop with an empty queue).
        let (batch, epoch) = {
            let mut state = sh.state.lock().expect("pipeline lock");
            while state.queue.is_empty() && !state.stopped && state.poisoned.is_none() {
                state = sh.data.wait(state).expect("pipeline lock");
            }
            if state.poisoned.is_some() || (state.queue.is_empty() && state.stopped) {
                sh.space.notify_all();
                return;
            }
            let take = state.queue.len().min(sh.config.batch_rows.max(1));
            let batch: Vec<Row> = state.queue.drain(..take).collect();
            state.committing = batch.len();
            let epoch = state.next_epoch;
            (batch, epoch)
        };
        // Capacity just freed: unblock producers while we commit.
        sh.space.notify_all();

        let outcome = commit_batch(sh, epoch, &batch);

        let mut state = sh.state.lock().expect("pipeline lock");
        state.committing = 0;
        // Re-arm the warn-once latch once the buffer has headroom.
        if sh.engaged.load(Ordering::Relaxed) && state.queue.len() * 2 < sh.config.capacity_rows() {
            sh.engaged.store(false, Ordering::Relaxed);
        }
        match outcome {
            Ok(deduped) => {
                state.next_epoch = epoch + 1;
                state.stats.last_epoch = epoch;
                if deduped {
                    state.stats.epochs_deduped += 1;
                } else {
                    state.stats.batches_committed += 1;
                    state.stats.rows_committed += batch.len() as u64;
                }
                let elapsed = sh.started.elapsed().as_secs_f64().max(1e-6);
                hana_obs::registry()
                    .gauge("hana_ingest_rows_per_sec")
                    .set((state.stats.rows_committed as f64 / elapsed) as i64);
            }
            Err(e) => {
                hana_obs::warn(format!(
                    "ingest pipeline '{}': epoch {epoch} failed permanently: {e}",
                    sh.name
                ));
                state.poisoned = Some(e.to_string());
                state.queue.clear();
            }
        }
        drop(state);
        sh.space.notify_all();
    }
}

/// Commit one epoch, retrying retryable failures forever (the fault
/// will heal or the operator will drop the sink). `Ok(true)` = the
/// epoch was a duplicate.
fn commit_batch(sh: &Shared, epoch: u64, batch: &[Row]) -> Result<bool> {
    let mut attempt: u32 = 0;
    loop {
        let Some(platform) = sh.platform.upgrade() else {
            return Err(HanaError::Stream("platform shut down".into()));
        };
        let t0 = Instant::now();
        let result = platform.commit_ingest_batch(&sh.session, &sh.name, epoch, &sh.table, batch);
        drop(platform);
        match result {
            Ok(IngestCommit::Committed { .. }) => {
                hana_obs::registry()
                    .histogram("hana_ingest_batch_latency_us")
                    .record(t0.elapsed().as_micros() as u64);
                return Ok(false);
            }
            Ok(IngestCommit::Deduplicated { .. }) => return Ok(true),
            Err(e) if e.is_retryable() => {
                attempt += 1;
                {
                    let mut state = sh.state.lock().expect("pipeline lock");
                    state.stats.retries += 1;
                }
                hana_obs::registry()
                    .counter("hana_ingest_batch_retries_total")
                    .inc();
                if attempt == 1 {
                    hana_obs::warn(format!(
                        "ingest pipeline '{}': epoch {epoch} hit a retryable fault ({e}); \
                         retrying under the same epoch",
                        sh.name
                    ));
                }
                // Cap the exponent so the pause settles at max_backoff.
                std::thread::sleep(sh.config.retry.backoff(attempt.min(16)));
            }
            Err(e) => return Err(e),
        }
    }
}
