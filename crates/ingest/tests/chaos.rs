//! Chaos tests for streaming ingest: flaky and down partition nodes
//! mid-stream, crash recovery mid-epoch, and delta merges racing the
//! ingest path. The invariant under every fault is the same —
//! **exactly-once**: the target table ends up byte-identical to a
//! clean bulk load of the same rows.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hana_core::{HanaPlatform, IngestCommit, Session};
use hana_dist::FaultPlan;
use hana_ingest::{IngestConfig, IngestRuntime};
use hana_query::TableSource;
use hana_types::{Row, Value};

fn platform() -> (Arc<HanaPlatform>, Session) {
    let hana = Arc::new(HanaPlatform::new_in_memory());
    let session = hana.connect("SYSTEM", "manager").unwrap();
    (hana, session)
}

fn row(k: i64, v: &str) -> Row {
    Row::from_values([Value::Int(k), Value::from(v)])
}

/// `SELECT k, v ... ORDER BY` both tables and compare row-for-row.
fn assert_tables_equal(hana: &HanaPlatform, s: &Session, left: &str, right: &str) {
    let q = |t: &str| {
        hana.execute_sql(s, &format!("SELECT k, v FROM {t} ORDER BY k, v"))
            .unwrap()
    };
    let (l, r) = (q(left), q(right));
    assert_eq!(l.rows, r.rows, "{left} and {right} diverged");
}

fn fault_all_links(hana: &HanaPlatform, table: &str, plan: Option<FaultPlan>) {
    let entry = hana.catalog().table(table).unwrap();
    let TableSource::Distributed(dt) = &entry.source else {
        panic!("{table} is not distributed");
    };
    for link in dt.links() {
        link.set_fault(plan);
    }
}

/// A flaky 4-partition landscape: ~30% of chunk sends fail with
/// retryable errors while an ESP stream feeds the table. The chunk
/// retry machinery heals the faults and the final content matches a
/// clean bulk load of the same rows.
#[test]
fn flaky_links_stream_matches_bulk_load() {
    let (hana, s) = platform();
    for t in ["stream_t", "bulk_t"] {
        hana.execute_sql(
            &s,
            &format!(
                "CREATE COLUMN TABLE {t} (k INTEGER, v VARCHAR(16)) \
                 PARTITION BY HASH(k) PARTITIONS 4"
            ),
        )
        .unwrap();
    }
    fault_all_links(&hana, "stream_t", Some(FaultPlan::flaky(0xC4A05, 0.3)));
    hana.esp()
        .deploy("CREATE INPUT STREAM events SCHEMA (k INTEGER, v VARCHAR(16));")
        .unwrap();

    let rt = IngestRuntime::install_with(
        &hana,
        &s,
        IngestConfig::default()
            .with_batch_rows(16)
            .with_max_inflight(2),
    );
    let pipe = rt.attach("feed", "events", "stream_t").unwrap();

    let rows: Vec<Row> = (0..500).map(|i| row(i % 97, &format!("v{i}"))).collect();
    for (i, r) in rows.iter().enumerate() {
        hana.esp().send("events", i as i64, r.clone()).unwrap();
    }
    pipe.flush().unwrap();
    let stats = rt.detach("feed").unwrap();
    assert_eq!(stats.rows_committed, 500);
    assert!(stats.batches_committed >= 500 / 16);
    assert_eq!(stats.epochs_deduped, 0);
    // Heal the links so verification queries don't fight the faults.
    fault_all_links(&hana, "stream_t", None);

    hana.load_rows(&s, "bulk_t", &rows).unwrap();
    assert_tables_equal(&hana, &s, "stream_t", "bulk_t");
}

/// One partition node goes fully down mid-stream (every chunk send to
/// it fails, retryably). The pipeline keeps retrying the stuck epoch,
/// its bounded buffer fills, backpressure blocks the producer — and
/// once the node heals, everything drains with no loss or duplication.
#[test]
fn node_down_backpressure_then_heal() {
    let (hana, s) = platform();
    for t in ["stream_t", "bulk_t"] {
        hana.execute_sql(
            &s,
            &format!(
                "CREATE COLUMN TABLE {t} (k INTEGER, v VARCHAR(16)) \
                 PARTITION BY HASH(k) PARTITIONS 2"
            ),
        )
        .unwrap();
    }
    hana.esp()
        .deploy("CREATE INPUT STREAM events SCHEMA (k INTEGER, v VARCHAR(16));")
        .unwrap();
    // Tiny buffer (4×1 rows) so the outage visibly backpressures.
    let rt = IngestRuntime::install_with(
        &hana,
        &s,
        IngestConfig::default()
            .with_batch_rows(4)
            .with_max_inflight(1),
    );
    let pipe = rt.attach("feed", "events", "stream_t").unwrap();
    fault_all_links(&hana, "stream_t", Some(FaultPlan::flaky(7, 1.0)));

    let rows: Vec<Row> = (0..64).map(|i| row(i, &format!("v{i}"))).collect();
    let producer = {
        let hana = Arc::clone(&hana);
        let rows = rows.clone();
        std::thread::spawn(move || {
            for (i, r) in rows.iter().enumerate() {
                hana.esp().send("events", i as i64, r.clone()).unwrap();
            }
        })
    };
    // The stuck epoch must retry and the producer must block.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let st = pipe.stats();
        if st.retries > 0 && st.backpressure_waits > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no retries/backpressure observed: {st:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        pipe.stats().rows_committed,
        0,
        "node is down; nothing lands"
    );

    fault_all_links(&hana, "stream_t", None); // the node heals
    producer.join().unwrap();
    pipe.flush().unwrap();
    let stats = rt.detach("feed").unwrap();
    assert_eq!(stats.rows_committed, 64);
    assert!(stats.retries > 0);
    assert!(stats.backpressure_waits > 0);

    hana.load_rows(&s, "bulk_t", &rows).unwrap();
    assert_tables_equal(&hana, &s, "stream_t", "bulk_t");
}

/// Crash-recover a durable distributed table mid-stream: epochs
/// committed before the crash replay exactly once (including one only
/// covered by the checkpoint), re-delivered epochs dedup against the
/// recovered ledger, and the next epoch commits normally.
#[test]
fn crash_recovery_replays_epochs_exactly_once() {
    let dir = std::env::temp_dir().join(format!("hana-ingest-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let epoch_rows = |e: u64| -> Vec<Row> {
        (0..4)
            .map(|i| row((e * 10 + i) as i64, &format!("e{e}r{i}")))
            .collect()
    };

    {
        let (hana, _) = HanaPlatform::open_durable(&dir).unwrap();
        let hana = Arc::new(hana);
        let s = hana.connect("SYSTEM", "manager").unwrap();
        hana.execute_sql(
            &s,
            "CREATE COLUMN TABLE t (k INTEGER, v VARCHAR(16)) \
             PARTITION BY HASH(k) PARTITIONS 2",
        )
        .unwrap();
        for e in 1..=2 {
            let c = hana
                .commit_ingest_batch(&s, "feed", e, "t", &epoch_rows(e))
                .unwrap();
            assert!(matches!(c, IngestCommit::Committed { .. }));
        }
        // The checkpoint cut covers epochs 1–2 (rows + ledger): their
        // log records may be pruned, yet they must still dedup later.
        hana.write_checkpoint().unwrap();
        let c = hana
            .commit_ingest_batch(&s, "feed", 3, "t", &epoch_rows(3))
            .unwrap();
        assert!(matches!(c, IngestCommit::Committed { .. }));
        // Crash: drop without a clean shutdown. Epoch 3 lives only in
        // the logs.
    }

    let (hana, _) = HanaPlatform::open_durable(&dir).unwrap();
    let hana = Arc::new(hana);
    let s = hana.connect("SYSTEM", "manager").unwrap();
    assert_eq!(hana.ingest_epoch("feed"), 3, "ledger recovered");
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(
        rs.scalar().unwrap(),
        &Value::Int(12),
        "epochs 1–3, once each"
    );

    // A restarted producer re-delivers everything it never got an ack
    // for: all of it dedups.
    for e in 1..=3 {
        let c = hana
            .commit_ingest_batch(&s, "feed", e, "t", &epoch_rows(e))
            .unwrap();
        assert!(
            matches!(c, IngestCommit::Deduplicated { last_epoch: 3 }),
            "epoch {e} must dedup, got {c:?}"
        );
    }
    // The stream then moves on.
    let c = hana
        .commit_ingest_batch(&s, "feed", 4, "t", &epoch_rows(4))
        .unwrap();
    assert!(matches!(c, IngestCommit::Committed { .. }));
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(16));

    std::fs::remove_dir_all(&dir).ok();
}

/// Regression for the MERGE DELTA / checkpoint epoch fence: merges and
/// checkpoints race ingest commits the whole time, the platform then
/// crashes, and recovery must still land every epoch exactly once —
/// no epoch half-in a checkpoint cut, none double-applied by replay.
#[test]
fn merge_delta_and_checkpoints_racing_ingest_stay_exactly_once() {
    let dir = std::env::temp_dir().join(format!("hana-ingest-fence-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    const EPOCHS: u64 = 20;
    const ROWS_PER_EPOCH: u64 = 8;
    let epoch_rows = |e: u64| -> Vec<Row> {
        (0..ROWS_PER_EPOCH)
            .map(|i| row((e * 100 + i) as i64, &format!("e{e}r{i}")))
            .collect()
    };

    {
        let (hana, _) = HanaPlatform::open_durable(&dir).unwrap();
        let hana = Arc::new(hana);
        let s = hana.connect("SYSTEM", "manager").unwrap();
        hana.execute_sql(
            &s,
            "CREATE COLUMN TABLE t (k INTEGER, v VARCHAR(16)) \
             PARTITION BY HASH(k) PARTITIONS 2",
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let merger = {
            let hana = Arc::clone(&hana);
            let s = hana.connect("SYSTEM", "manager").unwrap();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    hana.execute_sql(&s, "MERGE DELTA OF t").unwrap();
                    if n.is_multiple_of(3) {
                        hana.write_checkpoint().unwrap();
                    }
                    n += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };
        for e in 1..=EPOCHS {
            let c = hana
                .commit_ingest_batch(&s, "feed", e, "t", &epoch_rows(e))
                .unwrap();
            assert!(matches!(c, IngestCommit::Committed { .. }));
        }
        stop.store(true, Ordering::Relaxed);
        merger.join().unwrap();
        // Crash without a final checkpoint: recovery stitches the last
        // cut together with whatever epochs only the logs carry.
    }

    let (hana, _) = HanaPlatform::open_durable(&dir).unwrap();
    let hana = Arc::new(hana);
    let s = hana.connect("SYSTEM", "manager").unwrap();
    assert_eq!(hana.ingest_epoch("feed"), EPOCHS);
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(
        rs.scalar().unwrap(),
        &Value::Int((EPOCHS * ROWS_PER_EPOCH) as i64),
        "every epoch exactly once across the merge/checkpoint races"
    );
    // Every k appears exactly once (no double-applied epoch).
    let rs = hana
        .execute_sql(&s, "SELECT k, COUNT(*) AS n FROM t GROUP BY k")
        .unwrap();
    assert_eq!(rs.len(), (EPOCHS * ROWS_PER_EPOCH) as usize);
    assert!(
        rs.rows.iter().all(|r| r[1] == Value::Int(1)),
        "duplicated k"
    );
    // Re-delivery after recovery still dedups.
    for e in 1..=EPOCHS {
        let c = hana
            .commit_ingest_batch(&s, "feed", e, "t", &epoch_rows(e))
            .unwrap();
        assert!(matches!(c, IngestCommit::Deduplicated { .. }));
    }

    std::fs::remove_dir_all(&dir).ok();
}
