//! The twelve TPC-H queries of the paper's Figure 14/15 experiment.
//!
//! "We used slightly modified versions of the benchmark queries. In
//! particular, we removed the TOP and ORDER BY clauses from the TPC-H
//! queries" (§4.4) — the starred queries (Q1, Q3, Q5, Q12, Q13, Q18)
//! carry those modifications here too. Further adaptations to the
//! supported SQL subset (explicit `JOIN … ON` syntax, `EXISTS`/`IN`
//! sub-queries rewritten as joins, common conjuncts of Q19's disjunction
//! hoisted) are noted per query.
//!
//! Placement matches the paper: LINEITEM, CUSTOMER, ORDERS, PARTSUPP and
//! PART are federated at Hive; SUPPLIER, NATION, REGION are local —
//! "and PART only for Q14 and Q19".

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct TpchQuery {
    /// Query id, e.g. `"Q4"`.
    pub name: &'static str,
    /// Whether the paper marks it as modified (`*`).
    pub starred: bool,
    /// The SQL text (without cache hints; the harness appends them).
    pub sql: String,
    /// `true` when every table referenced is federated at Hive — the
    /// paper's "top seven" group with the high materialization benefit.
    pub all_remote: bool,
}

/// The queries in the order of Figure 14 (by decreasing paper benefit).
pub fn queries() -> Vec<TpchQuery> {
    vec![
        TpchQuery {
            name: "Q4",
            starred: false,
            // EXISTS rewritten as a join on lineitems that were late.
            sql: "SELECT o.o_orderpriority, COUNT(*) AS order_count \
                  FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
                  WHERE o.o_orderdate >= DATE '1995-04-01' \
                    AND o.o_orderdate < DATE '1995-07-01' \
                    AND l.l_commitdate < l.l_receiptdate \
                  GROUP BY o.o_orderpriority"
                .into(),
            all_remote: true,
        },
        TpchQuery {
            name: "Q18*",
            starred: true,
            sql: "SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_totalprice, \
                         SUM(l.l_quantity) AS total_qty \
                  FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey \
                  JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
                  WHERE o.o_totalprice > 100000 \
                  GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_totalprice \
                  HAVING SUM(l.l_quantity) > 150"
                .into(),
            all_remote: true,
        },
        TpchQuery {
            name: "Q13*",
            starred: true,
            // The LEFT OUTER JOIN + derived table becomes an inner join.
            sql: "SELECT c.c_custkey, COUNT(o.o_orderkey) AS c_count \
                  FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey \
                  WHERE o.o_orderpriority <> '1-URGENT' \
                  GROUP BY c.c_custkey"
                .into(),
            all_remote: true,
        },
        TpchQuery {
            name: "Q3*",
            starred: true,
            sql: "SELECT l.l_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, \
                         o.o_orderdate, o.o_shippriority \
                  FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey \
                  JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
                  WHERE c.c_mktsegment = 'BUILDING' \
                    AND o.o_orderdate < DATE '1995-03-15' \
                    AND l.l_shipdate > DATE '1995-03-15' \
                  GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority"
                .into(),
            all_remote: true,
        },
        TpchQuery {
            name: "Q12*",
            starred: true,
            sql: "SELECT l.l_shipmode, \
                         SUM(CASE WHEN o.o_orderpriority = '1-URGENT' \
                                    OR o.o_orderpriority = '2-HIGH' \
                                  THEN 1 ELSE 0 END) AS high_line_count, \
                         SUM(CASE WHEN o.o_orderpriority <> '1-URGENT' \
                                   AND o.o_orderpriority <> '2-HIGH' \
                                  THEN 1 ELSE 0 END) AS low_line_count \
                  FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
                  WHERE l.l_shipmode IN ('MAIL', 'SHIP') \
                    AND l.l_commitdate < l.l_receiptdate \
                    AND l.l_shipdate < l.l_commitdate \
                    AND l.l_receiptdate >= DATE '1994-01-01' \
                    AND l.l_receiptdate < DATE '1995-01-01' \
                  GROUP BY l.l_shipmode"
                .into(),
            all_remote: true,
        },
        TpchQuery {
            name: "Q6",
            starred: false,
            sql: "SELECT SUM(l_extendedprice * l_discount) AS revenue \
                  FROM lineitem \
                  WHERE l_shipdate >= DATE '1994-01-01' \
                    AND l_shipdate < DATE '1995-01-01' \
                    AND l_discount BETWEEN 0.05 AND 0.07 \
                    AND l_quantity < 24"
                .into(),
            all_remote: true,
        },
        TpchQuery {
            name: "Q1*",
            starred: true,
            sql: "SELECT l_returnflag, l_linestatus, \
                         SUM(l_quantity) AS sum_qty, \
                         SUM(l_extendedprice) AS sum_base_price, \
                         SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
                         AVG(l_quantity) AS avg_qty, \
                         AVG(l_extendedprice) AS avg_price, \
                         AVG(l_discount) AS avg_disc, \
                         COUNT(*) AS count_order \
                  FROM lineitem \
                  WHERE l_shipdate <= DATE '1998-08-01' \
                  GROUP BY l_returnflag, l_linestatus"
                .into(),
            all_remote: true,
        },
        TpchQuery {
            name: "Q5*",
            starred: true,
            sql: "SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue \
                  FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey \
                  JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
                  JOIN supplier s ON l.l_suppkey = s.s_suppkey \
                  JOIN nation n ON s.s_nationkey = n.n_nationkey \
                  JOIN region r ON n.n_regionkey = r.r_regionkey \
                  WHERE r.r_name = 'ASIA' \
                    AND o.o_orderdate >= DATE '1994-01-01' \
                    AND o.o_orderdate < DATE '1995-01-01' \
                    AND c.c_nationkey = s.s_nationkey \
                  GROUP BY n.n_name"
                .into(),
            all_remote: false,
        },
        TpchQuery {
            name: "Q10",
            starred: false,
            sql: "SELECT c.c_custkey, c.c_name, \
                         SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, \
                         c.c_acctbal, n.n_name \
                  FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey \
                  JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
                  JOIN nation n ON c.c_nationkey = n.n_nationkey \
                  WHERE o.o_orderdate >= DATE '1993-10-01' \
                    AND o.o_orderdate < DATE '1994-01-01' \
                    AND l.l_returnflag = 'R' \
                  GROUP BY c.c_custkey, c.c_name, c.c_acctbal, n.n_name"
                .into(),
            all_remote: false,
        },
        TpchQuery {
            name: "Q19",
            starred: false,
            // Common conjuncts of the three disjuncts hoisted; PART is
            // local for this query.
            sql: "SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue \
                  FROM lineitem l JOIN part p ON p.p_partkey = l.l_partkey \
                  WHERE l.l_shipmode IN ('AIR', 'REG AIR') \
                    AND l.l_shipinstruct = 'DELIVER IN PERSON' \
                    AND ((p.p_brand = 'Brand#12' AND l.l_quantity BETWEEN 1 AND 11 \
                          AND p.p_size BETWEEN 1 AND 5) \
                      OR (p.p_brand = 'Brand#23' AND l.l_quantity BETWEEN 10 AND 20 \
                          AND p.p_size BETWEEN 1 AND 10) \
                      OR (p.p_brand = 'Brand#34' AND l.l_quantity BETWEEN 20 AND 30 \
                          AND p.p_size BETWEEN 1 AND 15))"
                .into(),
            all_remote: false,
        },
        TpchQuery {
            name: "Q14",
            starred: false,
            // PART is local for this query.
            sql: "SELECT SUM(CASE WHEN p.p_type LIKE 'PROMO%' \
                                  THEN l.l_extendedprice * (1 - l.l_discount) \
                                  ELSE 0 END) AS promo_revenue, \
                         SUM(l.l_extendedprice * (1 - l.l_discount)) AS total_revenue \
                  FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey \
                  WHERE l.l_shipdate >= DATE '1995-09-01' \
                    AND l.l_shipdate < DATE '1995-10-01'"
                .into(),
            all_remote: false,
        },
        TpchQuery {
            name: "Q16",
            starred: false,
            // COUNT(DISTINCT) relaxed to COUNT; the NOT-IN sub-query on
            // supplier becomes a join with the (local) supplier table,
            // matching the paper's observation that Q16 reads back into
            // HANA.
            sql: "SELECT p.p_brand, p.p_type, p.p_size, COUNT(s.s_suppkey) AS supplier_cnt \
                  FROM partsupp ps JOIN part p ON p.p_partkey = ps.ps_partkey \
                  JOIN supplier s ON ps.ps_suppkey = s.s_suppkey \
                  WHERE p.p_brand <> 'Brand#45' \
                    AND p.p_type NOT LIKE 'MEDIUM%' \
                    AND p.p_size IN (1, 4, 7, 10, 14, 19, 23, 36) \
                    AND s.s_acctbal > -999 \
                  GROUP BY p.p_brand, p.p_type, p.p_size"
                .into(),
            all_remote: false,
        },
    ]
}

/// Tables federated at Hive for query `name` (the paper's placement).
pub fn federated_tables(name: &str) -> Vec<&'static str> {
    let base = vec!["lineitem", "customer", "orders", "partsupp"];
    // PART is local only for Q14 and Q19.
    if name.starts_with("Q14") || name.starts_with("Q19") {
        base
    } else {
        let mut v = base;
        v.push("part");
        v
    }
}

/// Tables living in HANA for query `name`.
pub fn local_tables(name: &str) -> Vec<&'static str> {
    let mut v = vec!["supplier", "nation", "region"];
    if name.starts_with("Q14") || name.starts_with("Q19") {
        v.push("part");
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_sql::{parse_statement, Statement};

    #[test]
    fn all_queries_parse() {
        for q in queries() {
            let parsed = parse_statement(&q.sql);
            assert!(
                parsed.is_ok(),
                "{} failed to parse: {:?}",
                q.name,
                parsed.err()
            );
            assert!(matches!(parsed.unwrap(), Statement::Query(_)));
        }
    }

    #[test]
    fn twelve_queries_match_figure14() {
        let names: Vec<&str> = queries().iter().map(|q| q.name).collect();
        assert_eq!(names.len(), 12);
        for expected in [
            "Q4", "Q18*", "Q13*", "Q3*", "Q12*", "Q6", "Q1*", "Q5*", "Q10", "Q19", "Q14", "Q16",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn starred_queries_carry_no_order_by() {
        for q in queries() {
            if q.starred {
                assert!(
                    !q.sql.to_uppercase().contains("ORDER BY"),
                    "{} must not order",
                    q.name
                );
            }
        }
    }

    #[test]
    fn placement_matches_paper() {
        assert!(federated_tables("Q1*").contains(&"part"));
        assert!(!federated_tables("Q14").contains(&"part"));
        assert!(local_tables("Q14").contains(&"part"));
        assert!(!local_tables("Q6").contains(&"part"));
        // The all-remote split matches the top-7 grouping.
        let top: Vec<&str> = queries()
            .iter()
            .filter(|q| q.all_remote)
            .map(|q| q.name)
            .collect();
        assert_eq!(top.len(), 7, "exactly the paper's top-7 group");
        for n in ["Q4", "Q18*", "Q13*", "Q3*", "Q12*", "Q6", "Q1*"] {
            assert!(top.contains(&n));
        }
    }

    #[test]
    fn hint_can_be_appended() {
        for q in queries() {
            let hinted = format!("{} WITH HINT (USE_REMOTE_CACHE)", q.sql);
            assert!(parse_statement(&hinted).is_ok(), "{}", q.name);
        }
    }
}
