//! # hana-tpch
//!
//! Deterministic TPC-H data generation and the twelve benchmark queries
//! of the paper's remote-materialization experiment (Figures 14/15):
//! data at configurable scale factor, the paper's federated/local table
//! placement, and the modified query texts.

mod gen;
mod queries;

pub use gen::{generate, TpchData, TpchTable};
pub use queries::{federated_tables, local_tables, queries, TpchQuery};
