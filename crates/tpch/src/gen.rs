//! Deterministic TPC-H data generation (dbgen in miniature).
//!
//! Row counts follow the official multipliers (customer 150k·SF,
//! orders 1.5M·SF, lineitem ≈ 4·orders, …); the experiments run at small
//! scale factors (the paper itself used SF 1 and calls it "ridiculously
//! small for a typical Hive and Hadoop setup" — conservative in the same
//! way). All values derive from a seeded RNG, so every run regenerates
//! identical data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hana_types::{DataType, Date, Row, Schema, Value};

/// One generated table.
pub struct TpchTable {
    /// Table name (lower case).
    pub name: &'static str,
    /// Schema.
    pub schema: Schema,
    /// Rows.
    pub rows: Vec<Row>,
}

/// The eight TPC-H tables.
pub struct TpchData {
    /// region, nation, supplier, customer, part, partsupp, orders,
    /// lineitem — in load order.
    pub tables: Vec<TpchTable>,
}

impl TpchData {
    /// Find a table by name.
    pub fn table(&self, name: &str) -> &TpchTable {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
            .unwrap_or_else(|| panic!("no such TPC-H table '{name}'"))
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("CHINA", 2),
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#12", "Brand#23", "Brand#34", "Brand#45"];
const TYPES: [&str; 6] = [
    "PROMO BRUSHED COPPER",
    "PROMO PLATED STEEL",
    "STANDARD POLISHED BRASS",
    "ECONOMY ANODIZED TIN",
    "MEDIUM BURNISHED NICKEL",
    "SMALL PLATED COPPER",
];
const CONTAINERS: [&str; 8] = [
    "SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX", "LG CASE", "LG BOX",
];

/// Generate all tables at `scale` (SF; 0.01 ≈ 1500 customers) with a
/// fixed `seed`.
pub fn generate(scale: f64, seed: u64) -> TpchData {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_supplier = ((10_000.0 * scale) as usize).max(10);
    let n_customer = ((150_000.0 * scale) as usize).max(30);
    let n_part = ((200_000.0 * scale) as usize).max(40);
    let n_orders = ((1_500_000.0 * scale) as usize).max(150);

    let region = TpchTable {
        name: "region",
        schema: Schema::of(&[
            ("r_regionkey", DataType::Int),
            ("r_name", DataType::Varchar),
        ]),
        rows: REGIONS
            .iter()
            .enumerate()
            .map(|(i, r)| Row::from_values([Value::Int(i as i64), Value::from(*r)]))
            .collect(),
    };

    let nation = TpchTable {
        name: "nation",
        schema: Schema::of(&[
            ("n_nationkey", DataType::Int),
            ("n_name", DataType::Varchar),
            ("n_regionkey", DataType::Int),
        ]),
        rows: NATIONS
            .iter()
            .enumerate()
            .map(|(i, (n, r))| {
                Row::from_values([Value::Int(i as i64), Value::from(*n), Value::Int(*r)])
            })
            .collect(),
    };

    let supplier = TpchTable {
        name: "supplier",
        schema: Schema::of(&[
            ("s_suppkey", DataType::Int),
            ("s_name", DataType::Varchar),
            ("s_nationkey", DataType::Int),
            ("s_acctbal", DataType::Double),
        ]),
        rows: (0..n_supplier)
            .map(|i| {
                Row::from_values([
                    Value::Int(i as i64 + 1),
                    Value::from(format!("Supplier#{:09}", i + 1)),
                    Value::Int(rng.random_range(0..25)),
                    Value::Double(round2(rng.random_range(-999.99..9999.99))),
                ])
            })
            .collect(),
    };

    let customer = TpchTable {
        name: "customer",
        schema: Schema::of(&[
            ("c_custkey", DataType::Int),
            ("c_name", DataType::Varchar),
            ("c_nationkey", DataType::Int),
            ("c_mktsegment", DataType::Varchar),
            ("c_acctbal", DataType::Double),
            ("c_phone", DataType::Varchar),
        ]),
        rows: (0..n_customer)
            .map(|i| {
                let nation = rng.random_range(0..25i64);
                Row::from_values([
                    Value::Int(i as i64 + 1),
                    Value::from(format!("Customer#{:09}", i + 1)),
                    Value::Int(nation),
                    Value::from(SEGMENTS[rng.random_range(0..SEGMENTS.len())]),
                    Value::Double(round2(rng.random_range(-999.99..9999.99))),
                    Value::from(format!(
                        "{}-{:03}-{:03}-{:04}",
                        nation + 10,
                        rng.random_range(100..1000),
                        rng.random_range(100..1000),
                        rng.random_range(1000..10000)
                    )),
                ])
            })
            .collect(),
    };

    let part = TpchTable {
        name: "part",
        schema: Schema::of(&[
            ("p_partkey", DataType::Int),
            ("p_name", DataType::Varchar),
            ("p_brand", DataType::Varchar),
            ("p_type", DataType::Varchar),
            ("p_size", DataType::Int),
            ("p_container", DataType::Varchar),
            ("p_retailprice", DataType::Double),
        ]),
        rows: (0..n_part)
            .map(|i| {
                Row::from_values([
                    Value::Int(i as i64 + 1),
                    Value::from(format!("part {:07}", i + 1)),
                    Value::from(BRANDS[rng.random_range(0..BRANDS.len())]),
                    Value::from(TYPES[rng.random_range(0..TYPES.len())]),
                    Value::Int(rng.random_range(1..51)),
                    Value::from(CONTAINERS[rng.random_range(0..CONTAINERS.len())]),
                    Value::Double(round2(
                        900.0 + (i % 200) as f64 + rng.random_range(0.0..100.0),
                    )),
                ])
            })
            .collect(),
    };

    let partsupp = TpchTable {
        name: "partsupp",
        schema: Schema::of(&[
            ("ps_partkey", DataType::Int),
            ("ps_suppkey", DataType::Int),
            ("ps_availqty", DataType::Int),
            ("ps_supplycost", DataType::Double),
        ]),
        rows: (0..n_part)
            .flat_map(|p| {
                let mut rows = Vec::with_capacity(2);
                for s in 0..2 {
                    rows.push(Row::from_values([
                        Value::Int(p as i64 + 1),
                        Value::Int(((p * 7 + s * 13) % n_supplier) as i64 + 1),
                        Value::Int(rng.random_range(1..10_000)),
                        Value::Double(round2(rng.random_range(1.0..1000.0))),
                    ]));
                }
                rows
            })
            .collect(),
    };

    let start = Date::parse("1992-01-01").unwrap();
    let mut orders_rows = Vec::with_capacity(n_orders);
    let mut lineitem_rows = Vec::with_capacity(n_orders * 4);
    for i in 0..n_orders {
        let orderkey = i as i64 + 1;
        let custkey = rng.random_range(0..n_customer as i64) + 1;
        let orderdate = start.add_days(rng.random_range(0..2405)); // ..1998-08-02
        let priority = PRIORITIES[rng.random_range(0..PRIORITIES.len())];
        let nlines = rng.random_range(1..8usize);
        let mut total = 0.0;
        let mut any_open = false;
        for line in 0..nlines {
            let qty = rng.random_range(1..51i64);
            let partkey = rng.random_range(0..n_part as i64) + 1;
            let extended = round2(qty as f64 * (900.0 + (partkey % 200) as f64));
            let discount = round2(rng.random_range(0.0..0.11));
            let tax = round2(rng.random_range(0.0..0.09));
            let shipdate = orderdate.add_days(rng.random_range(1..122));
            let commitdate = orderdate.add_days(rng.random_range(30..91));
            let receiptdate = shipdate.add_days(rng.random_range(1..31));
            let today = Date::parse("1995-06-17").unwrap();
            let (returnflag, linestatus) = if shipdate > today {
                any_open = true;
                ("N", "O")
            } else if rng.random_range(0..2) == 0 {
                ("R", "F")
            } else {
                ("A", "F")
            };
            total += extended * (1.0 - discount) * (1.0 + tax);
            lineitem_rows.push(Row::from_values([
                Value::Int(orderkey),
                Value::Int(partkey),
                Value::Int(((partkey * 3) % n_supplier as i64) + 1),
                Value::Int(line as i64 + 1),
                Value::Double(qty as f64),
                Value::Double(extended),
                Value::Double(discount),
                Value::Double(tax),
                Value::from(returnflag),
                Value::from(linestatus),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::from(INSTRUCTS[rng.random_range(0..INSTRUCTS.len())]),
                Value::from(SHIPMODES[rng.random_range(0..SHIPMODES.len())]),
            ]));
        }
        orders_rows.push(Row::from_values([
            Value::Int(orderkey),
            Value::Int(custkey),
            Value::from(if any_open { "O" } else { "F" }),
            Value::Double(round2(total)),
            Value::Date(orderdate),
            Value::from(priority),
            Value::Int(0),
        ]));
    }

    let orders = TpchTable {
        name: "orders",
        schema: Schema::of(&[
            ("o_orderkey", DataType::Int),
            ("o_custkey", DataType::Int),
            ("o_orderstatus", DataType::Varchar),
            ("o_totalprice", DataType::Double),
            ("o_orderdate", DataType::Date),
            ("o_orderpriority", DataType::Varchar),
            ("o_shippriority", DataType::Int),
        ]),
        rows: orders_rows,
    };
    let lineitem = TpchTable {
        name: "lineitem",
        schema: Schema::of(&[
            ("l_orderkey", DataType::Int),
            ("l_partkey", DataType::Int),
            ("l_suppkey", DataType::Int),
            ("l_linenumber", DataType::Int),
            ("l_quantity", DataType::Double),
            ("l_extendedprice", DataType::Double),
            ("l_discount", DataType::Double),
            ("l_tax", DataType::Double),
            ("l_returnflag", DataType::Varchar),
            ("l_linestatus", DataType::Varchar),
            ("l_shipdate", DataType::Date),
            ("l_commitdate", DataType::Date),
            ("l_receiptdate", DataType::Date),
            ("l_shipinstruct", DataType::Varchar),
            ("l_shipmode", DataType::Varchar),
        ]),
        rows: lineitem_rows,
    };

    TpchData {
        tables: vec![
            region, nation, supplier, customer, part, partsupp, orders, lineitem,
        ],
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = generate(0.001, 42);
        let b = generate(0.001, 42);
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta.rows, tb.rows, "{} must be deterministic", ta.name);
        }
        let c = generate(0.001, 43);
        assert_ne!(
            a.table("orders").rows,
            c.table("orders").rows,
            "different seeds differ"
        );
    }

    #[test]
    fn row_count_proportions() {
        let d = generate(0.002, 7);
        assert_eq!(d.table("region").rows.len(), 5);
        assert_eq!(d.table("nation").rows.len(), 25);
        assert_eq!(d.table("customer").rows.len(), 300);
        assert_eq!(d.table("orders").rows.len(), 3000);
        let li = d.table("lineitem").rows.len();
        assert!((3000..=21_000).contains(&li), "lineitem = {li}");
        assert_eq!(
            d.table("partsupp").rows.len(),
            2 * d.table("part").rows.len()
        );
    }

    #[test]
    fn rows_satisfy_schemas_and_invariants() {
        let d = generate(0.001, 9);
        for t in &d.tables {
            for r in &t.rows {
                t.schema.check_row(r.values()).unwrap();
            }
        }
        // Foreign keys: every order's customer exists.
        let customers = d.table("customer").rows.len() as i64;
        for o in &d.table("orders").rows {
            let ck = o[1].as_i64().unwrap();
            assert!(ck >= 1 && ck <= customers);
        }
        // Dates ordered: ship < receipt.
        for l in &d.table("lineitem").rows {
            assert!(l[10] < l[12], "shipdate before receiptdate");
        }
        // Discounts within range.
        for l in &d.table("lineitem").rows {
            let disc = l[6].as_f64().unwrap();
            assert!((0.0..=0.11).contains(&disc));
        }
    }
}
