//! End-to-end platform tests: SQL over every storage kind, hybrid
//! tables + aging, transactions, security, repository transport,
//! backup/restore and point-in-time recovery.

use std::sync::Arc;
use std::time::Duration;

use hana_core::{ArtifactKind, HanaPlatform, Privilege};
use hana_hadoop::{Hdfs, Hive, MrCluster, MrConfig, MrFunctionRegistry};
use hana_types::{Row, Value};

fn platform() -> (HanaPlatform, hana_core::Session) {
    let hana = HanaPlatform::new_in_memory();
    let session = hana.connect("SYSTEM", "manager").unwrap();
    (hana, session)
}

#[test]
fn column_table_crud_roundtrip() {
    let (hana, s) = platform();
    hana.execute_sql(&s, "CREATE COLUMN TABLE t (id INTEGER, name VARCHAR(20))")
        .unwrap();
    let rs = hana
        .execute_sql(&s, "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(3));
    hana.execute_sql(&s, "UPDATE t SET name = UPPER(name) WHERE id >= 2")
        .unwrap();
    hana.execute_sql(&s, "DELETE FROM t WHERE id = 1").unwrap();
    let rs = hana
        .execute_sql(
            &s,
            "SELECT name FROM t WHERE id BETWEEN 1 AND 3 ORDER BY name",
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.rows[0][0], Value::from("B"));
    // Column-list inserts.
    hana.execute_sql(&s, "INSERT INTO t (name, id) VALUES ('x', 9)")
        .unwrap();
    let rs = hana
        .execute_sql(&s, "SELECT id FROM t WHERE name = 'x'")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(9));
}

#[test]
fn row_table_with_primary_key() {
    let (hana, s) = platform();
    hana.execute_sql(
        &s,
        "CREATE ROW TABLE accounts (id INTEGER PRIMARY KEY, balance DOUBLE)",
    )
    .unwrap();
    hana.execute_sql(&s, "INSERT INTO accounts VALUES (1, 100.0)")
        .unwrap();
    // Duplicate PK fails and the auto-commit transaction rolls back.
    assert!(hana
        .execute_sql(&s, "INSERT INTO accounts VALUES (1, 5.0)")
        .is_err());
    let rs = hana
        .execute_sql(&s, "SELECT COUNT(*) FROM accounts")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(1));
}

#[test]
fn extended_table_lives_in_iq() {
    let (hana, s) = platform();
    hana.execute_sql(
        &s,
        "CREATE TABLE archive (id INTEGER, payload VARCHAR(50)) USING EXTENDED STORAGE",
    )
    .unwrap();
    assert!(hana.iq().has_table("archive"), "shielded IQ holds the data");
    hana.execute_sql(&s, "INSERT INTO archive VALUES (1, 'cold'), (2, 'colder')")
        .unwrap();
    let rs = hana
        .execute_sql(&s, "SELECT payload FROM archive WHERE id = 2")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::from("colder"));
    // Direct (bulk) load bypassing the in-memory store.
    let rows: Vec<Row> = (10..1010)
        .map(|i| Row::from_values([Value::Int(i), Value::from(format!("p{i}"))]))
        .collect();
    hana.load_rows(&s, "archive", &rows).unwrap();
    let rs = hana
        .execute_sql(&s, "SELECT COUNT(*) FROM archive")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(1002));
    hana.execute_sql(&s, "DROP TABLE archive").unwrap();
    assert!(!hana.iq().has_table("archive"));
}

#[test]
fn hybrid_table_with_aging() {
    let (hana, s) = platform();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE sales (id INTEGER, amount DOUBLE, is_cold BOOLEAN) \
         USING HYBRID EXTENDED STORAGE AGING ON is_cold",
    )
    .unwrap();
    for i in 0..100 {
        hana.execute_sql(
            &s,
            &format!(
                "INSERT INTO sales VALUES ({i}, {}.0, {})",
                i * 10,
                if i < 80 { "true" } else { "false" }
            ),
        )
        .unwrap();
    }
    // Everything starts hot.
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(100));
    // Aging moves flagged rows into the cold partition.
    let moved = hana.run_aging(&s, "sales").unwrap();
    assert_eq!(moved, 80);
    assert_eq!(
        hana.iq().row_count("sales__cold", u64::MAX - 1).unwrap(),
        80
    );
    // Queries still see the whole logical table (union plan).
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(100));
    let rs = hana
        .execute_sql(&s, "SELECT SUM(amount) FROM sales WHERE id < 10")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Double(450.0));
    // Aging again is a no-op.
    assert_eq!(hana.run_aging(&s, "sales").unwrap(), 0);
}

#[test]
fn explicit_transactions_commit_and_rollback() {
    let (hana, s) = platform();
    hana.execute_sql(&s, "CREATE COLUMN TABLE t (a INTEGER)")
        .unwrap();
    hana.execute_sql(&s, "BEGIN").unwrap();
    hana.execute_sql(&s, "INSERT INTO t VALUES (1)").unwrap();
    hana.execute_sql(&s, "INSERT INTO t VALUES (2)").unwrap();
    // Not visible before commit (reads use the txn snapshot).
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(0));
    hana.execute_sql(&s, "COMMIT").unwrap();
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(2));

    hana.execute_sql(&s, "BEGIN").unwrap();
    hana.execute_sql(&s, "INSERT INTO t VALUES (3)").unwrap();
    hana.execute_sql(&s, "ROLLBACK").unwrap();
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(2));
    assert!(hana.execute_sql(&s, "COMMIT").is_err(), "nothing open");
}

#[test]
fn distributed_transaction_spans_hot_and_cold() {
    let (hana, s) = platform();
    hana.execute_sql(&s, "CREATE COLUMN TABLE hot (a INTEGER)")
        .unwrap();
    hana.execute_sql(&s, "CREATE TABLE cold (a INTEGER) USING EXTENDED STORAGE")
        .unwrap();
    hana.execute_sql(&s, "BEGIN").unwrap();
    hana.execute_sql(&s, "INSERT INTO hot VALUES (1)").unwrap();
    hana.execute_sql(&s, "INSERT INTO cold VALUES (2)").unwrap();
    // Simulate the extended store failing before commit: the entire
    // transaction aborts (§3.1).
    hana.iq().set_failing(true);
    assert!(hana.execute_sql(&s, "COMMIT").is_err());
    hana.iq().set_failing(false);
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM hot").unwrap();
    assert_eq!(
        rs.scalar().unwrap(),
        &Value::Int(0),
        "local part rolled back too"
    );
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM cold").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(0));
}

#[test]
fn security_gates_every_entry_point() {
    let (hana, admin) = platform();
    hana.security()
        .create_user(&admin, "reader", "pw", &[Privilege::Select])
        .unwrap();
    let reader = hana.connect("reader", "pw").unwrap();
    hana.execute_sql(&admin, "CREATE COLUMN TABLE t (a INTEGER)")
        .unwrap();
    assert!(hana.execute_sql(&reader, "SELECT * FROM t").is_ok());
    assert!(hana
        .execute_sql(&reader, "INSERT INTO t VALUES (1)")
        .is_err());
    assert!(hana
        .execute_sql(&reader, "CREATE COLUMN TABLE u (a INTEGER)")
        .is_err());
    assert!(hana.backup(&reader).is_err());
    assert!(hana.run_aging(&reader, "t").is_err());
}

#[test]
fn repository_transport_dev_to_prod() {
    let (dev, dev_s) = platform();
    dev.put_artifact(
        &dev_s,
        "schema.sql",
        ArtifactKind::SqlScript,
        "CREATE COLUMN TABLE orders (id INTEGER, total DOUBLE); \
         INSERT INTO orders VALUES (1, 10.5)",
    )
    .unwrap();
    dev.put_artifact(
        &dev_s,
        "monitor.ccl",
        ArtifactKind::CclScript,
        "CREATE INPUT STREAM ticks SCHEMA (v DOUBLE); \
         CREATE OUTPUT WINDOW w AS SELECT COUNT(v) FROM ticks KEEP 10 ROWS",
    )
    .unwrap();
    let du = dev
        .export_delivery_unit(&dev_s, "app-du", &["schema.sql", "monitor.ccl"])
        .unwrap();

    let (prod, prod_s) = platform();
    prod.deploy_delivery_unit(&prod_s, &du).unwrap();
    // SQL artifact deployed: table exists with content.
    let rs = prod
        .execute_sql(&prod_s, "SELECT total FROM orders")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Double(10.5));
    // CCL artifact deployed: the stream accepts events.
    prod.esp()
        .send("ticks", 0, Row::from_values([Value::Double(1.0)]))
        .unwrap();
    assert_eq!(prod.esp().window_names(), vec!["w".to_string()]);
}

#[test]
fn esp_integration_forward_and_hana_join() {
    let hana = Arc::new(HanaPlatform::new_in_memory());
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE readings (cell VARCHAR(10), avg_load DOUBLE)",
    )
    .unwrap();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE cells (cell_id VARCHAR(10), city VARCHAR(20))",
    )
    .unwrap();
    hana.execute_sql(&s, "INSERT INTO cells VALUES ('c1', 'Walldorf')")
        .unwrap();
    hana.esp()
        .deploy(
            "CREATE INPUT STREAM events SCHEMA (cell VARCHAR(10), load DOUBLE);\n\
             CREATE OUTPUT WINDOW agg AS SELECT cell, AVG(load) AS avg_load \
             FROM events GROUP BY cell KEEP 100 ROWS",
        )
        .unwrap();
    // Use case 1: forward the window into a HANA table.
    let sink = hana.table_sink(&s, "readings").unwrap();
    hana.esp().attach_sink("agg", sink).unwrap();
    // Use case 2: push reference data into the ESP.
    hana.push_reference_to_esp(&s, "cells", "cells").unwrap();
    // Use case 3: expose the window for HANA joins.
    hana.expose_esp_window(&s, "agg").unwrap();

    for i in 0..10 {
        hana.esp()
            .send(
                "events",
                i,
                Row::from_values([Value::from("c1"), Value::Double(40.0 + i as f64)]),
            )
            .unwrap();
    }
    // HANA join: query the live window joined with a HANA table.
    let rs = hana
        .execute_sql(
            &s,
            "SELECT c.city, w.avg_load FROM agg() w JOIN cells c ON w.cell = c.cell_id",
        )
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][0], Value::from("Walldorf"));
    // Forward into the table.
    hana.esp().flush_window("agg").unwrap();
    let rs = hana
        .execute_sql(&s, "SELECT COUNT(*) FROM readings")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(1));
}

#[test]
fn hadoop_federation_through_sql_ddl() {
    let (hana, s) = platform();
    let mr = Arc::new(MrCluster::new(
        Arc::new(Hdfs::new(4)),
        MrConfig {
            worker_slots: 4,
            job_startup: Duration::from_micros(300),
            task_startup: Duration::from_micros(30),
        },
    ));
    let hive = Arc::new(Hive::new(Arc::clone(&mr)));
    hive.create_table(
        "product",
        hana_types::Schema::of(&[
            ("product_name", hana_types::DataType::Varchar),
            ("brand_name", hana_types::DataType::Varchar),
        ]),
    )
    .unwrap();
    hive.load(
        "product",
        &[
            Row::from_values([Value::from("Widget"), Value::from("Acme")]),
            Row::from_values([Value::from("Gadget"), Value::from("Globex")]),
        ],
    )
    .unwrap();
    let registry = Arc::new(MrFunctionRegistry::new(mr));
    hana.attach_hadoop(Arc::clone(&hive), registry);

    // The exact §4.2 workflow.
    hana.execute_sql(
        &s,
        "CREATE REMOTE SOURCE HIVE1 ADAPTER \"hiveodbc\" CONFIGURATION 'DSN=hive1' \
         WITH CREDENTIAL TYPE 'PASSWORD' USING 'user=dfuser;password=dfpass'",
    )
    .unwrap();
    hana.execute_sql(
        &s,
        "CREATE VIRTUAL TABLE \"VIRTUAL_PRODUCT\" AT \"HIVE1\".\"dflo\".\"dflo\".\"product\"",
    )
    .unwrap();
    let rs = hana
        .execute_sql(
            &s,
            "SELECT product_name, brand_name FROM \"VIRTUAL_PRODUCT\"",
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
    // Virtual tables are read-only.
    assert!(hana
        .execute_sql(&s, "INSERT INTO virtual_product VALUES ('x', 'y')")
        .is_err());
    // Unknown adapter errors.
    assert!(hana
        .execute_sql(
            &s,
            "CREATE REMOTE SOURCE T ADAPTER \"teradata\" CONFIGURATION 'x'"
        )
        .is_err());
}

#[test]
fn backup_restore_spans_engines() {
    let (hana, s) = platform();
    hana.execute_sql(&s, "CREATE COLUMN TABLE hot (a INTEGER)")
        .unwrap();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE mixed (a INTEGER, cold BOOLEAN) \
         USING HYBRID EXTENDED STORAGE AGING ON cold",
    )
    .unwrap();
    hana.execute_sql(&s, "INSERT INTO hot VALUES (1), (2)")
        .unwrap();
    hana.execute_sql(
        &s,
        "INSERT INTO mixed VALUES (1, true), (2, false), (3, true)",
    )
    .unwrap();
    hana.run_aging(&s, "mixed").unwrap();

    let backup = hana.backup(&s).unwrap();
    assert_eq!(backup.table_count(), 2);
    assert_eq!(backup.row_count(), 5);

    // Wreck the data, then restore.
    hana.execute_sql(&s, "DELETE FROM hot").unwrap();
    hana.execute_sql(&s, "DROP TABLE mixed").unwrap();
    hana.restore(&s, &backup).unwrap();
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM hot").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(2));
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM mixed").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(3));
    // The cold partition was restored into IQ.
    assert_eq!(hana.iq().row_count("mixed__cold", u64::MAX - 1).unwrap(), 2);
}

#[test]
fn point_in_time_recovery_replays_wal() {
    let dir = std::env::temp_dir().join(format!("hana-pitr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("platform.wal");
    let _ = std::fs::remove_file(&wal);
    let checkpoint_cid;
    {
        let hana = HanaPlatform::with_log_file(&wal).unwrap();
        let s = hana.connect("SYSTEM", "manager").unwrap();
        hana.execute_sql(&s, "CREATE COLUMN TABLE t (a INTEGER)")
            .unwrap();
        hana.execute_sql(&s, "INSERT INTO t VALUES (1)").unwrap();
        hana.execute_sql(&s, "INSERT INTO t VALUES (2)").unwrap();
        checkpoint_cid = hana.transaction_manager().last_commit_id();
        hana.execute_sql(&s, "INSERT INTO t VALUES (3)").unwrap();
        hana.load_rows(
            &s,
            "t",
            &[
                Row::from_values([Value::Int(4)]),
                Row::from_values([Value::Int(5)]),
            ],
        )
        .unwrap();
    }
    // Full recovery sees everything.
    let (full, replayed) = HanaPlatform::recover_replay(&wal, None).unwrap();
    assert!(replayed >= 5);
    let s = full.connect("SYSTEM", "manager").unwrap();
    let rs = full.execute_sql(&s, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(5));
    // Point-in-time recovery stops at the checkpoint.
    let (pit, _) = HanaPlatform::recover_replay(&wal, Some(checkpoint_cid)).unwrap();
    let s = pit.connect("SYSTEM", "manager").unwrap();
    let rs = pit.execute_sql(&s, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(2));
    std::fs::remove_file(&wal).ok();
}

#[test]
fn secondary_indexes_survive_checkpoint_and_restart() {
    let dir = std::env::temp_dir().join(format!("hana-ixdur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    {
        let (hana, _) = HanaPlatform::open_durable(&dir).unwrap();
        let s = hana.connect("SYSTEM", "manager").unwrap();
        hana.execute_sql(&s, "CREATE COLUMN TABLE t (k INTEGER, v VARCHAR(10))")
            .unwrap();
        hana.execute_sql(&s, "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (2, 'c')")
            .unwrap();
        hana.execute_sql(&s, "CREATE INDEX ix_k ON t (k)").unwrap();
        // A checkpoint prunes sealed log segments, so the CREATE INDEX
        // record cannot be the only place the definition lives: the
        // checkpoint snapshot must carry it too.
        hana.write_checkpoint().unwrap();
        hana.execute_sql(&s, "INSERT INTO t VALUES (2, 'd')")
            .unwrap();
    }
    let (hana, _) = HanaPlatform::open_durable(&dir).unwrap();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    let entry = hana.catalog().table("t").unwrap();
    let hana_query::TableSource::Column(t) = &entry.source else {
        panic!("expected a column table");
    };
    {
        let t = t.read();
        let ix = t.index("ix_k").expect("index survived restart");
        assert_eq!(ix.def().columns, vec!["k".to_string()]);
        assert_eq!(
            ix.entry_count(),
            4,
            "post-checkpoint insert replayed into the index"
        );
    }
    let rs = hana
        .execute_sql(&s, "SELECT COUNT(*) FROM t WHERE k = 2")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(3));
    // DROP INDEX resolves the owning table without an ON clause.
    hana.execute_sql(&s, "DROP INDEX ix_k").unwrap();
    let entry = hana.catalog().table("t").unwrap();
    let hana_query::TableSource::Column(t) = &entry.source else {
        panic!("expected a column table");
    };
    assert!(t.read().index("ix_k").is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_and_landscape() {
    let (hana, s) = platform();
    hana.execute_sql(&s, "CREATE COLUMN TABLE t (a INTEGER)")
        .unwrap();
    let rs = hana
        .execute_sql(&s, "EXPLAIN SELECT a FROM t WHERE a > 1")
        .unwrap();
    let text: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert!(text.iter().any(|l| l.contains("Column Scan")), "{text:?}");
    let info = hana.landscape_info();
    assert!(info.contains("t:COLUMN"), "{info}");
}

#[test]
fn merge_delta_via_sql() {
    let (hana, s) = platform();
    hana.execute_sql(&s, "CREATE COLUMN TABLE t (a INTEGER)")
        .unwrap();
    for i in 0..50 {
        hana.execute_sql(&s, &format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
    }
    hana.execute_sql(&s, "MERGE DELTA OF t").unwrap();
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(50));
    assert!(hana.execute_sql(&s, "MERGE DELTA OF missing").is_err());
}

#[test]
fn index_seek_explain_provenance_and_results() {
    let (hana, s) = platform();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE orders (k INTEGER, cat VARCHAR(8), v INTEGER)",
    )
    .unwrap();
    for i in 0..200 {
        hana.execute_sql(
            &s,
            &format!(
                "INSERT INTO orders VALUES ({}, 'c{}', {})",
                i % 20,
                i % 3,
                i
            ),
        )
        .unwrap();
    }
    hana.execute_sql(&s, "CREATE INDEX ix_orders ON orders (k, cat)")
        .unwrap();

    let explain = |sql: &str| -> String {
        let rs = hana.execute_sql(&s, sql).unwrap();
        rs.rows
            .iter()
            .map(|r| r[0].to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    // No statistics yet: the seek is chosen from index NDV heuristics.
    let text = explain("EXPLAIN SELECT v FROM orders WHERE k = 5 AND cat = 'c1'");
    assert!(text.contains("Index Seek orders.ix_orders"), "{text}");
    assert!(text.contains("prefix 2 cols"), "{text}");
    assert!(text.contains("heuristic"), "{text}");

    // MERGE DELTA refreshes persisted statistics; provenance flips.
    hana.execute_sql(&s, "MERGE DELTA OF orders").unwrap();
    let text = explain("EXPLAIN SELECT v FROM orders WHERE k = 5 AND cat = 'c1'");
    assert!(text.contains("Index Seek orders.ix_orders"), "{text}");
    assert!(text.contains("stats"), "{text}");

    // Residual predicate the key does not cover is re-checked per hit.
    let text = explain("EXPLAIN SELECT v FROM orders WHERE k = 5 AND v > 100");
    assert!(text.contains("Index Seek orders.ix_orders"), "{text}");
    assert!(text.contains("1 residual"), "{text}");

    // Seek answers match the unindexed scan answers exactly.
    let rs = hana
        .execute_sql(
            &s,
            "SELECT COUNT(*), SUM(v) FROM orders WHERE k = 5 AND v > 100",
        )
        .unwrap();
    let seek_row = rs.rows[0].clone();
    hana.execute_sql(&s, "DROP INDEX ix_orders").unwrap();
    let rs = hana
        .execute_sql(
            &s,
            "SELECT COUNT(*), SUM(v) FROM orders WHERE k = 5 AND v > 100",
        )
        .unwrap();
    assert_eq!(seek_row, rs.rows[0]);
}

#[test]
fn compiled_and_interpreted_expressions_agree() {
    let (hana, s) = platform();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE t (k INTEGER, v INTEGER, tag VARCHAR(8))",
    )
    .unwrap();
    for i in 0..300 {
        let tag = if i % 7 == 0 { "NULL" } else { "'x'" };
        hana.execute_sql(
            &s,
            &format!("INSERT INTO t VALUES ({i}, {}, {tag})", i % 13),
        )
        .unwrap();
    }
    // Non-pushable filters land in PlanOp::Filter (the VM's territory);
    // expression projections land in Finish.
    let queries = [
        "SELECT k FROM t WHERE k * 2 + 1 < 50 ORDER BY k",
        "SELECT k + v, v * 3 FROM t WHERE k - v > 100 ORDER BY k + v LIMIT 20",
        "SELECT DISTINCT v FROM t WHERE tag IS NOT NULL AND (v BETWEEN 2 AND 5 OR k < 10) ORDER BY v",
        "SELECT k FROM t WHERE tag LIKE 'x%' AND k IN (1, 7, 295, 296) ORDER BY k",
        "SELECT -k, v FROM t WHERE NOT (v = 3) AND k < 25 ORDER BY k DESC",
    ];
    for q in queries {
        let compiled = hana.execute_sql(&s, q).unwrap();
        let interpreted = {
            let _g = hana_query::override_compiled_expressions(false);
            hana.execute_sql(&s, q).unwrap()
        };
        assert_eq!(compiled.rows, interpreted.rows, "{q}");
        assert_eq!(
            compiled.schema.to_string(),
            interpreted.schema.to_string(),
            "{q}"
        );
    }
}
