//! The platform catalog: the single point of access for name
//! resolution across every storage location of Figure 1.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use hana_columnar::TableStatistics;
use hana_iq::IqEngine;
use hana_query::{Catalog, StatsProvider, TableFunction, TableSource};
use hana_sda::SdaRegistry;
use hana_types::{HanaError, Result};

/// Persisted statistics of one table: the merged table-level synopsis
/// plus, for distributed tables, the per-partition synopses in node
/// order. `version` records the catalog version at collection time so
/// staleness is observable.
#[derive(Clone)]
pub struct StatsEntry {
    /// Merged table-level synopsis.
    pub table: Arc<TableStatistics>,
    /// Per-partition synopses (distributed tables only).
    pub partitions: Option<Arc<Vec<TableStatistics>>>,
    /// Catalog version when collected.
    pub version: u64,
}

/// Catalog metadata per table (beyond what the query layer needs).
#[derive(Debug, Clone, PartialEq)]
pub enum TableKindInfo {
    /// In-memory column table.
    Column,
    /// In-memory row table.
    Row,
    /// Fully in the extended storage.
    Extended,
    /// Hybrid: hot in memory, cold extended; aged by the flag column.
    Hybrid {
        /// The dedicated aging flag column.
        aging_column: String,
        /// The cold partition's IQ table.
        cold_table: String,
    },
    /// Virtual table at a remote source.
    Virtual,
    /// Partitioned across the in-process node landscape.
    Distributed {
        /// The `PARTITION BY` clause, kept for backup/restore DDL.
        partition: hana_sql::PartitionBy,
    },
}

/// One catalog entry.
#[derive(Clone)]
pub struct TableEntry {
    /// Where the data lives.
    pub source: TableSource,
    /// Kind metadata.
    pub kind: TableKindInfo,
}

/// The platform catalog.
pub struct PlatformCatalog {
    tables: RwLock<HashMap<String, TableEntry>>,
    functions: RwLock<HashMap<String, Arc<dyn TableFunction>>>,
    sda: SdaRegistry,
    iq_engines: RwLock<HashMap<String, Arc<IqEngine>>>,
    /// Persisted column statistics, keyed like `tables`. Refreshed at
    /// delta-merge and bulk-load time; dropped with the table.
    stats: RwLock<HashMap<String, StatsEntry>>,
    /// Monotonic version, bumped on every metadata change (DDL, function
    /// registration, delta merges). Cached plans are keyed on it: a plan
    /// compiled under version N is stale once the version moves past N.
    version: AtomicU64,
}

impl PlatformCatalog {
    /// An empty catalog.
    pub fn new() -> PlatformCatalog {
        PlatformCatalog {
            tables: RwLock::new(HashMap::new()),
            functions: RwLock::new(HashMap::new()),
            sda: SdaRegistry::new(),
            iq_engines: RwLock::new(HashMap::new()),
            stats: RwLock::new(HashMap::new()),
            version: AtomicU64::new(0),
        }
    }

    /// Current catalog version. Plans compiled under an older version
    /// must be recompiled.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Bump the catalog version. Called internally on every metadata
    /// mutation, and by the platform for changes the catalog cannot see
    /// itself (e.g. a delta merge rewriting a table's main fragment).
    pub fn bump_version(&self) -> u64 {
        self.version.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Register an IQ engine under an SDA source name (the "shielded"
    /// internal extended storage).
    pub fn register_iq_engine(&self, source: &str, engine: Arc<IqEngine>) {
        self.iq_engines
            .write()
            .insert(source.to_ascii_lowercase(), engine);
    }

    /// Add a table entry; errors on duplicates.
    pub fn add_table(&self, name: &str, entry: TableEntry) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(HanaError::Catalog(format!("table '{name}' already exists")));
        }
        tables.insert(key, entry);
        drop(tables);
        self.bump_version();
        Ok(())
    }

    /// Remove and return a table entry. The table's persisted
    /// statistics are dropped with it.
    pub fn remove_table(&self, name: &str) -> Result<TableEntry> {
        let key = name.to_ascii_lowercase();
        let removed = self
            .tables
            .write()
            .remove(&key)
            .ok_or_else(|| HanaError::Catalog(format!("unknown table '{name}'")))?;
        self.stats.write().remove(&key);
        self.bump_version();
        Ok(removed)
    }

    /// Look up a table entry.
    pub fn table(&self, name: &str) -> Result<TableEntry> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| HanaError::Catalog(format!("unknown table '{name}'")))
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// All table names with their kind labels.
    pub fn list_tables(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .tables
            .read()
            .iter()
            .map(|(n, e)| {
                let kind = match &e.kind {
                    TableKindInfo::Column => "COLUMN",
                    TableKindInfo::Row => "ROW",
                    TableKindInfo::Extended => "EXTENDED",
                    TableKindInfo::Hybrid { .. } => "HYBRID",
                    TableKindInfo::Virtual => "VIRTUAL",
                    TableKindInfo::Distributed { .. } => "DISTRIBUTED",
                };
                (n.clone(), kind.to_string())
            })
            .collect();
        out.sort();
        out
    }

    /// Register a table function (virtual function, ESP window).
    pub fn add_function(&self, name: &str, f: Arc<dyn TableFunction>) {
        self.functions.write().insert(name.to_ascii_lowercase(), f);
        self.bump_version();
    }

    // ---- persisted statistics ----

    /// Persist a table's statistics (table-level synopsis plus optional
    /// per-partition synopses). Bumps the catalog version so cached
    /// plans compiled with the old estimates are invalidated.
    pub fn put_statistics(
        &self,
        name: &str,
        table: TableStatistics,
        partitions: Option<Vec<TableStatistics>>,
    ) {
        let key = name.to_ascii_lowercase();
        let entry = StatsEntry {
            table: Arc::new(table),
            partitions: partitions.map(Arc::new),
            version: self.version(),
        };
        self.stats.write().insert(key, entry);
        self.bump_version();
    }

    /// The persisted statistics entry of a table, if collected.
    pub fn statistics(&self, name: &str) -> Option<StatsEntry> {
        self.stats.read().get(&name.to_ascii_lowercase()).cloned()
    }

    /// Drop a table's persisted statistics (without dropping the table).
    pub fn drop_statistics(&self, name: &str) -> bool {
        let dropped = self
            .stats
            .write()
            .remove(&name.to_ascii_lowercase())
            .is_some();
        if dropped {
            self.bump_version();
        }
        dropped
    }

    /// Names of all tables with persisted statistics.
    pub fn tables_with_statistics(&self) -> Vec<String> {
        let mut out: Vec<String> = self.stats.read().keys().cloned().collect();
        out.sort();
        out
    }
}

impl StatsProvider for PlatformCatalog {
    fn table_stats(&self, table: &str) -> Option<Arc<TableStatistics>> {
        Some(Arc::clone(&self.statistics(table)?.table))
    }

    fn partition_stats(&self, table: &str) -> Option<Arc<Vec<TableStatistics>>> {
        self.statistics(table)?.partitions.clone()
    }
}

impl Default for PlatformCatalog {
    fn default() -> Self {
        PlatformCatalog::new()
    }
}

impl Catalog for PlatformCatalog {
    fn resolve_table(&self, name: &str) -> Result<TableSource> {
        Ok(self.table(name)?.source)
    }

    fn resolve_function(&self, name: &str) -> Result<Arc<dyn TableFunction>> {
        self.functions
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| HanaError::Catalog(format!("unknown table function '{name}'")))
    }

    fn sda(&self) -> &SdaRegistry {
        &self.sda
    }

    fn iq_engine(&self, source: &str) -> Result<Arc<IqEngine>> {
        self.iq_engines
            .read()
            .get(&source.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| HanaError::Catalog(format!("no IQ engine behind source '{source}'")))
    }

    fn stats(&self) -> &dyn StatsProvider {
        self
    }
}
