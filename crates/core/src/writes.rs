//! The "hana" two-phase-commit participant: buffered writes against the
//! in-memory stores, applied atomically at commit with the transaction's
//! commit ID.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use hana_columnar::ColumnTable;
use hana_rowstore::RowTable;
use hana_txn::{TwoPhaseParticipant, Vote};
use hana_types::{Result, Value};

/// One buffered local operation.
pub enum LocalOp {
    /// Insert into a column table.
    ColumnInsert {
        /// Target table.
        table: Arc<RwLock<ColumnTable>>,
        /// The row.
        row: Vec<Value>,
    },
    /// Delete a (statement-time-resolved) row of a column table.
    ColumnDelete {
        /// Target table.
        table: Arc<RwLock<ColumnTable>>,
        /// Row id.
        row_id: usize,
    },
    /// Insert into a row table.
    RowInsert {
        /// Target table.
        table: Arc<RwLock<RowTable>>,
        /// The row.
        row: Vec<Value>,
    },
    /// Delete a slot of a row table.
    RowDelete {
        /// Target table.
        table: Arc<RwLock<RowTable>>,
        /// Slot id.
        slot: usize,
    },
}

/// The local-store participant. Writes buffer per transaction and become
/// visible only under the commit ID the coordinator assigns.
#[derive(Default)]
pub struct LocalWrites {
    pending: Mutex<HashMap<u64, Vec<LocalOp>>>,
}

impl LocalWrites {
    /// A fresh participant.
    pub fn new() -> LocalWrites {
        LocalWrites::default()
    }

    /// Buffer an operation for transaction `tid`.
    pub fn buffer(&self, tid: u64, op: LocalOp) {
        self.pending.lock().entry(tid).or_default().push(op);
    }

    /// Buffered operation count for `tid` (tests/monitoring).
    pub fn pending_ops(&self, tid: u64) -> usize {
        self.pending.lock().get(&tid).map(Vec::len).unwrap_or(0)
    }
}

impl TwoPhaseParticipant for LocalWrites {
    fn name(&self) -> &str {
        "hana"
    }

    fn prepare(&self, tid: u64) -> Result<Vote> {
        // In-memory stores become durable through the coordinator's WAL
        // (logical logging). Prepare validates constraints *before* the
        // commit point so a no-vote can still abort the transaction:
        // schema conformance and primary-key uniqueness (against the
        // latest state and within the buffered batch).
        let pending = self.pending.lock();
        let Some(ops) = pending.get(&tid).filter(|v| !v.is_empty()) else {
            return Ok(Vote::ReadOnly);
        };
        let mut batch_keys: Vec<hana_types::Value> = Vec::new();
        for op in ops.iter() {
            match op {
                LocalOp::ColumnInsert { table, row } => {
                    table.read().schema().check_row(row)?;
                }
                LocalOp::RowInsert { table, row } => {
                    let t = table.read();
                    t.schema().check_row(row)?;
                    if let Some(pk) = t.pk_column() {
                        let key = &row[pk];
                        let latest = hana_txn::Snapshot::at(u64::MAX - 1);
                        if key.is_null() {
                            return Err(hana_types::HanaError::Storage(format!(
                                "primary key of '{}' must not be NULL",
                                t.name()
                            )));
                        }
                        if t.get(key, latest).is_some() || batch_keys.contains(key) {
                            return Err(hana_types::HanaError::Storage(format!(
                                "duplicate primary key {key} in '{}'",
                                t.name()
                            )));
                        }
                        batch_keys.push(key.clone());
                    }
                }
                LocalOp::ColumnDelete { .. } | LocalOp::RowDelete { .. } => {}
            }
        }
        Ok(Vote::Prepared)
    }

    fn commit(&self, tid: u64, cid: u64) -> Result<()> {
        let Some(ops) = self.pending.lock().remove(&tid) else {
            return Ok(());
        };
        for op in ops {
            match op {
                LocalOp::ColumnInsert { table, row } => {
                    table.write().insert(&row, cid)?;
                }
                LocalOp::ColumnDelete { table, row_id } => {
                    table.write().delete(row_id, cid)?;
                }
                LocalOp::RowInsert { table, row } => {
                    table.write().insert(&row, cid)?;
                }
                LocalOp::RowDelete { table, slot } => {
                    table.write().delete_slot(slot, cid)?;
                }
            }
        }
        Ok(())
    }

    fn abort(&self, tid: u64) -> Result<()> {
        self.pending.lock().remove(&tid);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_txn::TransactionManager;
    use hana_types::{DataType, Schema};

    #[test]
    fn writes_apply_only_at_commit() {
        let tm = TransactionManager::new();
        let table = Arc::new(RwLock::new(ColumnTable::new(
            "t",
            Schema::of(&[("a", DataType::Int)]),
        )));
        let writes = Arc::new(LocalWrites::new());
        let txn = tm.begin();
        writes.buffer(
            txn.tid,
            LocalOp::ColumnInsert {
                table: Arc::clone(&table),
                row: vec![Value::Int(1)],
            },
        );
        assert_eq!(table.read().row_count(), 0, "not yet");
        let parts: Vec<Arc<dyn TwoPhaseParticipant>> = vec![writes.clone()];
        let receipt = tm.commit(txn, &parts).unwrap();
        assert_eq!(table.read().visible(receipt.cid).count(), 1);
        assert_eq!(table.read().visible(receipt.cid - 1).count(), 0);
    }

    #[test]
    fn abort_discards_buffered_ops() {
        let tm = TransactionManager::new();
        let table = Arc::new(RwLock::new(ColumnTable::new(
            "t",
            Schema::of(&[("a", DataType::Int)]),
        )));
        let writes = Arc::new(LocalWrites::new());
        let txn = tm.begin();
        writes.buffer(
            txn.tid,
            LocalOp::ColumnInsert {
                table: Arc::clone(&table),
                row: vec![Value::Int(1)],
            },
        );
        assert_eq!(writes.pending_ops(txn.tid), 1);
        let parts: Vec<Arc<dyn TwoPhaseParticipant>> = vec![writes.clone()];
        tm.abort(txn, &parts).unwrap();
        assert_eq!(writes.pending_ops(txn.tid), 0);
        assert_eq!(table.read().row_count(), 0);
    }

    #[test]
    fn read_only_vote_without_ops() {
        let writes = LocalWrites::new();
        assert_eq!(writes.prepare(99).unwrap(), Vote::ReadOnly);
    }
}
