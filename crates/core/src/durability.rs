//! Checkpoint snapshot codec: a [`Backup`](crate::Backup) serialized to
//! bytes for the WAL's checkpoint sidecar, and back.
//!
//! The format is a flat text record stream using the same control-code
//! delimiters as the WAL's bulk-load payloads, so values never need
//! escaping: `\u{1d}` separates records, `\u{1}` fields within a
//! record, `\u{1e}` rows within a row list, `\u{1f}` values within a
//! row. Layout:
//!
//! ```text
//! HANACKPT1
//! <cid>
//! E <pipeline> <epoch>        -- one per ingest-ledger entry
//! T <name> <kind...>          -- one per table
//! C <name> <sql type> <n|y>   -- one per column of the last T
//! I <name> <cols...>          -- one per secondary index of the last T
//! R <rows...>                 -- hot/in-memory rows of the last T
//! X <rows...>                 -- cold (extended) rows of the last T
//! ```

use hana_columnar::IndexDef;
use hana_sql::PartitionBy;
use hana_types::{ColumnDef, DataType, HanaError, Result, Row, Schema, Value};

use crate::catalog::TableKindInfo;
use crate::platform::{Backup, BackupEntry};

const REC_SEP: char = '\u{1d}';
const FIELD_SEP: char = '\u{1}';
const ROW_SEP: char = '\u{1e}';
const VAL_SEP: char = '\u{1f}';

const MAGIC: &str = "HANACKPT1";

fn push_rows(out: &mut String, tag: char, rows: &[Row]) {
    out.push(REC_SEP);
    out.push(tag);
    out.push(FIELD_SEP);
    let mut first = true;
    for r in rows {
        if !first {
            out.push(ROW_SEP);
        }
        first = false;
        out.push_str(&r.to_delimited(VAL_SEP));
    }
}

fn encode_kind(out: &mut String, kind: &TableKindInfo) {
    match kind {
        TableKindInfo::Column => out.push_str("column"),
        TableKindInfo::Row => out.push_str("row"),
        TableKindInfo::Extended => out.push_str("extended"),
        TableKindInfo::Virtual => out.push_str("virtual"),
        TableKindInfo::Hybrid {
            aging_column,
            cold_table,
        } => {
            out.push_str("hybrid");
            out.push(FIELD_SEP);
            out.push_str(aging_column);
            out.push(FIELD_SEP);
            out.push_str(cold_table);
        }
        TableKindInfo::Distributed { partition } => match partition {
            PartitionBy::Hash { column, partitions } => {
                out.push_str("hash");
                out.push(FIELD_SEP);
                out.push_str(column);
                out.push(FIELD_SEP);
                out.push_str(&partitions.to_string());
            }
            PartitionBy::Range {
                column,
                split_points,
            } => {
                out.push_str("range");
                out.push(FIELD_SEP);
                out.push_str(column);
                for v in split_points {
                    out.push(FIELD_SEP);
                    out.push_str(&v.to_string());
                }
            }
        },
    }
}

/// Serialize a backup into checkpoint payload bytes.
pub(crate) fn encode_backup(backup: &Backup) -> Vec<u8> {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push(REC_SEP);
    out.push_str(&backup.cid.to_string());
    for (pipeline, epoch) in &backup.ingest_epochs {
        out.push(REC_SEP);
        out.push('E');
        out.push(FIELD_SEP);
        out.push_str(pipeline);
        out.push(FIELD_SEP);
        out.push_str(&epoch.to_string());
    }
    for e in &backup.entries {
        out.push(REC_SEP);
        out.push('T');
        out.push(FIELD_SEP);
        out.push_str(&e.name);
        out.push(FIELD_SEP);
        encode_kind(&mut out, &e.kind);
        for c in e.schema.columns() {
            out.push(REC_SEP);
            out.push('C');
            out.push(FIELD_SEP);
            out.push_str(&c.name);
            out.push(FIELD_SEP);
            out.push_str(c.data_type.sql_name());
            out.push(FIELD_SEP);
            out.push(if c.nullable { 'y' } else { 'n' });
        }
        for ix in &e.indexes {
            out.push(REC_SEP);
            out.push('I');
            out.push(FIELD_SEP);
            out.push_str(&ix.name);
            for col in &ix.columns {
                out.push(FIELD_SEP);
                out.push_str(col);
            }
        }
        push_rows(&mut out, 'R', &e.rows);
        push_rows(&mut out, 'X', &e.cold_rows);
    }
    out.into_bytes()
}

fn bad(what: &str) -> HanaError {
    HanaError::Io(format!("corrupt checkpoint snapshot: {what}"))
}

fn decode_kind(
    fields: &[&str],
    key_type: impl Fn(&str) -> Result<DataType>,
) -> Result<TableKindInfo> {
    match fields {
        ["column"] => Ok(TableKindInfo::Column),
        ["row"] => Ok(TableKindInfo::Row),
        ["extended"] => Ok(TableKindInfo::Extended),
        ["virtual"] => Ok(TableKindInfo::Virtual),
        ["hybrid", aging, cold] => Ok(TableKindInfo::Hybrid {
            aging_column: (*aging).to_string(),
            cold_table: (*cold).to_string(),
        }),
        ["hash", column, n] => Ok(TableKindInfo::Distributed {
            partition: PartitionBy::Hash {
                column: (*column).to_string(),
                partitions: n.parse().map_err(|_| bad("hash partition count"))?,
            },
        }),
        ["range", column, points @ ..] => {
            let ty = key_type(column)?;
            Ok(TableKindInfo::Distributed {
                partition: PartitionBy::Range {
                    column: (*column).to_string(),
                    split_points: points
                        .iter()
                        .map(|p| Value::parse_typed(p, ty))
                        .collect::<Result<_>>()?,
                },
            })
        }
        _ => Err(bad("unknown table kind")),
    }
}

fn decode_rows(text: &str, schema: &Schema) -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    for line in text.split(ROW_SEP) {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(VAL_SEP).collect();
        if fields.len() != schema.len() {
            return Err(bad("row width mismatch"));
        }
        let mut vals = Vec::with_capacity(fields.len());
        for (f, c) in fields.iter().zip(schema.columns()) {
            vals.push(Value::parse_typed(f, c.data_type)?);
        }
        rows.push(Row(vals));
    }
    Ok(rows)
}

/// Parse checkpoint payload bytes back into a [`Backup`].
pub(crate) fn decode_backup(payload: &[u8]) -> Result<Backup> {
    let text = std::str::from_utf8(payload).map_err(|_| bad("not UTF-8"))?;
    let mut records = text.split(REC_SEP);
    if records.next() != Some(MAGIC) {
        return Err(bad("bad magic"));
    }
    let cid: u64 = records
        .next()
        .ok_or_else(|| bad("missing cid"))?
        .parse()
        .map_err(|_| bad("bad cid"))?;
    // First pass collects the raw pieces; kinds that need the schema
    // (range split points) are resolved once the columns are known.
    struct Pending {
        name: String,
        kind_fields: Vec<String>,
        columns: Vec<ColumnDef>,
        indexes: Vec<IndexDef>,
        rows_text: String,
        cold_text: String,
    }
    let mut pending: Vec<Pending> = Vec::new();
    let mut ingest_epochs: Vec<(String, u64)> = Vec::new();
    for rec in records {
        let (tag, rest) = rec.split_once(FIELD_SEP).ok_or_else(|| bad("bad record"))?;
        match tag {
            "E" => {
                let (pipeline, epoch) = rest
                    .split_once(FIELD_SEP)
                    .ok_or_else(|| bad("bad ledger record"))?;
                ingest_epochs.push((
                    pipeline.to_string(),
                    epoch.parse().map_err(|_| bad("bad ledger epoch"))?,
                ));
            }
            "T" => {
                let mut fields = rest.split(FIELD_SEP);
                let name = fields.next().ok_or_else(|| bad("missing name"))?;
                pending.push(Pending {
                    name: name.to_string(),
                    kind_fields: fields.map(str::to_string).collect(),
                    columns: Vec::new(),
                    indexes: Vec::new(),
                    rows_text: String::new(),
                    cold_text: String::new(),
                });
            }
            "C" => {
                let cur = pending
                    .last_mut()
                    .ok_or_else(|| bad("column before table"))?;
                let f: Vec<&str> = rest.split(FIELD_SEP).collect();
                let [name, ty, nullable] = f[..] else {
                    return Err(bad("bad column record"));
                };
                cur.columns.push(ColumnDef {
                    name: name.to_string(),
                    data_type: DataType::parse_sql(ty)?,
                    nullable: nullable == "y",
                });
            }
            "I" => {
                let cur = pending
                    .last_mut()
                    .ok_or_else(|| bad("index before table"))?;
                let mut fields = rest.split(FIELD_SEP);
                let name = fields.next().ok_or_else(|| bad("missing index name"))?;
                let columns: Vec<String> = fields.map(str::to_string).collect();
                if columns.is_empty() {
                    return Err(bad("index without columns"));
                }
                cur.indexes.push(IndexDef {
                    name: name.to_string(),
                    columns,
                });
            }
            "R" => {
                pending
                    .last_mut()
                    .ok_or_else(|| bad("rows before table"))?
                    .rows_text = rest.to_string();
            }
            "X" => {
                pending
                    .last_mut()
                    .ok_or_else(|| bad("rows before table"))?
                    .cold_text = rest.to_string();
            }
            _ => return Err(bad("unknown record tag")),
        }
    }
    let mut entries = Vec::with_capacity(pending.len());
    for p in pending {
        let schema = Schema::new(p.columns)?;
        let kind_fields: Vec<&str> = p.kind_fields.iter().map(String::as_str).collect();
        let kind = decode_kind(&kind_fields, |col| {
            Ok(schema.column(schema.require(col)?).data_type)
        })?;
        let rows = decode_rows(&p.rows_text, &schema)?;
        let cold_rows = decode_rows(&p.cold_text, &schema)?;
        entries.push(BackupEntry {
            name: p.name,
            kind,
            schema,
            rows,
            cold_rows,
            indexes: p.indexes,
        });
    }
    Ok(Backup {
        cid,
        entries,
        ingest_epochs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backup_round_trips_through_the_codec() {
        let schema = Schema::of(&[("k", DataType::Int), ("s", DataType::Varchar)]);
        let backup = Backup {
            cid: 42,
            entries: vec![
                BackupEntry {
                    name: "plain".into(),
                    kind: TableKindInfo::Column,
                    schema: schema.clone(),
                    rows: vec![
                        Row(vec![Value::Int(1), Value::Varchar("a b".into())]),
                        Row(vec![Value::Int(2), Value::Null]),
                    ],
                    cold_rows: Vec::new(),
                    indexes: vec![IndexDef {
                        name: "ix_ks".into(),
                        columns: vec!["k".into(), "s".into()],
                    }],
                },
                BackupEntry {
                    name: "parts".into(),
                    kind: TableKindInfo::Distributed {
                        partition: PartitionBy::Range {
                            column: "k".into(),
                            split_points: vec![Value::Int(10), Value::Int(20)],
                        },
                    },
                    schema,
                    rows: Vec::new(),
                    cold_rows: Vec::new(),
                    indexes: Vec::new(),
                },
            ],
            ingest_epochs: vec![("feed".into(), 12), ("other".into(), 3)],
        };
        let decoded = decode_backup(&encode_backup(&backup)).unwrap();
        assert_eq!(decoded.cid, 42);
        assert_eq!(decoded.ingest_epochs, backup.ingest_epochs);
        assert_eq!(decoded.entries.len(), 2);
        assert_eq!(decoded.entries[0].rows, backup.entries[0].rows);
        assert_eq!(decoded.entries[0].kind, backup.entries[0].kind);
        assert_eq!(decoded.entries[0].indexes, backup.entries[0].indexes);
        assert_eq!(decoded.entries[1].kind, backup.entries[1].kind);
        assert!(decoded.entries[1].indexes.is_empty());
    }

    #[test]
    fn damaged_payload_is_an_error_not_a_panic() {
        assert!(decode_backup(b"garbage").is_err());
        assert!(decode_backup(&[0xFF, 0xFE]).is_err());
    }
}
