//! # hana-core
//!
//! The platform facade — "a single point of entry for the application as
//! well as … a single point of control with respect to central
//! administration" (§2): SQL execution over every storage kind (column,
//! row, extended, hybrid, virtual), distributed transactions across the
//! in-memory store and the extended storage, the built-in aging
//! mechanism for hybrid tables, ESP wiring (sinks, reference pushes,
//! window exposure), the artifact repository with delivery-unit
//! transport, single credential control, coordinated backup/restore and
//! WAL-based point-in-time recovery.
//!
//! ```
//! use hana_core::HanaPlatform;
//!
//! let hana = HanaPlatform::new_in_memory();
//! let session = hana.connect("SYSTEM", "manager").unwrap();
//! hana.execute_sql(&session, "CREATE COLUMN TABLE t (a INTEGER)").unwrap();
//! hana.execute_sql(&session, "INSERT INTO t VALUES (1), (2)").unwrap();
//! let rs = hana.execute_sql(&session, "SELECT COUNT(*) FROM t").unwrap();
//! assert_eq!(rs.scalar().unwrap().as_i64(), Some(2));
//! ```

mod catalog;
mod durability;
mod ingest;
mod platform;
mod repository;
mod security;
mod writes;

pub use catalog::{PlatformCatalog, StatsEntry, TableEntry, TableKindInfo};
pub use ingest::{IngestCommit, IngestDriver};
pub use platform::{Backup, HanaPlatform, INTERNAL_IQ_SOURCE};
pub use repository::{Artifact, ArtifactKind, DeliveryUnit, Repository};
pub use security::{Privilege, SecurityManager, Session};
pub use writes::{LocalOp, LocalWrites};
