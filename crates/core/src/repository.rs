//! The integrated repository of application artifacts.
//!
//! §2 "Value": "integrated repository of application artifacts for
//! holistic life cycle management; for example application code in
//! combination with database schema and pre-loaded content can be
//! atomically deployed or transported from development via test to a
//! production system." §4.1 adds that map-reduce job configurations are
//! transported the same way.

use std::collections::BTreeMap;

use hana_types::{HanaError, Result};

/// Artifact kinds under lifecycle management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// SQL DDL/DML script.
    SqlScript,
    /// CCL script for the ESP.
    CclScript,
    /// Virtual-function / MR job configuration.
    MrJobConfig,
    /// Free-form content (views, models, documentation).
    Content,
}

/// One versioned artifact.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Artifact name (unique within the repository).
    pub name: String,
    /// Kind.
    pub kind: ArtifactKind,
    /// Payload.
    pub content: String,
    /// Monotonic version, starting at 1.
    pub version: u64,
}

/// A transportable set of artifacts ("delivery unit").
#[derive(Debug, Clone)]
pub struct DeliveryUnit {
    /// Unit name.
    pub name: String,
    /// Contained artifacts (snapshot at export time).
    pub artifacts: Vec<Artifact>,
}

/// The repository of one system (development, test, production…).
#[derive(Debug, Default)]
pub struct Repository {
    artifacts: BTreeMap<String, Artifact>,
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Repository {
        Repository::default()
    }

    /// Store (or upversion) an artifact.
    pub fn put(&mut self, name: &str, kind: ArtifactKind, content: &str) -> u64 {
        let key = name.to_ascii_lowercase();
        let version = self.artifacts.get(&key).map(|a| a.version + 1).unwrap_or(1);
        self.artifacts.insert(
            key.clone(),
            Artifact {
                name: key,
                kind,
                content: content.to_string(),
                version,
            },
        );
        version
    }

    /// Fetch an artifact.
    pub fn get(&self, name: &str) -> Result<&Artifact> {
        self.artifacts
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| HanaError::Catalog(format!("no artifact '{name}' in repository")))
    }

    /// All artifact names.
    pub fn list(&self) -> Vec<String> {
        self.artifacts.keys().cloned().collect()
    }

    /// Export the named artifacts as a delivery unit.
    pub fn export(&self, unit_name: &str, names: &[&str]) -> Result<DeliveryUnit> {
        let artifacts = names
            .iter()
            .map(|n| self.get(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Ok(DeliveryUnit {
            name: unit_name.to_string(),
            artifacts,
        })
    }

    /// Import a delivery unit **atomically**: either every artifact is
    /// accepted or none is (versions bump only on success).
    pub fn import(&mut self, unit: &DeliveryUnit) -> Result<()> {
        // Validation phase: reject empty units and empty payloads before
        // touching anything.
        if unit.artifacts.is_empty() {
            return Err(HanaError::Config(format!(
                "delivery unit '{}' is empty",
                unit.name
            )));
        }
        for a in &unit.artifacts {
            if a.content.trim().is_empty() {
                return Err(HanaError::Config(format!(
                    "artifact '{}' in unit '{}' has no content",
                    a.name, unit.name
                )));
            }
        }
        // Apply phase.
        for a in &unit.artifacts {
            self.put(&a.name, a.kind, &a.content);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versioning() {
        let mut r = Repository::new();
        assert_eq!(r.put("Model.sql", ArtifactKind::SqlScript, "CREATE ..."), 1);
        assert_eq!(r.put("model.SQL", ArtifactKind::SqlScript, "CREATE v2"), 2);
        assert_eq!(r.get("model.sql").unwrap().version, 2);
        assert!(r.get("missing").is_err());
    }

    #[test]
    fn transport_dev_to_prod() {
        let mut dev = Repository::new();
        dev.put(
            "schema.sql",
            ArtifactKind::SqlScript,
            "CREATE TABLE t (a INT)",
        );
        dev.put(
            "monitor.ccl",
            ArtifactKind::CclScript,
            "CREATE INPUT STREAM s SCHEMA (a INT)",
        );
        dev.put(
            "sensors.job",
            ArtifactKind::MrJobConfig,
            "hana.mapred.driver.class=com.x.Y",
        );
        let du = dev
            .export(
                "telemetry-du",
                &["schema.sql", "monitor.ccl", "sensors.job"],
            )
            .unwrap();

        let mut prod = Repository::new();
        prod.import(&du).unwrap();
        assert_eq!(prod.list().len(), 3);
        assert_eq!(
            prod.get("sensors.job").unwrap().kind,
            ArtifactKind::MrJobConfig
        );
    }

    #[test]
    fn import_is_atomic() {
        let mut r = Repository::new();
        let du = DeliveryUnit {
            name: "broken".into(),
            artifacts: vec![
                Artifact {
                    name: "good".into(),
                    kind: ArtifactKind::Content,
                    content: "x".into(),
                    version: 1,
                },
                Artifact {
                    name: "bad".into(),
                    kind: ArtifactKind::Content,
                    content: "   ".into(),
                    version: 1,
                },
            ],
        };
        assert!(r.import(&du).is_err());
        assert!(r.list().is_empty(), "nothing applied on failure");
        assert!(r
            .import(&DeliveryUnit {
                name: "empty".into(),
                artifacts: vec![]
            })
            .is_err());
    }
}
