//! `HanaPlatform` — the single point of access and control (§2, §5).
//!
//! The facade owns every component of Figure 1: the in-memory column and
//! row stores, the transaction coordinator, the shielded IQ extended
//! storage, the ESP engine, Smart Data Access with the remote cache, the
//! artifact repository, the security manager, and the coordinated
//! backup/recovery spanning the in-memory and extended stores.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use hana_columnar::{ColumnTable, IndexDef};
use hana_esp::{EspEngine, Sink};
use hana_exec::ExecContext;
use hana_hadoop::{Hive, MrFunctionRegistry};
use hana_iq::IqEngine;
use hana_query::{execute_query_with, Catalog as _, PlannerContext, TableFunction, TableSource};
use hana_rowstore::RowTable;
use hana_sda::{
    ChaosAdapter, ChaosConfig, HadoopMrAdapter, HiveOdbcAdapter, IqAdapter, RemoteCacheConfig,
    RemoteContext, RemoteSourceStats, RetryPolicy, SdaAdapter,
};
use hana_sql::{
    evaluate, evaluate_predicate, parse_script, parse_statement, ColumnSpec, CreateTable, Expr,
    PartitionBy, Statement, TableKind,
};
use hana_txn::{TransactionManager, TwoPhaseParticipant, TxnHandle};
use hana_types::{ColumnDef, DataType, HanaError, Result, ResultSet, Row, Schema, Value};

use crate::catalog::{PlatformCatalog, TableEntry, TableKindInfo};
use crate::ingest::{IngestCommit, IngestDriver};
use crate::repository::{ArtifactKind, DeliveryUnit, Repository};
use crate::security::{Privilege, SecurityManager, Session};
use crate::writes::{LocalOp, LocalWrites};

/// SDA source name of the internal, shielded IQ instance.
pub const INTERNAL_IQ_SOURCE: &str = "_iq_internal";

/// Record separator for bulk-load WAL payloads.
const ROW_SEP: char = '\u{1e}';

/// Marker payload prefix for distributed bulk loads whose row data lives
/// in the per-partition logs rather than the coordinator log.
const DIST_LOAD_MARKER: &str = "--DISTLOAD\u{1}";

/// Payload prefix of a streaming-ingest epoch whose rows are inline:
/// `INGEST <pipeline> <epoch> <table> <rows>` (field-separated).
const INGEST_MARKER: &str = "INGEST\u{1}";

/// Payload prefix of a streaming-ingest epoch into a distributed table:
/// the rows live in the per-partition logs, the coordinator record only
/// carries `INGESTD <pipeline> <epoch> <table>`.
const INGEST_DIST_MARKER: &str = "INGESTD\u{1}";

type AdapterFactory = Box<dyn Fn(&str) -> Arc<dyn SdaAdapter> + Send + Sync>;

/// A logical, transactionally consistent backup spanning the in-memory
/// store and the extended storage (§3.1: "consistent backup and recovery
/// of both engines").
pub struct Backup {
    /// The snapshot commit ID everything was captured under.
    pub cid: u64,
    pub(crate) entries: Vec<BackupEntry>,
    /// Streaming-ingest ledger at the snapshot cut: `(pipeline,
    /// highest committed epoch)` — restoring it keeps epoch dedup
    /// working after the log prefix holding those epochs is pruned.
    pub(crate) ingest_epochs: Vec<(String, u64)>,
}

pub(crate) struct BackupEntry {
    pub(crate) name: String,
    pub(crate) kind: TableKindInfo,
    pub(crate) schema: Schema,
    pub(crate) rows: Vec<Row>,
    pub(crate) cold_rows: Vec<Row>,
    /// Secondary index definitions (checkpoints prune the log, so
    /// CREATE INDEX records cannot be relied on surviving replay).
    pub(crate) indexes: Vec<IndexDef>,
}

impl Backup {
    /// Number of captured tables.
    pub fn table_count(&self) -> usize {
        self.entries.len()
    }

    /// Total captured rows.
    pub fn row_count(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.rows.len() + e.cold_rows.len())
            .sum()
    }
}

/// The platform facade.
pub struct HanaPlatform {
    catalog: Arc<PlatformCatalog>,
    tm: Arc<TransactionManager>,
    iq: Arc<IqEngine>,
    exec: Arc<ExecContext>,
    esp: Arc<EspEngine>,
    security: SecurityManager,
    repository: Mutex<Repository>,
    local_writes: Arc<LocalWrites>,
    /// session id -> open explicit transaction.
    active_txns: Mutex<HashMap<u64, TxnHandle>>,
    adapter_factories: RwLock<HashMap<String, AdapterFactory>>,
    /// Streaming-ingest epoch ledger + checkpoint fence.
    ingest: crate::ingest::IngestLedger,
    /// The registered `CREATE STREAM SINK` driver (hana-ingest).
    ingest_driver: RwLock<Option<Arc<dyn crate::ingest::IngestDriver>>>,
}

impl HanaPlatform {
    /// A platform with a volatile WAL and a fresh extended store.
    pub fn new_in_memory() -> HanaPlatform {
        Self::build(TransactionManager::new())
    }

    /// A platform whose WAL persists to `path` (enables
    /// [`HanaPlatform::recover_replay`]).
    pub fn with_log_file(path: &Path) -> Result<HanaPlatform> {
        Ok(Self::build(TransactionManager::with_log_file(path)?))
    }

    /// Open (or create) a durable platform over the segmented log
    /// directory `dir` and recover its state: restore the latest
    /// checkpoint snapshot, then replay every committed suffix record.
    /// Returns the platform and the number of replayed statements.
    pub fn open_durable(dir: &Path) -> Result<(HanaPlatform, usize)> {
        Self::open_durable_with(dir, hana_txn::WalConfig::from_env())
    }

    /// [`open_durable`](Self::open_durable) with an explicit WAL
    /// configuration (group-commit window, segment size, failpoints).
    pub fn open_durable_with(
        dir: &Path,
        config: hana_txn::WalConfig,
    ) -> Result<(HanaPlatform, usize)> {
        let wal = Arc::new(hana_txn::Wal::open_dir_with(dir, config)?);
        let platform = Self::build(TransactionManager::with_shared_wal(Arc::clone(&wal)));
        let replayed = platform.recover_from_wal(&wal)?;
        Ok((platform, replayed))
    }

    /// Restore the checkpoint and replay the committed log suffix. The
    /// platform's own WAL is put in passive mode for the duration so
    /// replaying a statement does not log it a second time.
    fn recover_from_wal(&self, wal: &hana_txn::Wal) -> Result<usize> {
        wal.set_passive(true);
        let result = (|| {
            let report = wal.recover();
            let session = self.connect("SYSTEM", "manager")?;
            let mut after_cid = 0;
            if let Some(ckpt) = wal.latest_checkpoint() {
                let backup = crate::durability::decode_backup(&ckpt.payload)?;
                after_cid = ckpt.cid;
                self.restore(&session, &backup)?;
            }
            let committed: HashMap<u64, u64> = report.committed.iter().copied().collect();
            self.replay_records(&session, wal, &committed, after_cid)
        })();
        wal.set_passive(false);
        result
    }

    fn build(tm: TransactionManager) -> HanaPlatform {
        let iq = Arc::new(IqEngine::new("iq", 1024).expect("extended store"));
        let catalog = Arc::new(PlatformCatalog::new());
        catalog.register_iq_engine(INTERNAL_IQ_SOURCE, Arc::clone(&iq));
        let iq_adapter: Arc<dyn SdaAdapter> = Arc::new(IqAdapter::new(Arc::clone(&iq)));
        catalog
            .sda()
            .create_remote_source(INTERNAL_IQ_SOURCE, iq_adapter, "internal", None)
            .expect("fresh registry");
        HanaPlatform {
            catalog,
            tm: Arc::new(tm),
            iq,
            exec: Arc::clone(ExecContext::global()),
            esp: Arc::new(EspEngine::new()),
            security: SecurityManager::new(),
            repository: Mutex::new(Repository::new()),
            local_writes: Arc::new(LocalWrites::new()),
            active_txns: Mutex::new(HashMap::new()),
            adapter_factories: RwLock::new(HashMap::new()),
            ingest: crate::ingest::IngestLedger::new(),
            ingest_driver: RwLock::new(None),
        }
    }

    // ---- component access ----

    /// The platform catalog (implements the query layer's `Catalog`).
    pub fn catalog(&self) -> &Arc<PlatformCatalog> {
        &self.catalog
    }

    /// The transaction coordinator.
    pub fn transaction_manager(&self) -> &Arc<TransactionManager> {
        &self.tm
    }

    /// The extended storage engine (admin/testing; applications go
    /// through SQL).
    pub fn iq(&self) -> &Arc<IqEngine> {
        &self.iq
    }

    /// The parallel execution engine (worker pool, morsel config and
    /// per-query metrics). Shared with the query layer; sized from
    /// `HANA_EXEC_WORKERS` or the machine's available parallelism.
    pub fn exec(&self) -> &Arc<ExecContext> {
        &self.exec
    }

    /// The integrated event stream processor.
    pub fn esp(&self) -> &Arc<EspEngine> {
        &self.esp
    }

    /// The security manager.
    pub fn security(&self) -> &SecurityManager {
        &self.security
    }

    /// Connect with credentials.
    pub fn connect(&self, user: &str, password: &str) -> Result<Session> {
        self.security.connect(user, password)
    }

    /// Attach a Hadoop environment: registers the `hiveodbc` and
    /// `hadoop` adapters for `CREATE REMOTE SOURCE`.
    pub fn attach_hadoop(&self, hive: Arc<Hive>, functions: Arc<MrFunctionRegistry>) {
        let mut factories = self.adapter_factories.write();
        let h = Arc::clone(&hive);
        factories.insert(
            "hiveodbc".into(),
            Box::new(move |cfg| Arc::new(HiveOdbcAdapter::new(Arc::clone(&h), cfg))),
        );
        factories.insert(
            "hadoop".into(),
            Box::new(move |cfg| Arc::new(HadoopMrAdapter::new(Arc::clone(&functions), cfg))),
        );
    }

    /// Configure the remote materialization cache (§4.4's
    /// `enable_remote_cache` / `remote_cache_validity`). Resilience
    /// knobs keep their current values.
    pub fn set_remote_cache(&self, enable: bool, validity: u64) {
        let cfg = self
            .remote_cache_config()
            .with_remote_cache(enable)
            .with_validity(validity);
        self.catalog.sda().set_cache_config(cfg);
    }

    /// The current federation configuration (cache + resilience knobs).
    pub fn remote_cache_config(&self) -> RemoteCacheConfig {
        self.catalog.sda().cache.config()
    }

    /// Replace the whole federation configuration — remote cache,
    /// stale-fallback bounds, default retry policy and breaker
    /// thresholds. Per-source breakers are rebuilt with the new
    /// thresholds.
    pub fn set_remote_cache_config(&self, config: RemoteCacheConfig) {
        self.catalog.sda().set_cache_config(config);
    }

    /// Resilience statistics of one remote source: breaker state and
    /// counters, retries spent, stale fallbacks served.
    pub fn remote_source_stats(&self, source: &str) -> Result<RemoteSourceStats> {
        self.catalog.sda().source_stats(source)
    }

    /// Interpose a deterministic fault injector around a registered
    /// remote source (testing/drills). Returns the chaos handle so the
    /// caller can flip [`ChaosAdapter::force_down`] or read the injected
    /// counters; the wrapped source keeps its name, configuration and
    /// credentials.
    pub fn inject_chaos(&self, source: &str, config: ChaosConfig) -> Result<Arc<ChaosAdapter>> {
        let sda = self.catalog.sda();
        let existing = sda.source(source)?;
        let chaos = Arc::new(ChaosAdapter::new(existing.adapter, config));
        sda.replace_adapter(source, Arc::clone(&chaos) as Arc<dyn SdaAdapter>)?;
        Ok(chaos)
    }

    // ---- observability ----

    /// One unified snapshot of the platform's metrics: the global
    /// `hana-obs` registry (exec pool throughput, SDA per-source
    /// attempts/retries/breaker trips and round-trip latencies, IQ
    /// buffer-cache traffic, columnar delta-merge durations), with the
    /// derived gauges refreshed first. The snapshot is plain data and
    /// renders via [`hana_obs::RegistrySnapshot::to_json`] or
    /// [`hana_obs::RegistrySnapshot::to_prometheus`].
    pub fn observability_snapshot(&self) -> hana_obs::RegistrySnapshot {
        let obs = hana_obs::registry();
        // Exec pool gauges (utilization, queue depth) refresh as a
        // side effect of reading the pool metrics.
        let _ = self.exec.pool_metrics();
        // IQ buffer cache: hit ratio and residency.
        let (hits, misses) = self.iq.cache().stats();
        if let Some(ratio) = (hits * 1000).checked_div(hits + misses) {
            obs.gauge("hana_iq_cache_hit_ratio_permille")
                .set(ratio as i64);
        }
        obs.gauge("hana_iq_cache_resident_pages")
            .set(self.iq.cache().resident_pages() as i64);
        // SDA breaker states (0 = closed, 1 = half-open, 2 = open).
        let sda = self.catalog.sda();
        for source in sda.list_sources() {
            if let Ok(stats) = sda.source_stats(&source) {
                let state = match stats.breaker_state {
                    hana_sda::BreakerState::Closed => 0,
                    hana_sda::BreakerState::HalfOpen => 1,
                    hana_sda::BreakerState::Open => 2,
                };
                obs.gauge(&format!("hana_sda_breaker_state_{source}"))
                    .set(state);
            }
        }
        obs.snapshot()
    }

    /// Run one SQL query under a fresh tracer and return its result
    /// together with the `EXPLAIN ANALYZE`-style profile tree (wall
    /// time, rows, bytes and worker count per operator). Statements
    /// other than queries execute normally but produce an empty tree.
    pub fn profile_query(
        &self,
        session: &Session,
        sql: &str,
    ) -> Result<(ResultSet, hana_obs::QueryProfile)> {
        let tracer = hana_obs::Tracer::new();
        let result = {
            let _installed = tracer.install();
            let root = hana_obs::span("query");
            let result = self.execute_sql(session, sql);
            if let Ok(rs) = &result {
                root.set_rows(rs.rows.len() as u64);
                root.set_bytes(rs.approx_bytes());
            }
            result
        };
        Ok((result?, tracer.profile()))
    }

    // ---- transactions ----

    fn participants(&self) -> Vec<Arc<dyn TwoPhaseParticipant>> {
        vec![
            Arc::clone(&self.local_writes) as Arc<dyn TwoPhaseParticipant>,
            Arc::clone(&self.iq) as Arc<dyn TwoPhaseParticipant>,
        ]
    }

    /// Snapshot the session reads under.
    fn snapshot_cid(&self, session: &Session) -> u64 {
        self.active_txns
            .lock()
            .get(&session.id)
            .map(|t| t.snapshot.cid())
            .unwrap_or_else(|| self.tm.current_snapshot().cid())
    }

    /// The session's transaction, or a fresh auto-commit one.
    fn txn_for(&self, session: &Session) -> (TxnHandle, bool) {
        match self.active_txns.lock().get(&session.id) {
            Some(t) => (*t, false),
            None => (self.tm.begin(), true),
        }
    }

    // ---- the single point of access ----

    /// Execute one SQL statement.
    pub fn execute_sql(&self, session: &Session, sql: &str) -> Result<ResultSet> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(session, stmt, sql)
    }

    /// Execute an already-parsed statement. The session layer parses a
    /// prepared statement once and replays the (bound) AST here on each
    /// execution, skipping the lexer/parser on the hot path.
    pub fn execute_parsed(
        &self,
        session: &Session,
        stmt: Statement,
        sql_text: &str,
    ) -> Result<ResultSet> {
        self.execute_statement(session, stmt, sql_text)
    }

    /// Compile a query against the current catalog without executing
    /// it. Pair with [`HanaPlatform::execute_plan`] and
    /// [`HanaPlatform::catalog_version`] to build a plan cache: a plan
    /// compiled under version N stays valid until the version moves.
    pub fn plan_query(
        &self,
        session: &Session,
        q: &hana_sql::Query,
    ) -> Result<hana_query::PlanNode> {
        self.security.check(session, Privilege::Select)?;
        PlannerContext::new(self.catalog.as_ref()).planner().plan(q)
    }

    /// Execute a previously compiled plan under the session's current
    /// snapshot. Table bindings resolve through the catalog at run
    /// time, so a cached plan sees data changes (inserts, merges) made
    /// since it was compiled — only *metadata* changes invalidate it.
    pub fn execute_plan(
        &self,
        session: &Session,
        plan: &hana_query::PlanNode,
    ) -> Result<ResultSet> {
        self.security.check(session, Privilege::Select)?;
        let cid = self.snapshot_cid(session);
        hana_query::execute_plan_with(&self.exec, plan, self.catalog.as_ref(), cid)
    }

    /// Current catalog version (bumped by DDL, function registration and
    /// delta merges).
    pub fn catalog_version(&self) -> u64 {
        self.catalog.version()
    }

    /// Execute a script of `;`-separated statements, returning the last
    /// result.
    pub fn execute_script(&self, session: &Session, sql: &str) -> Result<ResultSet> {
        let mut last = ResultSet::default();
        for piece in split_sql_script(sql) {
            let stmt = parse_statement(&piece)?;
            last = self.execute_statement(session, stmt, &piece)?;
        }
        Ok(last)
    }

    fn execute_statement(
        &self,
        session: &Session,
        stmt: Statement,
        sql_text: &str,
    ) -> Result<ResultSet> {
        match stmt {
            Statement::Query(q) => {
                self.security.check(session, Privilege::Select)?;
                let cid = self.snapshot_cid(session);
                execute_query_with(&self.exec, &q, self.catalog.as_ref(), cid)
            }
            Statement::Explain(q) => {
                self.security.check(session, Privilege::Select)?;
                let plan = PlannerContext::new(self.catalog.as_ref())
                    .planner()
                    .plan(&q)?;
                let lines: Vec<Row> = plan
                    .explain()
                    .lines()
                    .map(|l| Row::from_values([Value::from(l)]))
                    .collect();
                Ok(ResultSet::new(
                    Schema::of(&[("plan", DataType::Varchar)]),
                    lines,
                ))
            }
            Statement::CreateTable(ct) => {
                self.security.check(session, Privilege::Ddl)?;
                self.create_table(ct)?;
                self.log_ddl(sql_text)?;
                Ok(ok_result())
            }
            Statement::DropTable { name } => {
                self.security.check(session, Privilege::Ddl)?;
                self.drop_table(&name)?;
                self.log_ddl(sql_text)?;
                Ok(ok_result())
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
            } => {
                self.security.check(session, Privilege::Ddl)?;
                let entry = self.catalog.table(&table)?;
                match &entry.source {
                    TableSource::Column(t) => t.write().create_index(&name, &columns)?,
                    TableSource::Hybrid { hot, .. } => hot.write().create_index(&name, &columns)?,
                    _ => {
                        return Err(HanaError::Unsupported(format!(
                            "'{table}' does not support secondary indexes"
                        )))
                    }
                }
                // Index metadata changes which plans are valid: bump the
                // catalog version so cached plans re-prepare.
                self.catalog.bump_version();
                self.log_ddl(sql_text)?;
                Ok(ok_result())
            }
            Statement::DropIndex { name, table } => {
                self.security.check(session, Privilege::Ddl)?;
                let owner = match table {
                    Some(t) => t,
                    None => self.find_index_owner(&name)?,
                };
                let entry = self.catalog.table(&owner)?;
                match &entry.source {
                    TableSource::Column(t) => t.write().drop_index(&name)?,
                    TableSource::Hybrid { hot, .. } => hot.write().drop_index(&name)?,
                    _ => {
                        return Err(HanaError::Catalog(format!(
                            "table '{owner}' has no index '{name}'"
                        )))
                    }
                }
                self.catalog.bump_version();
                self.log_ddl(sql_text)?;
                Ok(ok_result())
            }
            Statement::CreateRemoteSource {
                name,
                adapter,
                configuration,
                credentials,
                ..
            } => {
                self.security.check(session, Privilege::Ddl)?;
                let factories = self.adapter_factories.read();
                let factory = factories
                    .get(&adapter.to_ascii_lowercase())
                    .ok_or_else(|| {
                        HanaError::Config(format!(
                            "no adapter '{adapter}' available; attach the environment first"
                        ))
                    })?;
                let instance = factory(&configuration);
                self.catalog.sda().create_remote_source(
                    &name,
                    instance,
                    &configuration,
                    credentials.as_deref(),
                )?;
                Ok(ok_result())
            }
            Statement::CreateVirtualTable { name, remote_path } => {
                self.security.check(session, Privilege::Ddl)?;
                if remote_path.len() < 2 {
                    return Err(HanaError::Parse(
                        "virtual table path needs source and table".into(),
                    ));
                }
                let source = &remote_path[0];
                let remote_table = remote_path.last().expect("len >= 2");
                self.catalog
                    .sda()
                    .create_virtual_table(&name, source, remote_table)?;
                let vt = self
                    .catalog
                    .sda()
                    .virtual_table(&name)
                    .expect("just created");
                self.catalog.add_table(
                    &name,
                    TableEntry {
                        source: TableSource::Virtual {
                            source: vt.source,
                            remote_table: vt.remote_table,
                            schema: vt.schema,
                        },
                        kind: TableKindInfo::Virtual,
                    },
                )?;
                Ok(ok_result())
            }
            Statement::CreateVirtualFunction {
                name,
                returns,
                configuration,
                source,
            } => {
                self.security.check(session, Privilege::Ddl)?;
                let cols: Vec<ColumnDef> = returns
                    .iter()
                    .map(|(n, t)| Ok(ColumnDef::new(n, DataType::parse_sql(t)?)))
                    .collect::<Result<_>>()?;
                let schema = Schema::new(cols)?;
                self.catalog.sda().create_virtual_function(
                    &name,
                    &source,
                    &configuration,
                    schema.clone(),
                )?;
                self.catalog.add_function(
                    &name,
                    Arc::new(VirtualFunctionProxy {
                        catalog: Arc::downgrade(&self.catalog),
                        name: name.clone(),
                        schema,
                    }),
                );
                Ok(ok_result())
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                self.security.check(session, Privilege::Write)?;
                let n = self.run_dml(session, sql_text, |p, tid, cid| {
                    p.buffer_insert(tid, cid, &table, columns.as_deref(), &rows)
                })?;
                Ok(count_result(n))
            }
            Statement::Delete { table, filter } => {
                self.security.check(session, Privilege::Write)?;
                let n = self.run_dml(session, sql_text, |p, tid, cid| {
                    p.buffer_delete(tid, cid, &table, filter.as_ref())
                })?;
                Ok(count_result(n))
            }
            Statement::Update {
                table,
                assignments,
                filter,
            } => {
                self.security.check(session, Privilege::Write)?;
                let n = self.run_dml(session, sql_text, |p, tid, cid| {
                    p.buffer_update(tid, cid, &table, &assignments, filter.as_ref())
                })?;
                Ok(count_result(n))
            }
            Statement::Begin => {
                let mut txns = self.active_txns.lock();
                if txns.contains_key(&session.id) {
                    return Err(HanaError::Transaction(
                        "a transaction is already open in this session".into(),
                    ));
                }
                txns.insert(session.id, self.tm.begin());
                Ok(ok_result())
            }
            Statement::Commit => {
                let txn = self
                    .active_txns
                    .lock()
                    .remove(&session.id)
                    .ok_or_else(|| HanaError::Transaction("no open transaction".into()))?;
                self.tm.commit(txn, &self.participants())?;
                Ok(ok_result())
            }
            Statement::Rollback => {
                let txn = self
                    .active_txns
                    .lock()
                    .remove(&session.id)
                    .ok_or_else(|| HanaError::Transaction("no open transaction".into()))?;
                self.tm.abort(txn, &self.participants())?;
                Ok(ok_result())
            }
            Statement::MergeDelta { table } => {
                self.security.check(session, Privilege::Ddl)?;
                let entry = self.catalog.table(&table)?;
                match &entry.source {
                    TableSource::Column(t) => {
                        t.write().merge_delta();
                    }
                    TableSource::Hybrid { hot, .. } => {
                        hot.write().merge_delta();
                    }
                    TableSource::Distributed(dt) => {
                        dt.merge_delta();
                    }
                    _ => {
                        return Err(HanaError::Unsupported(format!(
                            "'{table}' has no delta to merge"
                        )))
                    }
                }
                // A merge rewrites the main fragment: re-collect the
                // persisted synopses (which bumps the catalog version,
                // invalidating cached plans). Sources without
                // collectable columns still get the version bump.
                if !self.refresh_statistics(&table)? {
                    self.catalog.bump_version();
                }
                // MERGE DELTA is a checkpoint barrier: the merged main
                // fragment is exactly the state worth snapshotting, and
                // pruning here keeps the replay suffix short.
                self.maybe_checkpoint();
                Ok(ok_result())
            }
            Statement::CreateStreamSink {
                name,
                source,
                table,
            } => {
                self.security.check(session, Privilege::Stream)?;
                // Runtime wiring, like CREATE REMOTE SOURCE: not WAL-
                // logged; pipelines are re-attached after restart (the
                // ledger makes re-delivery harmless).
                self.ingest_driver()?
                    .create_sink(session, &name, &source, &table)?;
                Ok(ok_result())
            }
            Statement::DropStreamSink { name } => {
                self.security.check(session, Privilege::Stream)?;
                if !self.ingest_driver()?.drop_sink(&name)? {
                    return Err(HanaError::Stream(format!("unknown stream sink '{name}'")));
                }
                Ok(ok_result())
            }
        }
    }

    /// Run a buffered DML statement inside the session's (or a fresh
    /// auto-commit) transaction, logging it for recovery.
    fn run_dml(
        &self,
        session: &Session,
        sql_text: &str,
        f: impl FnOnce(&Self, u64, u64) -> Result<usize>,
    ) -> Result<usize> {
        let (txn, auto) = self.txn_for(session);
        let result = f(self, txn.tid, txn.snapshot.cid());
        match result {
            Ok(n) => {
                self.tm.log_data(txn.tid, "hana", sql_text)?;
                if auto {
                    self.tm.commit(txn, &self.participants())?;
                }
                Ok(n)
            }
            Err(e) => {
                if auto {
                    let _ = self.tm.abort(txn, &self.participants());
                }
                Err(e)
            }
        }
    }

    // ---- DDL ----

    fn create_table(&self, ct: CreateTable) -> Result<()> {
        let schema = schema_from_specs(&ct.columns)?;
        if let Some(p) = &ct.partition {
            // Partitioned scale-out table: fragments on the in-process
            // node landscape, one per partition.
            if ct.extended.is_some() {
                return Err(HanaError::Unsupported(
                    "PARTITION BY cannot be combined with extended storage".into(),
                ));
            }
            if ct.kind != TableKind::Column {
                return Err(HanaError::Unsupported(
                    "PARTITION BY is supported on column tables only".into(),
                ));
            }
            let dt = Arc::new(hana_dist::DistTable::new(
                &ct.name,
                schema,
                partition_spec(p),
            )?);
            if let Some(base) = self.tm.wal().dir() {
                // Durable platform: give every partition its own log
                // under the coordinator's directory so scale-out loads
                // are durable per partition.
                let pdir = base.join("dist").join(ct.name.to_ascii_lowercase());
                dt.attach_wal(&pdir)?;
            }
            return self.catalog.add_table(
                &ct.name,
                TableEntry {
                    source: TableSource::Distributed(dt),
                    kind: TableKindInfo::Distributed {
                        partition: p.clone(),
                    },
                },
            );
        }
        match &ct.extended {
            None => match ct.kind {
                TableKind::Column => {
                    let table = ColumnTable::new(&ct.name, schema);
                    self.catalog.add_table(
                        &ct.name,
                        TableEntry {
                            source: TableSource::Column(Arc::new(RwLock::new(table))),
                            kind: TableKindInfo::Column,
                        },
                    )
                }
                TableKind::Row => {
                    let pk = ct
                        .columns
                        .iter()
                        .find(|c| c.primary_key)
                        .map(|c| c.name.clone());
                    let table = RowTable::new(&ct.name, schema, pk.as_deref())?;
                    self.catalog.add_table(
                        &ct.name,
                        TableEntry {
                            source: TableSource::Row(Arc::new(RwLock::new(table))),
                            kind: TableKindInfo::Row,
                        },
                    )
                }
            },
            Some(ext) if !ext.hybrid => {
                // Whole table in the extended store (§3.1 scenario 1).
                self.iq.create_table(&ct.name, schema.clone())?;
                self.catalog.add_table(
                    &ct.name,
                    TableEntry {
                        source: TableSource::Extended {
                            source: INTERNAL_IQ_SOURCE.into(),
                            remote_table: ct.name.to_ascii_lowercase(),
                            schema,
                        },
                        kind: TableKindInfo::Extended,
                    },
                )
            }
            Some(ext) => {
                // Hybrid table (§3.1 scenario 2): hot in-memory
                // partition + cold IQ partition, aged by the flag column.
                let aging = ext.aging_column.clone().ok_or_else(|| {
                    HanaError::Parse("hybrid tables need AGING ON <flag column>".into())
                })?;
                let idx = schema.require(&aging)?;
                if schema.column(idx).data_type != DataType::Bool {
                    return Err(HanaError::Catalog(format!(
                        "aging column '{aging}' must be BOOLEAN"
                    )));
                }
                let cold_table = format!("{}__cold", ct.name.to_ascii_lowercase());
                self.iq.create_table(&cold_table, schema.clone())?;
                let hot = ColumnTable::new(&ct.name, schema);
                self.catalog.add_table(
                    &ct.name,
                    TableEntry {
                        source: TableSource::Hybrid {
                            hot: Arc::new(RwLock::new(hot)),
                            source: INTERNAL_IQ_SOURCE.into(),
                            cold_table: cold_table.clone(),
                            aging_column: aging.clone(),
                        },
                        kind: TableKindInfo::Hybrid {
                            aging_column: aging,
                            cold_table,
                        },
                    },
                )
            }
        }
    }

    fn drop_table(&self, name: &str) -> Result<()> {
        let entry = self.catalog.remove_table(name)?;
        if let TableSource::Distributed(dt) = &entry.source {
            if let Some(wals) = dt.partition_wals() {
                // The table is gone; its partition logs are dead weight.
                let dir = wals.dir().to_path_buf();
                drop(wals);
                if let Err(e) = std::fs::remove_dir_all(&dir) {
                    hana_obs::warn(format!(
                        "could not remove partition logs at {}: {e}",
                        dir.display()
                    ));
                }
            }
        }
        match entry.kind {
            TableKindInfo::Extended => self.iq.drop_table(name)?,
            TableKindInfo::Hybrid { cold_table, .. } => self.iq.drop_table(&cold_table)?,
            _ => {}
        }
        Ok(())
    }

    /// Resolve which table owns an index named without an `ON` clause.
    fn find_index_owner(&self, index: &str) -> Result<String> {
        for (name, _) in self.catalog.list_tables() {
            let Ok(entry) = self.catalog.table(&name) else {
                continue;
            };
            let found = match &entry.source {
                TableSource::Column(t) => t.read().index(index).is_some(),
                TableSource::Hybrid { hot, .. } => hot.read().index(index).is_some(),
                _ => false,
            };
            if found {
                return Ok(name);
            }
        }
        Err(HanaError::Catalog(format!("unknown index '{index}'")))
    }

    fn log_ddl(&self, sql: &str) -> Result<()> {
        let txn = self.tm.begin();
        self.tm.log_data(txn.tid, "hana", sql)?;
        self.tm.commit(txn, &[])?;
        Ok(())
    }

    // ---- DML buffering ----

    fn buffer_insert(
        &self,
        tid: u64,
        _cid: u64,
        table: &str,
        columns: Option<&[String]>,
        value_rows: &[Vec<Expr>],
    ) -> Result<usize> {
        let entry = self.catalog.table(table)?;
        let schema = entry.source.schema();
        let empty = Schema::default();
        let mut rows = Vec::with_capacity(value_rows.len());
        for exprs in value_rows {
            let values: Vec<Value> = exprs
                .iter()
                .map(|e| evaluate(e, &empty, &Row::new()))
                .collect::<Result<_>>()?;
            let row = match columns {
                None => values,
                Some(cols) => {
                    if cols.len() != values.len() {
                        return Err(HanaError::Execution(format!(
                            "{} columns but {} values",
                            cols.len(),
                            values.len()
                        )));
                    }
                    let mut full = vec![Value::Null; schema.len()];
                    for (c, v) in cols.iter().zip(values) {
                        full[schema.require(c)?] = v;
                    }
                    full
                }
            };
            schema.check_row(&row)?;
            rows.push(row);
        }
        let n = rows.len();
        match &entry.source {
            TableSource::Column(t) => {
                for row in rows {
                    self.local_writes.buffer(
                        tid,
                        LocalOp::ColumnInsert {
                            table: Arc::clone(t),
                            row,
                        },
                    );
                }
            }
            TableSource::Row(t) => {
                for row in rows {
                    self.local_writes.buffer(
                        tid,
                        LocalOp::RowInsert {
                            table: Arc::clone(t),
                            row,
                        },
                    );
                }
            }
            TableSource::Hybrid { hot, .. } => {
                for row in rows {
                    self.local_writes.buffer(
                        tid,
                        LocalOp::ColumnInsert {
                            table: Arc::clone(hot),
                            row,
                        },
                    );
                }
            }
            TableSource::Extended { remote_table, .. } => {
                self.iq
                    .buffer_insert(tid, remote_table, rows.into_iter().map(Row).collect())?;
            }
            TableSource::Distributed(dt) => {
                // Routed insert: each row buffers against its home
                // node's fragment.
                for row in rows {
                    let node = dt.route(&row);
                    self.local_writes.buffer(
                        tid,
                        LocalOp::ColumnInsert {
                            table: Arc::clone(dt.nodes()[node].table()),
                            row,
                        },
                    );
                }
            }
            TableSource::Virtual { .. } => {
                return Err(HanaError::Unsupported(format!(
                    "virtual table '{table}' is read-only (no CAP_DML)"
                )));
            }
        }
        Ok(n)
    }

    fn buffer_delete(
        &self,
        tid: u64,
        cid: u64,
        table: &str,
        filter: Option<&Expr>,
    ) -> Result<usize> {
        let entry = self.catalog.table(table)?;
        match &entry.source {
            TableSource::Column(t) => {
                let victims = {
                    let tr = t.read();
                    matching_column_rows(&tr, filter, cid)?
                };
                let n = victims.len();
                for row_id in victims {
                    self.local_writes.buffer(
                        tid,
                        LocalOp::ColumnDelete {
                            table: Arc::clone(t),
                            row_id,
                        },
                    );
                }
                Ok(n)
            }
            TableSource::Row(t) => {
                let tr = t.read();
                let schema = tr.schema().clone();
                let slots = tr.slots_matching(hana_txn::Snapshot::at(cid), |row| match filter {
                    None => true,
                    Some(f) => evaluate_predicate(f, &schema, row).unwrap_or(false),
                });
                drop(tr);
                let n = slots.len();
                for slot in slots {
                    self.local_writes.buffer(
                        tid,
                        LocalOp::RowDelete {
                            table: Arc::clone(t),
                            slot,
                        },
                    );
                }
                Ok(n)
            }
            TableSource::Hybrid {
                hot, cold_table, ..
            } => {
                let victims = {
                    let tr = hot.read();
                    matching_column_rows(&tr, filter, cid)?
                };
                let mut n = victims.len();
                for row_id in victims {
                    self.local_writes.buffer(
                        tid,
                        LocalOp::ColumnDelete {
                            table: Arc::clone(hot),
                            row_id,
                        },
                    );
                }
                n += self.iq_delete(tid, cid, cold_table, filter)?;
                Ok(n)
            }
            TableSource::Extended { remote_table, .. } => {
                self.iq_delete(tid, cid, remote_table, filter)
            }
            TableSource::Distributed(dt) => {
                let mut n = 0;
                for node in dt.nodes() {
                    let victims = {
                        let tr = node.table().read();
                        matching_column_rows(&tr, filter, cid)?
                    };
                    n += victims.len();
                    for row_id in victims {
                        self.local_writes.buffer(
                            tid,
                            LocalOp::ColumnDelete {
                                table: Arc::clone(node.table()),
                                row_id,
                            },
                        );
                    }
                }
                Ok(n)
            }
            TableSource::Virtual { .. } => Err(HanaError::Unsupported(format!(
                "virtual table '{table}' is read-only (no CAP_DML)"
            ))),
        }
    }

    fn iq_delete(
        &self,
        tid: u64,
        cid: u64,
        remote_table: &str,
        filter: Option<&Expr>,
    ) -> Result<usize> {
        let preds = match filter {
            None => Vec::new(),
            Some(f) => {
                let (pushed, residual) = hana_sda::split_pushdown(f);
                if !residual.is_empty() {
                    return Err(HanaError::Unsupported(format!(
                        "DELETE filter not fully pushable to the extended store: {residual:?}"
                    )));
                }
                pushed
            }
        };
        self.iq.buffer_delete(tid, remote_table, &preds, cid)
    }

    fn buffer_update(
        &self,
        tid: u64,
        cid: u64,
        table: &str,
        assignments: &[(String, Expr)],
        filter: Option<&Expr>,
    ) -> Result<usize> {
        let entry = self.catalog.table(table)?;
        let schema = entry.source.schema();
        let apply = |row: &Row| -> Result<Vec<Value>> {
            let mut new_row = row.values().to_vec();
            for (col, e) in assignments {
                new_row[schema.require(col)?] = evaluate(e, &schema, row)?;
            }
            Ok(new_row)
        };
        match &entry.source {
            // Hybrid tables update their hot partition; cold data is
            // read-mostly ("rarely accessed", §3.1) and must be un-aged
            // before modification.
            TableSource::Column(t) | TableSource::Hybrid { hot: t, .. } => {
                let (victims, new_rows) = {
                    let tr = t.read();
                    let victims = matching_column_rows(&tr, filter, cid)?;
                    let new_rows: Vec<Vec<Value>> = victims
                        .iter()
                        .map(|&r| {
                            apply(&Row::from_values((0..schema.len()).map(|c| tr.value(r, c))))
                        })
                        .collect::<Result<_>>()?;
                    (victims, new_rows)
                };
                let n = victims.len();
                for (row_id, row) in victims.into_iter().zip(new_rows) {
                    self.local_writes.buffer(
                        tid,
                        LocalOp::ColumnDelete {
                            table: Arc::clone(t),
                            row_id,
                        },
                    );
                    self.local_writes.buffer(
                        tid,
                        LocalOp::ColumnInsert {
                            table: Arc::clone(t),
                            row,
                        },
                    );
                }
                Ok(n)
            }
            TableSource::Row(t) => {
                let tr = t.read();
                let sch = tr.schema().clone();
                let slots = tr.slots_matching(hana_txn::Snapshot::at(cid), |row| match filter {
                    None => true,
                    Some(f) => evaluate_predicate(f, &sch, row).unwrap_or(false),
                });
                let updates: Vec<(usize, Vec<Value>)> = slots
                    .iter()
                    .map(|&s| {
                        let old = tr.slot_values(s).expect("slot exists").clone();
                        Ok((s, apply(&old)?))
                    })
                    .collect::<Result<_>>()?;
                drop(tr);
                let n = updates.len();
                for (slot, row) in updates {
                    self.local_writes.buffer(
                        tid,
                        LocalOp::RowDelete {
                            table: Arc::clone(t),
                            slot,
                        },
                    );
                    self.local_writes.buffer(
                        tid,
                        LocalOp::RowInsert {
                            table: Arc::clone(t),
                            row,
                        },
                    );
                }
                Ok(n)
            }
            TableSource::Distributed(dt) => {
                let mut n = 0;
                for node in dt.nodes() {
                    let (victims, new_rows) = {
                        let tr = node.table().read();
                        let victims = matching_column_rows(&tr, filter, cid)?;
                        let new_rows: Vec<Vec<Value>> = victims
                            .iter()
                            .map(|&r| {
                                apply(&Row::from_values((0..schema.len()).map(|c| tr.value(r, c))))
                            })
                            .collect::<Result<_>>()?;
                        (victims, new_rows)
                    };
                    n += victims.len();
                    for (row_id, row) in victims.into_iter().zip(new_rows) {
                        self.local_writes.buffer(
                            tid,
                            LocalOp::ColumnDelete {
                                table: Arc::clone(node.table()),
                                row_id,
                            },
                        );
                        // Re-route the new image: a partition-key update
                        // may move the row to a different node.
                        let home = dt.route(&row);
                        self.local_writes.buffer(
                            tid,
                            LocalOp::ColumnInsert {
                                table: Arc::clone(dt.nodes()[home].table()),
                                row,
                            },
                        );
                    }
                }
                Ok(n)
            }
            _ => Err(HanaError::Unsupported(format!(
                "UPDATE is supported on local tables only, not '{table}'"
            ))),
        }
    }

    // ---- bulk load ----

    /// Bulk-load rows through a single transaction. For extended tables
    /// this is the §3.1 **direct load** path ("directly moves the data
    /// into the external store without taking a detour via the in-memory
    /// store").
    pub fn load_rows(&self, session: &Session, table: &str, rows: &[Row]) -> Result<usize> {
        self.security.check(session, Privilege::Write)?;
        let entry = self.catalog.table(table)?;
        let schema = entry.source.schema();
        for row in rows {
            schema.check_row(row.values())?;
        }
        let txn = self.tm.begin();
        let dist_logged = match self.bulk_buffer(&txn, table, &entry, rows) {
            Ok(d) => d,
            Err(e) => {
                // Abort so a retry of the same load starts clean.
                let _ = self.tm.abort(txn, &self.participants());
                return Err(e);
            }
        };
        // Log the bulk load for point-in-time recovery: a marker when
        // the rows already sit durably in partition logs, the full row
        // payload otherwise.
        let payload = if dist_logged {
            format!("{DIST_LOAD_MARKER}{table}")
        } else {
            format!("LOAD\u{1}{table}\u{1}{}", encode_rows(rows))
        };
        let tid = txn.tid;
        self.tm.log_data(tid, "hana", &payload)?;
        let receipt = self.tm.commit(txn, &self.participants())?;
        if dist_logged {
            if let TableSource::Distributed(dt) = &entry.source {
                // Best-effort bookkeeping marker in the partition logs;
                // the coordinator's commit record is the source of truth.
                dt.log_commit(tid, receipt.cid);
            }
        }
        // Bulk load is a natural statistics trigger (§3.1 synopses):
        // restore and ESP ingestion funnel through here too, so
        // recovered tables come back with fresh statistics.
        self.refresh_statistics(table)?;
        // Bulk load is also a checkpoint barrier: the snapshot it
        // triggers keeps recovery from replaying the (potentially large)
        // load payload ever again.
        self.maybe_checkpoint();
        Ok(rows.len())
    }

    /// Buffer `rows` into `entry`'s storage under `txn` — the shared
    /// apply half of [`load_rows`](Self::load_rows) and
    /// [`commit_ingest_batch`](Self::commit_ingest_batch). Distributed
    /// tables route through the repartition exchange and write their
    /// per-partition logs; returns whether they did (`dist_logged`).
    fn bulk_buffer(
        &self,
        txn: &TxnHandle,
        table: &str,
        entry: &TableEntry,
        rows: &[Row],
    ) -> Result<bool> {
        let mut dist_logged = false;
        match &entry.source {
            TableSource::Column(t) | TableSource::Hybrid { hot: t, .. } => {
                for row in rows {
                    self.local_writes.buffer(
                        txn.tid,
                        LocalOp::ColumnInsert {
                            table: Arc::clone(t),
                            row: row.values().to_vec(),
                        },
                    );
                }
            }
            TableSource::Row(t) => {
                for row in rows {
                    self.local_writes.buffer(
                        txn.tid,
                        LocalOp::RowInsert {
                            table: Arc::clone(t),
                            row: row.values().to_vec(),
                        },
                    );
                }
            }
            TableSource::Extended { remote_table, .. } => {
                self.iq
                    .buffer_insert(txn.tid, remote_table, rows.to_vec())?;
            }
            TableSource::Distributed(dt) => {
                // Bulk load goes through the repartition exchange: rows
                // are bucketed by partition key and shipped to their
                // home nodes over the links (accounted + fault-checked).
                let ctx = RemoteContext::snapshot(txn.snapshot.cid());
                let buckets =
                    hana_dist::repartition(dt, &ctx, &RetryPolicy::default(), rows.to_vec())?;
                for (node, bucket) in buckets.into_iter().enumerate() {
                    for row in bucket {
                        self.local_writes.buffer(
                            txn.tid,
                            LocalOp::ColumnInsert {
                                table: Arc::clone(dt.nodes()[node].table()),
                                row: row.0,
                            },
                        );
                    }
                }
                // Coordinated durability: write the rows to their home
                // partitions' logs and fsync them *before* the
                // coordinator's commit record, so a committed coordinator
                // record guarantees every partition has its rows. The
                // coordinator log then only carries a marker.
                if dt.wal_attached() && !self.tm.wal().passive() {
                    for row in rows {
                        dt.log_insert(txn.tid, row.values())?;
                    }
                    dt.sync_wal()?;
                    dist_logged = true;
                }
            }
            TableSource::Virtual { .. } => {
                return Err(HanaError::Unsupported(format!(
                    "virtual table '{table}' is read-only"
                )));
            }
        }
        Ok(dist_logged)
    }

    // ---- streaming ingest (exactly-once epochs) ----

    /// Commit one streaming-ingest batch under `(pipeline, epoch)`,
    /// exactly once: if the ledger already covers `epoch` (producer
    /// retry after a lost ack, or WAL replay), nothing is applied and
    /// [`IngestCommit::Deduplicated`] is returned. Otherwise the rows
    /// are bulk-applied (distributed tables via the repartition
    /// exchange + per-partition logs), the epoch is logged with the
    /// batch's transaction, and the ledger advances — all under the
    /// epoch fence, so a concurrent checkpoint cut (MERGE DELTA, bulk
    /// load) sees either none or all of the epoch.
    ///
    /// Deliberately *not* per-batch: statistics refresh (a catalog
    /// version bump would invalidate every cached session plan on each
    /// micro-batch) and checkpointing (a full snapshot per batch).
    /// Delta merges and explicit checkpoints cover both at a sane
    /// cadence.
    pub fn commit_ingest_batch(
        &self,
        session: &Session,
        pipeline: &str,
        epoch: u64,
        table: &str,
        rows: &[Row],
    ) -> Result<IngestCommit> {
        self.security.check(session, Privilege::Stream)?;
        let entry = self.catalog.table(table)?;
        let schema = entry.source.schema();
        for row in rows {
            schema.check_row(row.values())?;
        }
        let _fence = self.ingest.fence();
        let last = self.ingest.last_epoch(pipeline);
        if epoch <= last {
            hana_obs::registry()
                .counter("hana_ingest_epochs_deduped_total")
                .inc();
            return Ok(IngestCommit::Deduplicated { last_epoch: last });
        }
        let txn = self.tm.begin();
        let dist_logged = match self.bulk_buffer(&txn, table, &entry, rows) {
            Ok(d) => d,
            Err(e) => {
                // Abort so a chunk-level or batch-level retry of the
                // same epoch starts from a clean slate.
                let _ = self.tm.abort(txn, &self.participants());
                return Err(e);
            }
        };
        let payload = if dist_logged {
            format!("{INGEST_DIST_MARKER}{pipeline}\u{1}{epoch}\u{1}{table}")
        } else {
            format!(
                "{INGEST_MARKER}{pipeline}\u{1}{epoch}\u{1}{table}\u{1}{}",
                encode_rows(rows)
            )
        };
        let tid = txn.tid;
        if let Err(e) = self.tm.log_data(tid, "ingest", &payload) {
            let _ = self.tm.abort(txn, &self.participants());
            return Err(e);
        }
        let receipt = self.tm.commit(txn, &self.participants())?;
        if dist_logged {
            if let TableSource::Distributed(dt) = &entry.source {
                dt.log_commit(tid, receipt.cid);
            }
        }
        self.ingest.note(pipeline, epoch);
        hana_obs::registry()
            .counter("hana_ingest_epochs_committed_total")
            .inc();
        hana_obs::registry()
            .counter("hana_ingest_rows_committed_total")
            .add(rows.len() as u64);
        Ok(IngestCommit::Committed { cid: receipt.cid })
    }

    /// The highest committed epoch of an ingest pipeline (`0` = none).
    /// Pipelines resume numbering from here after a restart.
    pub fn ingest_epoch(&self, pipeline: &str) -> u64 {
        self.ingest.last_epoch(pipeline)
    }

    /// Register the `CREATE STREAM SINK` driver (hana-ingest's runtime
    /// installs itself here). Replaces any previous driver.
    pub fn register_ingest_driver(&self, driver: Arc<dyn IngestDriver>) {
        *self.ingest_driver.write() = Some(driver);
    }

    fn ingest_driver(&self) -> Result<Arc<dyn IngestDriver>> {
        self.ingest_driver.read().clone().ok_or_else(|| {
            HanaError::Config(
                "no ingest driver installed; install hana-ingest's IngestRuntime first".into(),
            )
        })
    }

    /// Collect and persist optimizer statistics for `table`: per-column
    /// row/null/distinct counts, min/max and equi-depth histograms —
    /// per-partition for distributed tables, merged for the table-level
    /// view. Returns `false` (leaving heuristic estimation in force)
    /// for sources without locally collectable columns (row, hybrid,
    /// extended, virtual).
    pub fn refresh_statistics(&self, table: &str) -> Result<bool> {
        let entry = self.catalog.table(table)?;
        let key = table.to_ascii_lowercase();
        match &entry.source {
            TableSource::Column(t) => {
                let mut stats = t.read().collect_statistics();
                stats.table = key;
                self.catalog.put_statistics(table, stats, None);
                Ok(true)
            }
            TableSource::Distributed(dt) => {
                let parts: Vec<hana_columnar::TableStatistics> = dt
                    .nodes()
                    .iter()
                    .map(|n| n.table().read().collect_statistics())
                    .collect();
                let merged = hana_columnar::TableStatistics::merge(&key, &parts);
                self.catalog.put_statistics(table, merged, Some(parts));
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    // ---- ESP wiring ----

    /// A sink forwarding rows into a platform table (ESP use case 1).
    pub fn table_sink(self: &Arc<Self>, session: &Session, table: &str) -> Result<Sink> {
        self.security.check(session, Privilege::Stream)?;
        self.catalog.table(table)?; // must exist
        let weak = Arc::downgrade(self);
        let session = session.clone();
        Ok(Sink::Table {
            table: table.to_string(),
            writer: Arc::new(move |table, _schema, rows| {
                let platform = weak
                    .upgrade()
                    .ok_or_else(|| HanaError::Stream("platform shut down".into()))?;
                platform.load_rows(&session, table, rows)?;
                Ok(())
            }),
        })
    }

    /// Expose a live ESP window as a table function for HANA joins
    /// (ESP use case 3).
    pub fn expose_esp_window(&self, session: &Session, window: &str) -> Result<()> {
        self.security.check(session, Privilege::Stream)?;
        let schema = self.esp.window_schema(window)?;
        self.catalog.add_function(
            window,
            Arc::new(EspWindowFunction {
                esp: Arc::clone(&self.esp),
                window: window.to_string(),
                schema,
            }),
        );
        Ok(())
    }

    /// Push a table's current content to the ESP as reference data
    /// (ESP use case 2).
    pub fn push_reference_to_esp(
        &self,
        session: &Session,
        table: &str,
        reference_name: &str,
    ) -> Result<()> {
        self.security.check(session, Privilege::Stream)?;
        let rs = self.execute_sql(session, &format!("SELECT * FROM {table}"))?;
        self.esp.register_reference(reference_name, rs);
        Ok(())
    }

    // ---- aging (§3.1 "built-in aging mechanism") ----

    /// Move rows whose aging flag is set from the hot partition to the
    /// cold (extended) partition of a hybrid table. Returns moved rows.
    pub fn run_aging(&self, session: &Session, table: &str) -> Result<usize> {
        self.security.check(session, Privilege::Write)?;
        let entry = self.catalog.table(table)?;
        let TableSource::Hybrid {
            hot,
            cold_table,
            aging_column,
            ..
        } = &entry.source
        else {
            return Err(HanaError::Unsupported(format!(
                "'{table}' is not a hybrid table"
            )));
        };
        let cid = self.tm.current_snapshot().cid();
        let (victims, rows) = {
            let tr = hot.read();
            let col = tr.schema().require(aging_column)?;
            let hits = tr.scan(
                col,
                &hana_columnar::ColumnPredicate::Eq(Value::Bool(true)),
                cid,
            )?;
            let victims: Vec<usize> = hits.iter().collect();
            let rows = tr.collect_rows(&hits, &[]);
            (victims, rows)
        };
        if victims.is_empty() {
            return Ok(0);
        }
        let txn = self.tm.begin();
        self.iq.buffer_insert(txn.tid, cold_table, rows)?;
        for row_id in &victims {
            self.local_writes.buffer(
                txn.tid,
                LocalOp::ColumnDelete {
                    table: Arc::clone(hot),
                    row_id: *row_id,
                },
            );
        }
        self.tm
            .log_data(txn.tid, "hana", &format!("-- aging {table}"))?;
        self.tm.commit(txn, &self.participants())?;
        Ok(victims.len())
    }

    // ---- repository / lifecycle ----

    /// Store an artifact in the repository.
    pub fn put_artifact(
        &self,
        session: &Session,
        name: &str,
        kind: ArtifactKind,
        content: &str,
    ) -> Result<u64> {
        self.security.check(session, Privilege::Operate)?;
        Ok(self.repository.lock().put(name, kind, content))
    }

    /// Export artifacts as a delivery unit.
    pub fn export_delivery_unit(
        &self,
        session: &Session,
        unit: &str,
        names: &[&str],
    ) -> Result<DeliveryUnit> {
        self.security.check(session, Privilege::Operate)?;
        self.repository.lock().export(unit, names)
    }

    /// Import and **deploy** a delivery unit atomically: all SQL and CCL
    /// artifacts are validated before any is executed.
    pub fn deploy_delivery_unit(&self, session: &Session, du: &DeliveryUnit) -> Result<()> {
        self.security.check(session, Privilege::Operate)?;
        // Validate.
        for a in &du.artifacts {
            match a.kind {
                ArtifactKind::SqlScript => {
                    parse_script(&a.content)?;
                }
                ArtifactKind::CclScript => {
                    hana_esp::parse_ccl(&a.content)?;
                }
                _ => {}
            }
        }
        self.repository.lock().import(du)?;
        // Deploy.
        for a in &du.artifacts {
            match a.kind {
                ArtifactKind::SqlScript => {
                    self.execute_script(session, &a.content)?;
                }
                ArtifactKind::CclScript => {
                    self.esp.deploy(&a.content)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    // ---- backup / recovery ----

    /// Take a consistent logical backup across the in-memory store and
    /// the extended storage (one snapshot CID for both).
    pub fn backup(&self, session: &Session) -> Result<Backup> {
        self.security.check(session, Privilege::Operate)?;
        self.snapshot_backup()
    }

    /// Durably checkpoint the platform: capture a transactionally
    /// consistent snapshot of every table, write it as the WAL's
    /// checkpoint sidecar and prune sealed log segments, so the next
    /// recovery restores the snapshot and replays only the log suffix.
    /// Returns the snapshot commit ID. Errors if the platform's WAL is
    /// not a durable segment directory.
    pub fn write_checkpoint(&self) -> Result<u64> {
        let backup = self.snapshot_backup()?;
        let cid = backup.cid;
        let payload = crate::durability::encode_backup(&backup);
        self.tm.checkpoint(cid, &payload)?;
        Ok(cid)
    }

    /// Checkpoint barrier: merge-delta and bulk load call this. A no-op
    /// on non-durable platforms and during recovery replay; a checkpoint
    /// failure is surfaced as a warning, never as a failure of the
    /// statement that triggered it (the log alone still recovers).
    fn maybe_checkpoint(&self) {
        let wal = self.tm.wal();
        if !wal.is_durable_dir() || wal.passive() {
            return;
        }
        if let Err(e) = self.write_checkpoint() {
            hana_obs::warn(format!("checkpoint barrier failed: {e}"));
        }
    }

    fn snapshot_backup(&self) -> Result<Backup> {
        // Epoch fence (see `IngestLedger`): no ingest epoch can commit
        // between reading the snapshot cid and reading the ledger, so
        // the captured table rows and ledger agree on exactly which
        // epochs are inside the snapshot. Without this, a checkpoint
        // cut racing an epoch commit could snapshot the rows but not
        // the ledger entry (replay double-applies) or vice versa
        // (replay loses the epoch).
        let _fence = self.ingest.fence();
        let cid = self.tm.current_snapshot().cid();
        let mut entries = Vec::new();
        for (name, _) in self.catalog.list_tables() {
            let entry = self.catalog.table(&name)?;
            let schema = entry.source.schema();
            let (rows, cold_rows) = match &entry.source {
                TableSource::Column(t) => (t.read().snapshot_rows(cid), Vec::new()),
                TableSource::Row(t) => (t.read().scan(hana_txn::Snapshot::at(cid)), Vec::new()),
                TableSource::Extended { remote_table, .. } => {
                    (self.iq.scan(remote_table, &[], None, cid)?.rows, Vec::new())
                }
                TableSource::Hybrid {
                    hot, cold_table, ..
                } => (
                    hot.read().snapshot_rows(cid),
                    self.iq.scan(cold_table, &[], None, cid)?.rows,
                ),
                TableSource::Distributed(dt) => (dt.snapshot_rows(cid), Vec::new()),
                TableSource::Virtual { .. } => continue, // remote data
            };
            let indexes = match &entry.source {
                TableSource::Column(t) => t.read().index_defs(),
                TableSource::Hybrid { hot, .. } => hot.read().index_defs(),
                _ => Vec::new(),
            };
            entries.push(BackupEntry {
                name,
                kind: entry.kind.clone(),
                schema,
                rows,
                cold_rows,
                indexes,
            });
        }
        Ok(Backup {
            cid,
            entries,
            ingest_epochs: self.ingest.entries(),
        })
    }

    /// Restore a backup: captured tables are dropped, recreated and
    /// reloaded (in-memory and extended partitions together).
    pub fn restore(&self, session: &Session, backup: &Backup) -> Result<()> {
        self.security.check(session, Privilege::Operate)?;
        // Ledger first: any epoch captured in the snapshot must dedup
        // if the log suffix (or a producer) re-delivers it.
        for (pipeline, epoch) in &backup.ingest_epochs {
            self.ingest.note(pipeline, *epoch);
        }
        for e in &backup.entries {
            if self.catalog.has_table(&e.name) {
                self.drop_table(&e.name)?;
            }
            let specs: Vec<ColumnSpec> = e
                .schema
                .columns()
                .iter()
                .map(|c| ColumnSpec {
                    name: c.name.clone(),
                    type_name: c.data_type.sql_name().to_string(),
                    not_null: !c.nullable,
                    primary_key: false,
                })
                .collect();
            let (kind, extended) = match &e.kind {
                TableKindInfo::Column
                | TableKindInfo::Virtual
                | TableKindInfo::Distributed { .. } => (TableKind::Column, None),
                TableKindInfo::Row => (TableKind::Row, None),
                TableKindInfo::Extended => (
                    TableKind::Column,
                    Some(hana_sql::ExtendedSpec {
                        hybrid: false,
                        aging_column: None,
                    }),
                ),
                TableKindInfo::Hybrid { aging_column, .. } => (
                    TableKind::Column,
                    Some(hana_sql::ExtendedSpec {
                        hybrid: true,
                        aging_column: Some(aging_column.clone()),
                    }),
                ),
            };
            let partition = match &e.kind {
                TableKindInfo::Distributed { partition } => Some(partition.clone()),
                _ => None,
            };
            self.create_table(CreateTable {
                name: e.name.clone(),
                kind,
                columns: specs,
                extended,
                partition,
            })?;
            if !e.rows.is_empty() {
                self.load_rows(session, &e.name, &e.rows)?;
            }
            if !e.indexes.is_empty() {
                let entry = self.catalog.table(&e.name)?;
                for ix in &e.indexes {
                    match &entry.source {
                        TableSource::Column(t) => t.write().create_index(&ix.name, &ix.columns)?,
                        TableSource::Hybrid { hot, .. } => {
                            hot.write().create_index(&ix.name, &ix.columns)?
                        }
                        _ => {}
                    }
                }
            }
            if !e.cold_rows.is_empty() {
                // Straight into the cold partition.
                let entry = self.catalog.table(&e.name)?;
                if let TableSource::Hybrid { cold_table, .. } = &entry.source {
                    let txn = self.tm.begin();
                    self.iq
                        .buffer_insert(txn.tid, cold_table, e.cold_rows.clone())?;
                    self.tm.commit(txn, &self.participants())?;
                }
            }
        }
        Ok(())
    }

    /// Rebuild a platform by replaying the WAL at `path` up to
    /// `upto_cid` (`None` = everything) — logical point-in-time
    /// recovery. Returns the platform and the number of replayed
    /// statements.
    pub fn recover_replay(path: &Path, upto_cid: Option<u64>) -> Result<(HanaPlatform, usize)> {
        let wal = hana_txn::Wal::with_file(path)?;
        let report = match upto_cid {
            Some(cid) => wal.recover_to(cid),
            None => wal.recover(),
        };
        let committed: HashMap<u64, u64> = report.committed.iter().copied().collect();
        let platform = HanaPlatform::new_in_memory();
        let session = platform.connect("SYSTEM", "manager")?;
        let replayed = platform.replay_records(&session, &wal, &committed, 0)?;
        Ok((platform, replayed))
    }

    /// Re-apply the committed records of `wal` whose commit IDs are
    /// greater than `after_cid` — the "roll forward from a backup" half
    /// of point-in-time recovery: restore a [`Backup`], then replay the
    /// log after [`Backup::cid`]. When `wal` is the platform's own log
    /// the replay runs in passive mode so nothing is logged twice.
    pub fn replay_wal_after(
        &self,
        session: &Session,
        wal: &hana_txn::Wal,
        after_cid: u64,
    ) -> Result<usize> {
        self.security.check(session, Privilege::Operate)?;
        let report = wal.recover();
        let committed: HashMap<u64, u64> = report.committed.iter().copied().collect();
        let own = Arc::clone(self.tm.wal());
        let replaying_own_log = std::ptr::eq(own.as_ref(), wal as *const _);
        if replaying_own_log {
            own.set_passive(true);
        }
        let result = self.replay_records(session, wal, &committed, after_cid);
        if replaying_own_log {
            own.set_passive(false);
        }
        result
    }

    /// Shared redo loop: walk `wal`'s data records, keep those of
    /// committed transactions past `after_cid`, and re-apply each
    /// through the normal execution path (bulk loads through
    /// [`load_rows`](Self::load_rows), distributed-load markers through
    /// partition-log redo, everything else as SQL).
    fn replay_records(
        &self,
        session: &Session,
        wal: &hana_txn::Wal,
        committed: &HashMap<u64, u64>,
        after_cid: u64,
    ) -> Result<usize> {
        let mut replayed = 0usize;
        for rec in wal.records() {
            let hana_txn::LogRecord::Data { tid, payload, .. } = rec else {
                continue;
            };
            let Some(&cid) = committed.get(&tid) else {
                continue;
            };
            if cid <= after_cid {
                continue;
            }
            if let Some(table) = payload.strip_prefix(DIST_LOAD_MARKER) {
                // The coordinator log only holds a marker; the rows live
                // in the table's per-partition logs. Allocate a fresh
                // commit ID for the redone rows, then pull them in.
                let entry = self.catalog.table(table)?;
                let TableSource::Distributed(dt) = &entry.source else {
                    return Err(HanaError::Io(format!(
                        "DISTLOAD record for non-distributed table '{table}'"
                    )));
                };
                let txn = self.tm.begin();
                let receipt = self.tm.commit(txn, &[])?;
                dt.redo_txn(tid, receipt.cid)?;
                self.refresh_statistics(table)?;
            } else if let Some(rest) = payload.strip_prefix(INGEST_DIST_MARKER) {
                // Distributed ingest epoch: rows live in the partition
                // logs. Replay through the ledger so an epoch that is
                // already inside the restored checkpoint (or appears
                // twice in the log) applies exactly once.
                let (pipeline, epoch, table) = parse_ingest_header(rest)?;
                let _fence = self.ingest.fence();
                if epoch <= self.ingest.last_epoch(pipeline) {
                    hana_obs::registry()
                        .counter("hana_ingest_epochs_deduped_total")
                        .inc();
                    continue;
                }
                let entry = self.catalog.table(table)?;
                let TableSource::Distributed(dt) = &entry.source else {
                    return Err(HanaError::Io(format!(
                        "INGESTD record for non-distributed table '{table}'"
                    )));
                };
                let txn = self.tm.begin();
                let receipt = self.tm.commit(txn, &[])?;
                dt.redo_txn(tid, receipt.cid)?;
                self.ingest.note(pipeline, epoch);
                hana_obs::registry()
                    .counter("hana_ingest_epochs_replayed_total")
                    .inc();
            } else if let Some(rest) = payload.strip_prefix(INGEST_MARKER) {
                let (pipeline, epoch, rest) = {
                    let mut parts = rest.splitn(4, '\u{1}');
                    let (Some(p), Some(e), Some(t), Some(rows_text)) =
                        (parts.next(), parts.next(), parts.next(), parts.next())
                    else {
                        return Err(HanaError::Io("corrupt INGEST record".into()));
                    };
                    let epoch: u64 = e
                        .parse()
                        .map_err(|_| HanaError::Io("corrupt INGEST epoch".into()))?;
                    (p, epoch, (t, rows_text))
                };
                let (table, rows_text) = rest;
                let schema = self.catalog.table(table)?.source.schema();
                let rows: Vec<Row> = rows_text
                    .split(ROW_SEP)
                    .filter(|s| !s.is_empty())
                    .map(|line| parse_load_row(line, &schema))
                    .collect::<Result<_>>()?;
                // The normal commit path dedups against the ledger and,
                // with the WAL passive, logs nothing a second time.
                match self.commit_ingest_batch(session, pipeline, epoch, table, &rows)? {
                    IngestCommit::Committed { .. } => {
                        hana_obs::registry()
                            .counter("hana_ingest_epochs_replayed_total")
                            .inc();
                    }
                    IngestCommit::Deduplicated { .. } => continue,
                }
            } else if payload.starts_with("--") {
                continue; // structural marker, nothing to redo
            } else if let Some(rest) = payload.strip_prefix("LOAD\u{1}") {
                let (table, rows_text) = rest
                    .split_once('\u{1}')
                    .ok_or_else(|| HanaError::Io("corrupt LOAD record".into()))?;
                let schema = self.catalog.table(table)?.source.schema();
                let rows: Vec<Row> = rows_text
                    .split(ROW_SEP)
                    .filter(|s| !s.is_empty())
                    .map(|line| parse_load_row(line, &schema))
                    .collect::<Result<_>>()?;
                self.load_rows(session, table, &rows)?;
            } else {
                self.execute_sql(session, &payload)?;
            }
            replayed += 1;
        }
        Ok(replayed)
    }

    /// Landscape summary (single administration interface, §2).
    pub fn landscape_info(&self) -> String {
        let tables = self.catalog.list_tables();
        let (hits, misses) = self.catalog.sda().cache.stats();
        let (reads, writes) = self.iq.cache().file().stats.snapshot();
        format!(
            "HANA data platform: {} tables ({}), last commit id {}, \
             remote cache {}h/{}m, extended store I/O {}r/{}w pages, \
             ESP windows: {:?}",
            tables.len(),
            tables
                .iter()
                .map(|(n, k)| format!("{n}:{k}"))
                .collect::<Vec<_>>()
                .join(", "),
            self.tm.last_commit_id(),
            hits,
            misses,
            reads,
            writes,
            self.esp.window_names(),
        )
    }
}

/// Resolve matching row IDs of a column table at statement time.
fn matching_column_rows(
    table: &ColumnTable,
    filter: Option<&Expr>,
    cid: u64,
) -> Result<Vec<usize>> {
    let schema = table.schema().clone();
    let visible = table.visible(cid);
    let mut out = Vec::new();
    for row_id in visible.iter() {
        let row = Row::from_values((0..schema.len()).map(|c| table.value(row_id, c)));
        let keep = match filter {
            None => true,
            Some(f) => evaluate_predicate(f, &schema, &row)?,
        };
        if keep {
            out.push(row_id);
        }
    }
    Ok(out)
}

/// Translate the parsed `PARTITION BY` clause into a runtime spec.
fn partition_spec(p: &PartitionBy) -> hana_dist::PartitionSpec {
    match p {
        PartitionBy::Hash { column, partitions } => hana_dist::PartitionSpec::Hash {
            column: column.clone(),
            partitions: *partitions,
        },
        PartitionBy::Range {
            column,
            split_points,
        } => hana_dist::PartitionSpec::Range {
            column: column.clone(),
            split_points: split_points.clone(),
        },
    }
}

fn schema_from_specs(specs: &[ColumnSpec]) -> Result<Schema> {
    let cols: Vec<ColumnDef> = specs
        .iter()
        .map(|c| {
            Ok(ColumnDef {
                name: c.name.clone(),
                data_type: DataType::parse_sql(&c.type_name)?,
                nullable: !c.not_null && !c.primary_key,
            })
        })
        .collect::<Result<_>>()?;
    Schema::new(cols)
}

fn ok_result() -> ResultSet {
    ResultSet::empty(Schema::of(&[("result", DataType::Varchar)]))
}

fn count_result(n: usize) -> ResultSet {
    ResultSet::new(
        Schema::of(&[("rows_affected", DataType::BigInt)]),
        vec![Row::from_values([Value::Int(n as i64)])],
    )
}

/// Split the `pipeline \u{1} epoch \u{1} table` header of an INGESTD
/// payload.
fn parse_ingest_header(rest: &str) -> Result<(&str, u64, &str)> {
    let mut parts = rest.splitn(3, '\u{1}');
    let (Some(pipeline), Some(epoch), Some(table)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HanaError::Io("corrupt INGESTD record".into()));
    };
    let epoch = epoch
        .parse()
        .map_err(|_| HanaError::Io("corrupt INGESTD epoch".into()))?;
    Ok((pipeline, epoch, table))
}

/// Delimit rows for a WAL payload (inverse of [`parse_load_row`]).
fn encode_rows(rows: &[Row]) -> String {
    rows.iter()
        .map(|r| r.to_delimited('\u{1f}'))
        .collect::<Vec<_>>()
        .join(&ROW_SEP.to_string())
}

fn parse_load_row(line: &str, schema: &Schema) -> Result<Row> {
    let fields: Vec<&str> = line.split('\u{1f}').collect();
    if fields.len() != schema.len() {
        return Err(HanaError::Io("corrupt LOAD row".into()));
    }
    let mut vals = Vec::with_capacity(fields.len());
    for (f, c) in fields.iter().zip(schema.columns()) {
        vals.push(Value::parse_typed(f, c.data_type)?);
    }
    Ok(Row(vals))
}

/// Split a script on semicolons outside string literals, so each
/// statement's exact text reaches the recovery log.
fn split_sql_script(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '\'' => {
                in_str = !in_str;
                cur.push(c);
            }
            ';' if !in_str => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Table function proxy for SDA virtual functions.
struct VirtualFunctionProxy {
    catalog: std::sync::Weak<PlatformCatalog>,
    name: String,
    schema: Schema,
}

impl TableFunction for VirtualFunctionProxy {
    fn schema(&self) -> Schema {
        self.schema.clone()
    }

    fn invoke(&self, _args: &[Value]) -> Result<ResultSet> {
        let catalog = self
            .catalog
            .upgrade()
            .ok_or_else(|| HanaError::Catalog("platform shut down".into()))?;
        catalog.sda().invoke_virtual_function(&self.name)
    }
}

/// Table function exposing a live ESP window.
struct EspWindowFunction {
    esp: Arc<EspEngine>,
    window: String,
    schema: Schema,
}

impl TableFunction for EspWindowFunction {
    fn schema(&self) -> Schema {
        self.schema.clone()
    }

    fn invoke(&self, _args: &[Value]) -> Result<ResultSet> {
        self.esp.window_snapshot(&self.window)
    }
}
