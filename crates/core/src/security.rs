//! Single credential control for the whole platform.
//!
//! §2 "Value": "single control of access rights based on credentials
//! within the platform; for example, a query in the SAP HANA event
//! stream processor (ESP) may run with the same credentials as a
//! corresponding query in the SAP HANA core database system." One user
//! store and one privilege check guard SQL, CCL deployment, remote
//! sources and administration alike.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use hana_types::{HanaError, Result};

/// Platform privileges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// Full administration (implies everything).
    Admin,
    /// Read queries.
    Select,
    /// DML.
    Write,
    /// DDL (tables, remote sources, virtual objects).
    Ddl,
    /// Deploy/operate streams (ESP).
    Stream,
    /// Backup / recovery / repository transport.
    Operate,
}

/// An authenticated connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Session id.
    pub id: u64,
    /// User name (lower case).
    pub user: String,
}

struct UserRecord {
    /// Deliberately simple credential check (this is a simulation; no
    /// real secrets live here).
    password: String,
    privileges: HashSet<Privilege>,
}

/// The user store + authenticator.
pub struct SecurityManager {
    users: RwLock<HashMap<String, UserRecord>>,
    next_session: AtomicU64,
}

impl SecurityManager {
    /// A manager seeded with the `SYSTEM` administrator.
    pub fn new() -> SecurityManager {
        let mut users = HashMap::new();
        users.insert(
            "system".to_string(),
            UserRecord {
                password: "manager".into(),
                privileges: [Privilege::Admin].into_iter().collect(),
            },
        );
        SecurityManager {
            users: RwLock::new(users),
            next_session: AtomicU64::new(1),
        }
    }

    /// Authenticate and open a session.
    pub fn connect(&self, user: &str, password: &str) -> Result<Session> {
        let key = user.to_ascii_lowercase();
        let users = self.users.read();
        let rec = users
            .get(&key)
            .ok_or_else(|| HanaError::Security(format!("unknown user '{user}'")))?;
        if rec.password != password {
            return Err(HanaError::Security(format!(
                "invalid credentials for '{user}'"
            )));
        }
        Ok(Session {
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
            user: key,
        })
    }

    /// Create a user (admin only).
    pub fn create_user(
        &self,
        admin: &Session,
        name: &str,
        password: &str,
        privileges: &[Privilege],
    ) -> Result<()> {
        self.check(admin, Privilege::Admin)?;
        let key = name.to_ascii_lowercase();
        let mut users = self.users.write();
        if users.contains_key(&key) {
            return Err(HanaError::Security(format!("user '{name}' exists")));
        }
        users.insert(
            key,
            UserRecord {
                password: password.to_string(),
                privileges: privileges.iter().copied().collect(),
            },
        );
        Ok(())
    }

    /// Check that the session's user holds `privilege` (Admin implies
    /// all).
    pub fn check(&self, session: &Session, privilege: Privilege) -> Result<()> {
        let users = self.users.read();
        let rec = users
            .get(&session.user)
            .ok_or_else(|| HanaError::Security(format!("user '{}' gone", session.user)))?;
        if rec.privileges.contains(&Privilege::Admin) || rec.privileges.contains(&privilege) {
            Ok(())
        } else {
            Err(HanaError::Security(format!(
                "user '{}' lacks {privilege:?} privilege",
                session.user
            )))
        }
    }
}

impl Default for SecurityManager {
    fn default() -> Self {
        SecurityManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authentication_and_privileges() {
        let sm = SecurityManager::new();
        let admin = sm.connect("SYSTEM", "manager").unwrap();
        assert!(sm.connect("SYSTEM", "wrong").is_err());
        assert!(sm.connect("ghost", "x").is_err());

        sm.create_user(&admin, "analyst", "pw", &[Privilege::Select])
            .unwrap();
        let analyst = sm.connect("analyst", "pw").unwrap();
        assert!(sm.check(&analyst, Privilege::Select).is_ok());
        assert!(sm.check(&analyst, Privilege::Write).is_err());
        assert!(
            sm.check(&admin, Privilege::Stream).is_ok(),
            "admin implies all"
        );
        // Only admins create users.
        assert!(sm
            .create_user(&analyst, "x", "y", &[Privilege::Select])
            .is_err());
        assert!(sm.create_user(&admin, "analyst", "pw", &[]).is_err());
    }

    #[test]
    fn sessions_are_distinct() {
        let sm = SecurityManager::new();
        let a = sm.connect("SYSTEM", "manager").unwrap();
        let b = sm.connect("SYSTEM", "manager").unwrap();
        assert_ne!(a.id, b.id);
    }
}
