//! Exactly-once streaming-ingest support: the durable epoch ledger and
//! the driver interface the SQL layer dispatches `CREATE STREAM SINK`
//! to.
//!
//! The platform core owns the *transactional* half of streaming ingest
//! (`HanaPlatform::commit_ingest_batch`): each pipeline commits batches
//! under a monotone epoch number, and the ledger — kept in memory,
//! re-derived from WAL replay, and snapshotted into every checkpoint —
//! remembers the highest committed epoch per pipeline. A batch whose
//! epoch is not greater than the ledger entry is a duplicate delivery
//! (producer retry after a lost ack, or log replay after recovery) and
//! is acknowledged without being applied. The *pumping* half (batching,
//! backpressure, retries) lives in the `hana-ingest` crate, which
//! registers itself here as the [`IngestDriver`].

use std::collections::HashMap;

use parking_lot::{Mutex, MutexGuard};

use hana_types::Result;

use crate::security::Session;

/// Outcome of [`commit_ingest_batch`](crate::HanaPlatform::commit_ingest_batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestCommit {
    /// The epoch was applied and committed at this commit ID.
    Committed {
        /// Commit ID of the batch's transaction.
        cid: u64,
    },
    /// The epoch had already been committed (duplicate delivery);
    /// nothing was applied.
    Deduplicated {
        /// The pipeline's highest committed epoch.
        last_epoch: u64,
    },
}

/// What `CREATE STREAM SINK` / `DROP STREAM SINK` dispatch to. The
/// platform core cannot depend on `hana-ingest` (which depends on it),
/// so the runtime registers itself behind this trait via
/// [`register_ingest_driver`](crate::HanaPlatform::register_ingest_driver).
pub trait IngestDriver: Send + Sync {
    /// Create and start a named pipeline delivering ESP `source` output
    /// into `table`.
    fn create_sink(&self, session: &Session, name: &str, source: &str, table: &str) -> Result<()>;

    /// Stop and detach a pipeline; `Ok(false)` when no such pipeline.
    fn drop_sink(&self, name: &str) -> Result<bool>;
}

/// Pipeline name → highest committed epoch, plus the epoch fence that
/// makes checkpoint cuts atomic with respect to in-flight epochs.
pub(crate) struct IngestLedger {
    epochs: Mutex<HashMap<String, u64>>,
    /// Held across an epoch commit (apply + ledger bump) and across the
    /// checkpoint snapshot cut, so a checkpoint can never capture table
    /// rows of an epoch without its ledger entry (or vice versa) —
    /// which would make replay lose or double-apply that epoch.
    fence: Mutex<()>,
}

impl IngestLedger {
    pub(crate) fn new() -> IngestLedger {
        IngestLedger {
            epochs: Mutex::new(HashMap::new()),
            fence: Mutex::new(()),
        }
    }

    /// Acquire the epoch fence.
    pub(crate) fn fence(&self) -> MutexGuard<'_, ()> {
        self.fence.lock()
    }

    /// Highest committed epoch of a pipeline (`0` = none yet).
    pub(crate) fn last_epoch(&self, pipeline: &str) -> u64 {
        self.epochs
            .lock()
            .get(&pipeline.to_ascii_lowercase())
            .copied()
            .unwrap_or(0)
    }

    /// Record `epoch` as committed (monotone: keeps the max).
    pub(crate) fn note(&self, pipeline: &str, epoch: u64) {
        let mut epochs = self.epochs.lock();
        let slot = epochs.entry(pipeline.to_ascii_lowercase()).or_insert(0);
        *slot = (*slot).max(epoch);
    }

    /// Sorted `(pipeline, last_epoch)` pairs for checkpointing.
    pub(crate) fn entries(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .epochs
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_is_monotone_and_case_insensitive() {
        let ledger = IngestLedger::new();
        assert_eq!(ledger.last_epoch("p"), 0);
        ledger.note("P", 3);
        ledger.note("p", 1); // stale note cannot regress the ledger
        assert_eq!(ledger.last_epoch("p"), 3);
        ledger.note("q", 7);
        assert_eq!(ledger.entries(), vec![("p".into(), 3), ("q".into(), 7)]);
    }
}
