//! Row-ID bitmaps, the currency of scans.
//!
//! Column scans produce bitmaps over row positions; conjunctive predicates
//! intersect them, disjunctive predicates union them. The same structure
//! backs the FP-style bitmap indexes of the extended storage crate.

/// A fixed-universe bitset over row IDs `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowIdBitmap {
    len: usize,
    words: Vec<u64>,
}

impl RowIdBitmap {
    /// An all-zeros bitmap over `len` rows.
    pub fn new(len: usize) -> RowIdBitmap {
        RowIdBitmap {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// An all-ones bitmap over `len` rows.
    pub fn all_set(len: usize) -> RowIdBitmap {
        let mut b = RowIdBitmap {
            len,
            words: vec![u64::MAX; len.div_ceil(64)],
        };
        b.clear_tail();
        b
    }

    fn clear_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// The universe size (number of row positions).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set the bit for `row`.
    pub fn set(&mut self, row: usize) {
        debug_assert!(row < self.len);
        self.words[row / 64] |= 1 << (row % 64);
    }

    /// Clear the bit for `row`.
    pub fn unset(&mut self, row: usize) {
        debug_assert!(row < self.len);
        self.words[row / 64] &= !(1 << (row % 64));
    }

    /// Set bits for `rows` in `[start, end)`.
    pub fn set_range(&mut self, start: usize, end: usize) {
        for row in start..end.min(self.len) {
            self.set(row);
        }
    }

    /// Test the bit for `row`.
    pub fn get(&self, row: usize) -> bool {
        row < self.len && self.words[row / 64] & (1 << (row % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place intersection. Panics if universes differ.
    pub fn and(&mut self, other: &RowIdBitmap) {
        assert_eq!(self.len, other.len, "bitmap universes differ");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union. Panics if universes differ.
    pub fn or(&mut self, other: &RowIdBitmap) {
        assert_eq!(self.len, other.len, "bitmap universes differ");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place complement (within the universe).
    pub fn not(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Iterate over set row IDs in ascending order.
    pub fn iter(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            len: self.len,
        }
    }

    /// Grow the universe to `new_len`, new bits unset.
    pub fn grow(&mut self, new_len: usize) {
        assert!(new_len >= self.len);
        self.len = new_len;
        self.words.resize(new_len.div_ceil(64), 0);
    }

    /// Heap footprint in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Iterator over the set bits of a [`RowIdBitmap`].
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    len: usize,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let row = self.word_idx * 64 + bit;
                return (row < self.len).then_some(row);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl FromIterator<usize> for RowIdBitmap {
    /// Collect row IDs; the universe becomes `max + 1`.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let rows: Vec<usize> = iter.into_iter().collect();
        let len = rows.iter().max().map_or(0, |m| m + 1);
        let mut b = RowIdBitmap::new(len);
        for r in rows {
            b.set(r);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = RowIdBitmap::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count(), 3);
        b.unset(64);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn iter_yields_ascending() {
        let mut b = RowIdBitmap::new(200);
        for r in [3usize, 64, 65, 127, 199] {
            b.set(r);
        }
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![3, 64, 65, 127, 199]);
    }

    #[test]
    fn boolean_algebra() {
        let mut a = RowIdBitmap::new(100);
        a.set_range(0, 50);
        let mut b = RowIdBitmap::new(100);
        b.set_range(25, 75);
        let mut i = a.clone();
        i.and(&b);
        assert_eq!(i.count(), 25);
        let mut u = a.clone();
        u.or(&b);
        assert_eq!(u.count(), 75);
        let mut n = a.clone();
        n.not();
        assert_eq!(n.count(), 50);
        assert!(n.get(99) && !n.get(0));
    }

    #[test]
    fn all_set_respects_tail() {
        let b = RowIdBitmap::all_set(70);
        assert_eq!(b.count(), 70);
        assert!(!b.get(70));
        let mut n = b.clone();
        n.not();
        assert_eq!(n.count(), 0);
    }

    #[test]
    fn grow_keeps_existing_bits() {
        let mut b = RowIdBitmap::new(10);
        b.set(9);
        b.grow(100);
        assert!(b.get(9));
        assert!(!b.get(99));
        assert_eq!(b.len(), 100);
        b.set(99);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn from_iterator() {
        let b: RowIdBitmap = [5usize, 1, 3].into_iter().collect();
        assert_eq!(b.len(), 6);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }
}
