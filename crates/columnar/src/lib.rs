//! # hana-columnar
//!
//! The in-memory column store of the platform — the "SAP HANA core
//! in-memory engine" of §3.1: dictionary-encoded columns with a
//! read-optimized **main** fragment (ordered dictionary + compressed
//! value IDs) and a write-optimized **delta** fragment, merged on demand;
//! predicate evaluation in dictionary space; MVCC row versions; and the
//! native time-series tables of Figure 2.
//!
//! ```
//! use hana_columnar::{ColumnTable, ColumnPredicate};
//! use hana_types::{Schema, DataType, Value};
//!
//! let mut t = ColumnTable::new("sensors", Schema::of(&[
//!     ("equip_id", DataType::Varchar),
//!     ("pressure", DataType::Double),
//! ]));
//! t.insert(&[Value::from("P-100"), Value::Double(97.5)], 1).unwrap();
//! t.insert(&[Value::from("P-200"), Value::Double(42.0)], 1).unwrap();
//! let hits = t.scan(1, &ColumnPredicate::Gt(Value::Double(90.0)), 1).unwrap();
//! assert_eq!(hits.count(), 1);
//! ```

mod bitmap;
mod bitpack;
mod codec;
mod column;
mod dictionary;
mod index;
mod predicate;
mod stats;
mod table;
mod timeseries;

pub use bitmap::{RowIdBitmap, SetBits};
pub use bitpack::{width_for, BitPackedVec, BLOCK_ROWS};
pub use codec::{BlockSynopsis, VidCodec, VidRepr};
pub use column::{plain_columnar_bytes, row_layout_bytes, DeltaColumn, MainColumn};
pub use dictionary::{DeltaDictionary, OrderedDictionary, NULL_VID};
pub use index::{IndexDef, SecondaryIndex};
pub use predicate::{ColumnPredicate, MatchKind, VidMatch};
pub use stats::{ColumnStats, StatsBucket, TableStatistics, DEFAULT_STATS_BUCKETS};
pub use table::{ColumnTable, RowVersions, NEVER};
pub use timeseries::{Compensation, CompressedDoubles, TimeSeriesTable};
