//! Column-level predicates and their dictionary-space compilation.
//!
//! Scans never compare row values directly: a predicate is first compiled
//! against the column's dictionary into a [`VidMatch`] — a verdict per
//! *distinct value* — and the (much longer) value-ID vector is then
//! filtered with cheap integer tests. This is the standard trick of
//! dictionary-encoded column stores and what makes scan cost proportional
//! to data width, not value width.

use hana_types::Value;

use crate::dictionary::{DeltaDictionary, OrderedDictionary, NULL_VID};

/// A predicate over a single column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnPredicate {
    /// `col = v`
    Eq(Value),
    /// `col <> v`
    Ne(Value),
    /// `col < v`
    Lt(Value),
    /// `col <= v`
    Le(Value),
    /// `col > v`
    Gt(Value),
    /// `col >= v`
    Ge(Value),
    /// `col BETWEEN lo AND hi` (inclusive)
    Between(Value, Value),
    /// `col IN (…)`
    InList(Vec<Value>),
    /// `col LIKE pattern`
    Like(String),
    /// `col IS NULL`
    IsNull,
    /// `col IS NOT NULL`
    IsNotNull,
}

impl ColumnPredicate {
    /// Evaluate against a concrete value with SQL semantics (comparisons
    /// with NULL are not true).
    pub fn matches(&self, v: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            ColumnPredicate::IsNull => v.is_null(),
            ColumnPredicate::IsNotNull => !v.is_null(),
            ColumnPredicate::Eq(x) => v.sql_cmp(x) == Some(Equal),
            ColumnPredicate::Ne(x) => matches!(v.sql_cmp(x), Some(Less | Greater)),
            ColumnPredicate::Lt(x) => v.sql_cmp(x) == Some(Less),
            ColumnPredicate::Le(x) => matches!(v.sql_cmp(x), Some(Less | Equal)),
            ColumnPredicate::Gt(x) => v.sql_cmp(x) == Some(Greater),
            ColumnPredicate::Ge(x) => matches!(v.sql_cmp(x), Some(Greater | Equal)),
            ColumnPredicate::Between(lo, hi) => {
                matches!(v.sql_cmp(lo), Some(Greater | Equal))
                    && matches!(v.sql_cmp(hi), Some(Less | Equal))
            }
            ColumnPredicate::InList(list) => {
                !v.is_null() && list.iter().any(|x| v.sql_cmp(x) == Some(Equal))
            }
            ColumnPredicate::Like(p) => v.sql_like(p).unwrap_or(false),
        }
    }

    /// Compile against the **ordered** dictionary of a main fragment,
    /// using binary search for point/range shapes.
    pub fn compile_ordered(&self, dict: &OrderedDictionary) -> VidMatch {
        match self {
            ColumnPredicate::IsNull => VidMatch {
                null_matches: true,
                kind: MatchKind::Empty,
            },
            ColumnPredicate::IsNotNull => VidMatch::range(1, dict.len() as u32),
            ColumnPredicate::Eq(v) => match dict.lookup(v) {
                Some(vid) if vid != NULL_VID => VidMatch::range(vid, vid),
                _ => VidMatch::empty(),
            },
            ColumnPredicate::Lt(v) => Self::from_bounds(dict, None, Some((v, false))),
            ColumnPredicate::Le(v) => Self::from_bounds(dict, None, Some((v, true))),
            ColumnPredicate::Gt(v) => Self::from_bounds(dict, Some((v, false)), None),
            ColumnPredicate::Ge(v) => Self::from_bounds(dict, Some((v, true)), None),
            ColumnPredicate::Between(lo, hi) => {
                Self::from_bounds(dict, Some((lo, true)), Some((hi, true)))
            }
            // General shapes fall back to a per-distinct-value mask.
            _ => self.mask_over(dict.values()),
        }
    }

    /// Compile against the unsorted dictionary of a delta fragment.
    pub fn compile_delta(&self, dict: &DeltaDictionary) -> VidMatch {
        match self {
            ColumnPredicate::IsNull => VidMatch {
                null_matches: true,
                kind: MatchKind::Empty,
            },
            ColumnPredicate::Eq(v) => match dict.lookup(v) {
                Some(vid) if vid != NULL_VID => VidMatch::range(vid, vid),
                _ => VidMatch::empty(),
            },
            _ => self.mask_over(dict.values()),
        }
    }

    fn from_bounds(
        dict: &OrderedDictionary,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> VidMatch {
        match dict.vid_range(lo, hi) {
            Some((a, b)) => VidMatch::range(a, b),
            None => VidMatch::empty(),
        }
    }

    fn mask_over(&self, values: &[Value]) -> VidMatch {
        let mask: Vec<bool> = values.iter().map(|v| self.matches(v)).collect();
        VidMatch {
            null_matches: false,
            kind: MatchKind::Mask(mask),
        }
    }

    /// Estimated selectivity used before real histograms exist.
    pub fn default_selectivity(&self) -> f64 {
        match self {
            ColumnPredicate::Eq(_) => 0.05,
            ColumnPredicate::Ne(_) | ColumnPredicate::IsNotNull => 0.95,
            ColumnPredicate::IsNull => 0.02,
            ColumnPredicate::Like(_) => 0.1,
            ColumnPredicate::InList(l) => (0.05 * l.len() as f64).min(1.0),
            ColumnPredicate::Between(_, _) => 0.25,
            _ => 0.3,
        }
    }
}

/// The verdict of a predicate per value ID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VidMatch {
    /// Whether `NULL_VID` matches (only for `IS NULL`).
    pub null_matches: bool,
    /// Verdict for the non-null value IDs.
    pub kind: MatchKind,
}

/// How non-null value IDs match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchKind {
    /// No non-null value matches.
    Empty,
    /// Value IDs in `[lo, hi]` (inclusive, 1-based) match.
    Range(u32, u32),
    /// `mask[vid - 1]` says whether `vid` matches.
    Mask(Vec<bool>),
}

impl VidMatch {
    /// No value matches at all.
    pub fn empty() -> VidMatch {
        VidMatch {
            null_matches: false,
            kind: MatchKind::Empty,
        }
    }

    /// Value IDs in `[lo, hi]` match; empty ranges collapse to `Empty`.
    pub fn range(lo: u32, hi: u32) -> VidMatch {
        VidMatch {
            null_matches: false,
            kind: if lo > hi || hi == 0 {
                MatchKind::Empty
            } else {
                MatchKind::Range(lo, hi)
            },
        }
    }

    /// Test a value ID.
    #[inline]
    pub fn test(&self, vid: u32) -> bool {
        if vid == NULL_VID {
            return self.null_matches;
        }
        match &self.kind {
            MatchKind::Empty => false,
            MatchKind::Range(lo, hi) => (*lo..=*hi).contains(&vid),
            MatchKind::Mask(m) => m.get(vid as usize - 1).copied().unwrap_or(false),
        }
    }

    /// Whether nothing can match (lets scans skip fragments entirely).
    pub fn is_empty(&self) -> bool {
        !self.null_matches && matches!(self.kind, MatchKind::Empty)
    }

    /// Whether any row of a block summarized by `[min_vid, max_vid]`
    /// (non-null value IDs only; `min_vid > max_vid` means the block is
    /// all-null) plus a null-presence flag *could* match.
    ///
    /// This is the skip-scan test against a block synopsis: a `false`
    /// verdict proves the block contributes no hits, so the scan never
    /// unpacks it. Conservative in the other direction — `true` only
    /// promises the block must be scanned.
    #[inline]
    pub fn may_match_block(&self, min_vid: u32, max_vid: u32, has_null: bool) -> bool {
        if has_null && self.null_matches {
            return true;
        }
        if min_vid > max_vid {
            // Only nulls (or nothing) in the block.
            return false;
        }
        match &self.kind {
            MatchKind::Empty => false,
            MatchKind::Range(lo, hi) => *lo <= max_vid && min_vid <= *hi,
            MatchKind::Mask(m) => {
                let lo = (min_vid.max(1) - 1) as usize;
                let hi = (max_vid as usize).min(m.len());
                lo < hi && m[lo..hi].iter().any(|&b| b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> OrderedDictionary {
        let vals: Vec<Value> = [10i64, 20, 30, 40].iter().map(|&v| Value::Int(v)).collect();
        OrderedDictionary::build(&vals)
    }

    #[test]
    fn matches_scalar_semantics() {
        let p = ColumnPredicate::Between(Value::Int(2), Value::Int(4));
        assert!(p.matches(&Value::Int(3)));
        assert!(p.matches(&Value::Int(2)));
        assert!(!p.matches(&Value::Int(5)));
        assert!(!p.matches(&Value::Null));
        assert!(!ColumnPredicate::Ne(Value::Int(1)).matches(&Value::Null));
        assert!(ColumnPredicate::IsNull.matches(&Value::Null));
    }

    #[test]
    fn compile_eq_to_single_vid() {
        let m = ColumnPredicate::Eq(Value::Int(30)).compile_ordered(&dict());
        assert!(m.test(3));
        assert!(!m.test(2) && !m.test(4) && !m.test(NULL_VID));
        let gone = ColumnPredicate::Eq(Value::Int(99)).compile_ordered(&dict());
        assert!(gone.is_empty());
    }

    #[test]
    fn compile_range_predicates() {
        let d = dict();
        let m = ColumnPredicate::Gt(Value::Int(20)).compile_ordered(&d);
        assert!(!m.test(2) && m.test(3) && m.test(4));
        let m = ColumnPredicate::Le(Value::Int(20)).compile_ordered(&d);
        assert!(m.test(1) && m.test(2) && !m.test(3));
        let m = ColumnPredicate::Between(Value::Int(15), Value::Int(35)).compile_ordered(&d);
        assert!(!m.test(1) && m.test(2) && m.test(3) && !m.test(4));
    }

    #[test]
    fn compile_in_and_like_to_mask() {
        let d = OrderedDictionary::build(&[
            Value::from("AIR"),
            Value::from("MAIL"),
            Value::from("SHIP"),
        ]);
        let m = ColumnPredicate::InList(vec![Value::from("AIR"), Value::from("SHIP")])
            .compile_ordered(&d);
        assert!(m.test(1) && !m.test(2) && m.test(3));
        let m = ColumnPredicate::Like("%AI%".into()).compile_ordered(&d);
        assert!(m.test(1) && m.test(2) && !m.test(3));
    }

    #[test]
    fn null_handling_in_vid_space() {
        let m = ColumnPredicate::IsNull.compile_ordered(&dict());
        assert!(m.test(NULL_VID));
        assert!(!m.test(1));
        assert!(!m.is_empty());
        let m = ColumnPredicate::IsNotNull.compile_ordered(&dict());
        assert!(!m.test(NULL_VID));
        assert!(m.test(1) && m.test(4));
    }

    #[test]
    fn may_match_block_prunes_correctly() {
        let range = VidMatch::range(10, 20);
        assert!(range.may_match_block(5, 12, false));
        assert!(range.may_match_block(20, 99, false));
        assert!(!range.may_match_block(1, 9, false));
        assert!(!range.may_match_block(21, 99, false));
        // All-null block never matches a pure range…
        assert!(!range.may_match_block(u32::MAX, 0, true));
        // …but matches IS NULL.
        let isnull = ColumnPredicate::IsNull.compile_ordered(&dict());
        assert!(isnull.may_match_block(u32::MAX, 0, true));
        assert!(!isnull.may_match_block(1, 4, false));

        let mask = VidMatch {
            null_matches: false,
            kind: MatchKind::Mask(vec![false, true, false]),
        };
        assert!(mask.may_match_block(1, 2, false));
        assert!(!mask.may_match_block(3, 3, false));
        assert!(!mask.may_match_block(4, 9, false));
        assert!(!VidMatch::empty().may_match_block(1, 100, true));
    }

    #[test]
    fn delta_compilation() {
        let mut d = DeltaDictionary::new();
        for v in ["b", "a", "c"] {
            d.insert_or_get(&Value::from(v));
        }
        let m = ColumnPredicate::Eq(Value::from("a")).compile_delta(&d);
        assert!(!m.test(1) && m.test(2) && !m.test(3));
        let m = ColumnPredicate::Ge(Value::from("b")).compile_delta(&d);
        assert!(m.test(1) && !m.test(2) && m.test(3));
    }
}
