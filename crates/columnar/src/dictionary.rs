//! Dictionary encoding.
//!
//! The main store uses an **ordered** dictionary (values sorted, value ID =
//! rank), which lets range predicates be answered with two binary searches
//! and is the basis of the q-optimal histogram construction the paper's
//! optimizer cites ([16] in the paper). The write-optimized delta store
//! uses an insertion-ordered dictionary with a hash index instead, because
//! inserts must not reshuffle existing value IDs.
//!
//! Value ID `0` is reserved for SQL NULL in both dictionaries; real values
//! get IDs starting at 1.

use std::collections::HashMap;

use hana_types::Value;

/// Reserved value ID for SQL NULL.
pub const NULL_VID: u32 = 0;

/// Sorted, deduplicated dictionary of the main store.
#[derive(Debug, Clone, Default)]
pub struct OrderedDictionary {
    /// Distinct non-null values in ascending order; `values[i]` has
    /// value ID `i + 1`.
    values: Vec<Value>,
}

impl OrderedDictionary {
    /// Build from arbitrary values (nulls are skipped, duplicates folded).
    pub fn build<'a, I: IntoIterator<Item = &'a Value>>(values: I) -> OrderedDictionary {
        let mut vals: Vec<Value> = values
            .into_iter()
            .filter(|v| !v.is_null())
            .cloned()
            .collect();
        vals.sort_unstable();
        vals.dedup();
        OrderedDictionary { values: vals }
    }

    /// Number of distinct non-null values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value ID for `v` (1-based), `NULL_VID` for NULL, `None` if absent.
    pub fn lookup(&self, v: &Value) -> Option<u32> {
        if v.is_null() {
            return Some(NULL_VID);
        }
        self.values.binary_search(v).ok().map(|i| (i + 1) as u32)
    }

    /// The value for a (non-NULL) value ID.
    pub fn value(&self, vid: u32) -> &Value {
        &self.values[(vid - 1) as usize]
    }

    /// Decode any value ID, mapping `NULL_VID` to `Value::Null`.
    pub fn decode(&self, vid: u32) -> Value {
        if vid == NULL_VID {
            Value::Null
        } else {
            self.value(vid).clone()
        }
    }

    /// Inclusive value-ID range of all dictionary entries in
    /// `[lo, hi]` (by value). Returns `None` when the range is empty.
    ///
    /// `lo`/`hi` of `None` mean unbounded on that side.
    pub fn vid_range(
        &self,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Option<(u32, u32)> {
        if self.values.is_empty() {
            return None;
        }
        let start = match lo {
            None => 0,
            Some((v, inclusive)) => match self.values.binary_search(v) {
                Ok(i) if inclusive => i,
                Ok(i) => i + 1,
                Err(i) => i,
            },
        };
        let end = match hi {
            None => self.values.len(),
            Some((v, inclusive)) => match self.values.binary_search(v) {
                Ok(i) if inclusive => i + 1,
                Ok(i) => i,
                Err(i) => i,
            },
        };
        (start < end).then(|| (start as u32 + 1, end as u32))
    }

    /// All distinct values in ascending order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Smallest value, if any.
    pub fn min(&self) -> Option<&Value> {
        self.values.first()
    }

    /// Largest value, if any.
    pub fn max(&self) -> Option<&Value> {
        self.values.last()
    }

    /// Approximate heap footprint in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.values.iter().map(Value::storage_bytes).sum::<usize>()
            + self.values.len() * std::mem::size_of::<Value>()
    }
}

/// Insertion-ordered dictionary of the delta store.
#[derive(Debug, Clone, Default)]
pub struct DeltaDictionary {
    values: Vec<Value>,
    index: HashMap<Value, u32>,
}

impl DeltaDictionary {
    /// An empty delta dictionary.
    pub fn new() -> DeltaDictionary {
        DeltaDictionary::default()
    }

    /// Number of distinct non-null values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Return the value ID for `v`, inserting it if new. NULL maps to
    /// `NULL_VID` without insertion.
    pub fn insert_or_get(&mut self, v: &Value) -> u32 {
        if v.is_null() {
            return NULL_VID;
        }
        if let Some(&vid) = self.index.get(v) {
            return vid;
        }
        self.values.push(v.clone());
        let vid = self.values.len() as u32;
        self.index.insert(v.clone(), vid);
        vid
    }

    /// Value ID for `v` without inserting.
    pub fn lookup(&self, v: &Value) -> Option<u32> {
        if v.is_null() {
            return Some(NULL_VID);
        }
        self.index.get(v).copied()
    }

    /// The value for a (non-NULL) value ID.
    pub fn value(&self, vid: u32) -> &Value {
        &self.values[(vid - 1) as usize]
    }

    /// Decode any value ID, mapping `NULL_VID` to `Value::Null`.
    pub fn decode(&self, vid: u32) -> Value {
        if vid == NULL_VID {
            Value::Null
        } else {
            self.value(vid).clone()
        }
    }

    /// Distinct values in insertion order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Approximate heap footprint in bytes.
    pub fn payload_bytes(&self) -> usize {
        // Values are stored twice (vector + hash index).
        2 * (self.values.iter().map(Value::storage_bytes).sum::<usize>()
            + self.values.len() * std::mem::size_of::<Value>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(vals: &[i64]) -> OrderedDictionary {
        let values: Vec<Value> = vals.iter().map(|&v| Value::Int(v)).collect();
        OrderedDictionary::build(&values)
    }

    #[test]
    fn ordered_dictionary_sorts_and_dedups() {
        let d = dict(&[5, 1, 3, 3, 1]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.lookup(&Value::Int(1)), Some(1));
        assert_eq!(d.lookup(&Value::Int(3)), Some(2));
        assert_eq!(d.lookup(&Value::Int(5)), Some(3));
        assert_eq!(d.lookup(&Value::Int(2)), None);
        assert_eq!(d.lookup(&Value::Null), Some(NULL_VID));
        assert_eq!(d.decode(0), Value::Null);
        assert_eq!(d.decode(2), Value::Int(3));
        assert_eq!(d.min(), Some(&Value::Int(1)));
        assert_eq!(d.max(), Some(&Value::Int(5)));
    }

    #[test]
    fn vid_range_bounds() {
        let d = dict(&[10, 20, 30, 40]);
        // [20, 30] inclusive -> vids 2..=3
        assert_eq!(
            d.vid_range(Some((&Value::Int(20), true)), Some((&Value::Int(30), true))),
            Some((2, 3))
        );
        // (20, 40) exclusive -> vid 3 only
        assert_eq!(
            d.vid_range(
                Some((&Value::Int(20), false)),
                Some((&Value::Int(40), false))
            ),
            Some((3, 3))
        );
        // values between dictionary entries
        assert_eq!(
            d.vid_range(Some((&Value::Int(15), true)), Some((&Value::Int(35), true))),
            Some((2, 3))
        );
        // empty range
        assert_eq!(
            d.vid_range(Some((&Value::Int(31), true)), Some((&Value::Int(39), true))),
            None
        );
        // unbounded
        assert_eq!(d.vid_range(None, None), Some((1, 4)));
        assert_eq!(
            d.vid_range(Some((&Value::Int(30), true)), None),
            Some((3, 4))
        );
    }

    #[test]
    fn delta_dictionary_preserves_insertion_order() {
        let mut d = DeltaDictionary::new();
        assert_eq!(d.insert_or_get(&Value::from("b")), 1);
        assert_eq!(d.insert_or_get(&Value::from("a")), 2);
        assert_eq!(d.insert_or_get(&Value::from("b")), 1);
        assert_eq!(d.insert_or_get(&Value::Null), NULL_VID);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(1), &Value::from("b"));
        assert_eq!(d.lookup(&Value::from("a")), Some(2));
        assert_eq!(d.lookup(&Value::from("z")), None);
    }
}
