//! Compression codecs for main-store value-ID vectors.
//!
//! After a delta merge, each column fragment's value IDs are re-encoded
//! with the cheapest of three codecs (the paper's engine calls this
//! "optimized internal representation", Figure 2):
//!
//! * **Plain** — fixed-width bit packing (always applicable),
//! * **RLE** — run-length encoding, wins on sorted or temporally
//!   clustered data,
//! * **Sparse** — dominant value elided, exceptions stored as sorted
//!   `(position, vid)` pairs; wins on heavily skewed columns (e.g. the
//!   aging flag of §3.1, which is almost always "hot").

use crate::bitmap::RowIdBitmap;
use crate::bitpack::{width_for, BitPackedVec};
use crate::predicate::VidMatch;

/// An immutable, compressed vector of value IDs.
#[derive(Debug, Clone)]
pub enum VidCodec {
    /// Fixed-width bit-packed IDs.
    Plain(BitPackedVec),
    /// Run-length encoded IDs with prefix sums for random access.
    Rle {
        /// Distinct run value IDs.
        run_vids: Vec<u32>,
        /// `run_ends[i]` = exclusive end row of run `i` (ascending).
        run_ends: Vec<u32>,
    },
    /// All rows carry `dominant` except the listed exceptions.
    Sparse {
        /// The elided, most frequent value ID.
        dominant: u32,
        /// Sorted row positions of exceptions.
        positions: Vec<u32>,
        /// Value IDs of the exceptions, parallel to `positions`.
        vids: BitPackedVec,
        /// Total row count.
        len: usize,
    },
}

impl VidCodec {
    /// Encode `vids`, picking the codec with the smallest payload.
    pub fn encode(vids: &[u32]) -> VidCodec {
        let plain = VidCodec::Plain(BitPackedVec::from_slice(
            &vids.iter().map(|&v| v as u64).collect::<Vec<_>>(),
        ));
        if vids.is_empty() {
            return plain;
        }

        // Candidate: RLE.
        let mut run_vids = Vec::new();
        let mut run_ends = Vec::new();
        for (i, &v) in vids.iter().enumerate() {
            if run_vids.last() == Some(&v) {
                *run_ends.last_mut().expect("runs in sync") = i as u32 + 1;
            } else {
                run_vids.push(v);
                run_ends.push(i as u32 + 1);
            }
        }
        let rle = VidCodec::Rle { run_vids, run_ends };

        // Candidate: Sparse around the most frequent vid.
        let mut freq = std::collections::HashMap::new();
        for &v in vids {
            *freq.entry(v).or_insert(0usize) += 1;
        }
        let (&dominant, _) = freq
            .iter()
            .max_by_key(|&(_, c)| *c)
            .expect("non-empty input");
        let positions: Vec<u32> = vids
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != dominant)
            .map(|(i, _)| i as u32)
            .collect();
        let exc_vids = BitPackedVec::from_slice(
            &positions
                .iter()
                .map(|&p| vids[p as usize] as u64)
                .collect::<Vec<_>>(),
        );
        let sparse = VidCodec::Sparse {
            dominant,
            positions,
            vids: exc_vids,
            len: vids.len(),
        };

        [plain, rle, sparse]
            .into_iter()
            .min_by_key(VidCodec::payload_bytes)
            .expect("three candidates")
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            VidCodec::Plain(v) => v.len(),
            VidCodec::Rle { run_ends, .. } => run_ends.last().map_or(0, |&e| e as usize),
            VidCodec::Sparse { len, .. } => *len,
        }
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value ID at `row`.
    pub fn get(&self, row: usize) -> u32 {
        match self {
            VidCodec::Plain(v) => v.get(row) as u32,
            VidCodec::Rle { run_vids, run_ends } => {
                let run = run_ends.partition_point(|&e| e as usize <= row);
                run_vids[run]
            }
            VidCodec::Sparse {
                dominant,
                positions,
                vids,
                ..
            } => match positions.binary_search(&(row as u32)) {
                Ok(i) => vids.get(i) as u32,
                Err(_) => *dominant,
            },
        }
    }

    /// Visit every `(row, vid)` pair in order.
    pub fn for_each(&self, mut f: impl FnMut(usize, u32)) {
        match self {
            VidCodec::Plain(v) => {
                for (row, vid) in v.iter().enumerate() {
                    f(row, vid as u32);
                }
            }
            VidCodec::Rle { run_vids, run_ends } => {
                let mut start = 0u32;
                for (&vid, &end) in run_vids.iter().zip(run_ends) {
                    for row in start..end {
                        f(row as usize, vid);
                    }
                    start = end;
                }
            }
            VidCodec::Sparse {
                dominant,
                positions,
                vids,
                len,
            } => {
                let mut next_exc = 0usize;
                for row in 0..*len {
                    if next_exc < positions.len() && positions[next_exc] as usize == row {
                        f(row, vids.get(next_exc) as u32);
                        next_exc += 1;
                    } else {
                        f(row, *dominant);
                    }
                }
            }
        }
    }

    /// Set bits in `out` (at `offset + row`) for rows whose vid matches.
    ///
    /// RLE skips whole runs; Sparse tests the dominant value once.
    pub fn scan_into(&self, m: &VidMatch, out: &mut RowIdBitmap, offset: usize) {
        if m.is_empty() {
            return;
        }
        match self {
            VidCodec::Rle { run_vids, run_ends } => {
                let mut start = 0u32;
                for (&vid, &end) in run_vids.iter().zip(run_ends) {
                    if m.test(vid) {
                        out.set_range(offset + start as usize, offset + end as usize);
                    }
                    start = end;
                }
            }
            VidCodec::Sparse {
                dominant,
                positions,
                vids,
                len,
            } => {
                if m.test(*dominant) {
                    out.set_range(offset, offset + *len);
                    for (i, &p) in positions.iter().enumerate() {
                        if !m.test(vids.get(i) as u32) {
                            out.unset(offset + p as usize);
                        }
                    }
                } else {
                    for (i, &p) in positions.iter().enumerate() {
                        if m.test(vids.get(i) as u32) {
                            out.set(offset + p as usize);
                        }
                    }
                }
            }
            VidCodec::Plain(_) => {
                self.for_each(|row, vid| {
                    if m.test(vid) {
                        out.set(offset + row);
                    }
                });
            }
        }
    }

    /// Range-restricted [`VidCodec::scan_into`]: set bits at
    /// `offset + row` for matching rows with `start <= row < end`.
    ///
    /// Equivalent to a full scan masked to `[start, end)`; used by
    /// morsel-parallel scans where each task owns one disjoint range.
    /// RLE seeks to the first overlapping run; Sparse binary-searches
    /// the exception positions.
    pub fn scan_range_into(
        &self,
        m: &VidMatch,
        out: &mut RowIdBitmap,
        offset: usize,
        start: usize,
        end: usize,
    ) {
        let end = end.min(self.len());
        if m.is_empty() || start >= end {
            return;
        }
        match self {
            VidCodec::Rle { run_vids, run_ends } => {
                let first = run_ends.partition_point(|&e| e as usize <= start);
                let mut run_start = if first == 0 {
                    0
                } else {
                    run_ends[first - 1] as usize
                };
                for (&vid, &run_end) in run_vids[first..].iter().zip(&run_ends[first..]) {
                    let run_end = run_end as usize;
                    if run_start >= end {
                        break;
                    }
                    if m.test(vid) {
                        out.set_range(offset + run_start.max(start), offset + run_end.min(end));
                    }
                    run_start = run_end;
                }
            }
            VidCodec::Sparse {
                dominant,
                positions,
                vids,
                ..
            } => {
                let lo = positions.partition_point(|&p| (p as usize) < start);
                let hi = positions.partition_point(|&p| (p as usize) < end);
                if m.test(*dominant) {
                    out.set_range(offset + start, offset + end);
                    for (i, &p) in positions[lo..hi].iter().enumerate() {
                        if !m.test(vids.get(lo + i) as u32) {
                            out.unset(offset + p as usize);
                        }
                    }
                } else {
                    for (i, &p) in positions[lo..hi].iter().enumerate() {
                        if m.test(vids.get(lo + i) as u32) {
                            out.set(offset + p as usize);
                        }
                    }
                }
            }
            VidCodec::Plain(v) => {
                for row in start..end {
                    if m.test(v.get(row) as u32) {
                        out.set(offset + row);
                    }
                }
            }
        }
    }

    /// Compressed payload size in bytes (what codec selection minimizes).
    pub fn payload_bytes(&self) -> usize {
        match self {
            VidCodec::Plain(v) => v.payload_bytes(),
            VidCodec::Rle { run_vids, run_ends } => {
                // Runs could themselves be bit-packed; approximate with the
                // width actually needed rather than 4 bytes each.
                let vid_bits = width_for(run_vids.iter().copied().max().unwrap_or(0) as u64);
                let end_bits = width_for(run_ends.last().copied().unwrap_or(0) as u64);
                (run_vids.len() * vid_bits as usize + run_ends.len() * end_bits as usize)
                    .div_ceil(8)
            }
            VidCodec::Sparse {
                positions,
                vids,
                len,
                ..
            } => {
                let pos_bits = width_for(*len as u64);
                (positions.len() * pos_bits as usize).div_ceil(8) + vids.payload_bytes() + 4
            }
        }
    }

    /// Codec name for EXPLAIN / stats output.
    pub fn name(&self) -> &'static str {
        match self {
            VidCodec::Plain(_) => "plain",
            VidCodec::Rle { .. } => "rle",
            VidCodec::Sparse { .. } => "sparse",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::VidMatch;

    fn check_round_trip(vids: &[u32]) -> VidCodec {
        let c = VidCodec::encode(vids);
        assert_eq!(c.len(), vids.len());
        for (i, &v) in vids.iter().enumerate() {
            assert_eq!(c.get(i), v, "codec {} idx {i}", c.name());
        }
        let mut seen = Vec::new();
        c.for_each(|row, vid| seen.push((row, vid)));
        assert_eq!(seen, vids.iter().copied().enumerate().collect::<Vec<_>>());
        c
    }

    #[test]
    fn rle_wins_on_runs() {
        let mut vids = vec![1u32; 1000];
        vids.extend(vec![2u32; 1000]);
        vids.extend(vec![3u32; 1000]);
        let c = check_round_trip(&vids);
        assert_eq!(c.name(), "rle");
    }

    #[test]
    fn sparse_wins_on_skew() {
        let mut vids = vec![7u32; 5000];
        // Scatter exceptions so runs are broken and RLE cannot win.
        for i in (0..5000).step_by(97) {
            vids[i] = (i % 5) as u32 + 1;
        }
        let c = check_round_trip(&vids);
        assert_eq!(c.name(), "sparse");
    }

    #[test]
    fn plain_wins_on_high_entropy() {
        let vids: Vec<u32> = (0..4096u64)
            .map(|i| ((i * 2_654_435_761) % 4093) as u32)
            .collect();
        let c = check_round_trip(&vids);
        assert_eq!(c.name(), "plain");
    }

    #[test]
    fn empty_input() {
        let c = VidCodec::encode(&[]);
        assert!(c.is_empty());
        let mut out = RowIdBitmap::new(0);
        c.scan_into(&VidMatch::range(1, 10), &mut out, 0);
        assert_eq!(out.count(), 0);
    }

    #[test]
    fn scan_all_codecs_agree() {
        let mut vids = vec![3u32; 300];
        for i in (0..300).step_by(7) {
            vids[i] = (i % 6) as u32;
        }
        let m = VidMatch::range(2, 4);
        let expected: Vec<usize> = vids
            .iter()
            .enumerate()
            .filter(|&(_, &v)| (2..=4).contains(&v))
            .map(|(i, _)| i)
            .collect();
        // Force each codec and compare scan output.
        let plain = VidCodec::Plain(BitPackedVec::from_slice(
            &vids.iter().map(|&v| v as u64).collect::<Vec<_>>(),
        ));
        for codec in [plain, VidCodec::encode(&vids)] {
            let mut out = RowIdBitmap::new(vids.len());
            codec.scan_into(&m, &mut out, 0);
            assert_eq!(out.iter().collect::<Vec<_>>(), expected, "{}", codec.name());
        }
    }

    #[test]
    fn scan_with_offset() {
        let vids = vec![1u32, 2, 1, 2];
        let c = VidCodec::encode(&vids);
        let mut out = RowIdBitmap::new(10);
        c.scan_into(&VidMatch::range(2, 2), &mut out, 5);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![6, 8]);
    }
}
