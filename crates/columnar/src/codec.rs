//! Compression codecs for main-store value-ID vectors.
//!
//! After a delta merge, each column fragment's value IDs are re-encoded
//! with the cheapest of three codecs (the paper's engine calls this
//! "optimized internal representation", Figure 2):
//!
//! * **Plain** — fixed-width bit packing (always applicable),
//! * **RLE** — run-length encoding, wins on sorted or temporally
//!   clustered data,
//! * **Sparse** — dominant value elided, exceptions stored as sorted
//!   `(position, vid)` pairs; wins on heavily skewed columns (e.g. the
//!   aging flag of §3.1, which is almost always "hot").
//!
//! Scans over the encoded vector run **blockwise**: every fragment
//! carries a per-[`BLOCK_ROWS`]-row [`BlockSynopsis`] (min/max non-null
//! vid + null presence) built at encode time. `scan_into` consults the
//! synopsis before touching a block, skipping it outright when the
//! [`VidMatch`] cannot intersect, and unpacks surviving Plain blocks in
//! bulk with [`BitPackedVec::unpack_range`] instead of per-element
//! `get`. Blocks scanned vs. skipped are exported as the
//! `hana_columnar_blocks_{scanned,skipped}_total` counters.

use crate::bitmap::RowIdBitmap;
use crate::bitpack::{width_for, BitPackedVec, BLOCK_ROWS};
use crate::predicate::{MatchKind, VidMatch};

/// Zone map over one [`BLOCK_ROWS`]-row block of a value-ID vector.
///
/// `min_vid`/`max_vid` cover **non-null** vids only; an all-null (or
/// empty) block has `min_vid == u32::MAX` and `max_vid == 0`, which a
/// range test can never satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSynopsis {
    /// Smallest non-null vid in the block (`u32::MAX` if none).
    pub min_vid: u32,
    /// Largest non-null vid in the block (`0` if none).
    pub max_vid: u32,
    /// Whether the block contains any `NULL_VID` row.
    pub has_null: bool,
}

impl BlockSynopsis {
    fn empty() -> BlockSynopsis {
        BlockSynopsis {
            min_vid: u32::MAX,
            max_vid: 0,
            has_null: false,
        }
    }

    #[inline]
    fn observe(&mut self, vid: u32) {
        if vid == 0 {
            self.has_null = true;
        } else {
            self.min_vid = self.min_vid.min(vid);
            self.max_vid = self.max_vid.max(vid);
        }
    }

    /// Fold another synopsis in (used to summarize a whole fragment).
    fn merge(&mut self, other: &BlockSynopsis) {
        self.min_vid = self.min_vid.min(other.min_vid);
        self.max_vid = self.max_vid.max(other.max_vid);
        self.has_null |= other.has_null;
    }
}

fn build_synopses(vids: &[u32]) -> Vec<BlockSynopsis> {
    vids.chunks(BLOCK_ROWS)
        .map(|chunk| {
            let mut s = BlockSynopsis::empty();
            for &v in chunk {
                s.observe(v);
            }
            s
        })
        .collect()
}

/// The physical representation behind a [`VidCodec`].
#[derive(Debug, Clone)]
pub enum VidRepr {
    /// Fixed-width bit-packed IDs.
    Plain(BitPackedVec),
    /// Run-length encoded IDs with prefix sums for random access.
    Rle {
        /// Distinct run value IDs.
        run_vids: Vec<u32>,
        /// `run_ends[i]` = exclusive end row of run `i` (ascending).
        run_ends: Vec<u32>,
    },
    /// All rows carry `dominant` except the listed exceptions.
    Sparse {
        /// The elided, most frequent value ID.
        dominant: u32,
        /// Sorted row positions of exceptions.
        positions: Vec<u32>,
        /// Value IDs of the exceptions, parallel to `positions`.
        vids: BitPackedVec,
        /// Total row count.
        len: usize,
    },
}

/// An immutable, compressed vector of value IDs plus its per-block
/// zone maps.
#[derive(Debug, Clone)]
pub struct VidCodec {
    repr: VidRepr,
    blocks: Vec<BlockSynopsis>,
}

impl VidCodec {
    /// Encode `vids`, picking the representation with the smallest
    /// payload and building the block synopses in the same pass.
    pub fn encode(vids: &[u32]) -> VidCodec {
        let blocks = build_synopses(vids);
        let plain = VidRepr::Plain(BitPackedVec::from_slice(
            &vids.iter().map(|&v| v as u64).collect::<Vec<_>>(),
        ));
        if vids.is_empty() {
            return VidCodec {
                repr: plain,
                blocks,
            };
        }

        // Candidate: RLE.
        let mut run_vids = Vec::new();
        let mut run_ends = Vec::new();
        for (i, &v) in vids.iter().enumerate() {
            if run_vids.last() == Some(&v) {
                *run_ends.last_mut().expect("runs in sync") = i as u32 + 1;
            } else {
                run_vids.push(v);
                run_ends.push(i as u32 + 1);
            }
        }
        let rle = VidRepr::Rle { run_vids, run_ends };

        // Candidate: Sparse around the most frequent vid.
        let mut freq = std::collections::HashMap::new();
        for &v in vids {
            *freq.entry(v).or_insert(0usize) += 1;
        }
        let (&dominant, _) = freq
            .iter()
            .max_by_key(|&(_, c)| *c)
            .expect("non-empty input");
        let positions: Vec<u32> = vids
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != dominant)
            .map(|(i, _)| i as u32)
            .collect();
        let exc_vids = BitPackedVec::from_slice(
            &positions
                .iter()
                .map(|&p| vids[p as usize] as u64)
                .collect::<Vec<_>>(),
        );
        let sparse = VidRepr::Sparse {
            dominant,
            positions,
            vids: exc_vids,
            len: vids.len(),
        };

        let repr = [plain, rle, sparse]
            .into_iter()
            .min_by_key(VidRepr::payload_bytes)
            .expect("three candidates");
        VidCodec { repr, blocks }
    }

    /// Wrap an existing bit-packed vector as a Plain fragment,
    /// computing its block synopses.
    pub fn from_plain(v: BitPackedVec) -> VidCodec {
        let mut blocks = Vec::with_capacity(v.len().div_ceil(BLOCK_ROWS));
        let mut buf = vec![0u64; BLOCK_ROWS];
        let mut start = 0;
        while start < v.len() {
            let rows = (v.len() - start).min(BLOCK_ROWS);
            v.unpack_range(start, &mut buf[..rows]);
            let mut s = BlockSynopsis::empty();
            for &x in &buf[..rows] {
                s.observe(x as u32);
            }
            blocks.push(s);
            start += rows;
        }
        VidCodec {
            repr: VidRepr::Plain(v),
            blocks,
        }
    }

    /// The physical representation.
    pub fn repr(&self) -> &VidRepr {
        &self.repr
    }

    /// Per-[`BLOCK_ROWS`]-row zone maps, in block order.
    pub fn block_synopses(&self) -> &[BlockSynopsis] {
        &self.blocks
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.repr {
            VidRepr::Plain(v) => v.len(),
            VidRepr::Rle { run_ends, .. } => run_ends.last().map_or(0, |&e| e as usize),
            VidRepr::Sparse { len, .. } => *len,
        }
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value ID at `row`.
    pub fn get(&self, row: usize) -> u32 {
        match &self.repr {
            VidRepr::Plain(v) => v.get(row) as u32,
            VidRepr::Rle { run_vids, run_ends } => {
                let run = run_ends.partition_point(|&e| e as usize <= row);
                run_vids[run]
            }
            VidRepr::Sparse {
                dominant,
                positions,
                vids,
                ..
            } => match positions.binary_search(&(row as u32)) {
                Ok(i) => vids.get(i) as u32,
                Err(_) => *dominant,
            },
        }
    }

    /// Bulk-decode block `block` (rows `block * BLOCK_ROWS ..`) into
    /// `out`, returning the number of rows written (a full
    /// `BLOCK_ROWS` except possibly for the last block).
    ///
    /// This is the shared decode kernel behind vectorized scans and the
    /// executor's late-materializing group-by: downstream code operates
    /// on a dense `u32` vid block instead of calling [`get`](Self::get)
    /// per row.
    pub fn unpack_block(&self, block: usize, out: &mut [u32; BLOCK_ROWS]) -> usize {
        let start = block * BLOCK_ROWS;
        let len = self.len();
        assert!(
            start < len || (start == 0 && len == 0),
            "block {block} out of bounds"
        );
        let rows = (len - start).min(BLOCK_ROWS);
        match &self.repr {
            VidRepr::Plain(v) => {
                let mut buf = [0u64; BLOCK_ROWS];
                v.unpack_range(start, &mut buf[..rows]);
                for (slot, &x) in out[..rows].iter_mut().zip(&buf[..rows]) {
                    *slot = x as u32;
                }
            }
            VidRepr::Rle { run_vids, run_ends } => {
                let end = start + rows;
                let mut run = run_ends.partition_point(|&e| e as usize <= start);
                let mut row = start;
                while row < end {
                    let run_end = (run_ends[run] as usize).min(end);
                    out[row - start..run_end - start].fill(run_vids[run]);
                    row = run_end;
                    run += 1;
                }
            }
            VidRepr::Sparse {
                dominant,
                positions,
                vids,
                ..
            } => {
                out[..rows].fill(*dominant);
                let end = start + rows;
                let lo = positions.partition_point(|&p| (p as usize) < start);
                let hi = positions.partition_point(|&p| (p as usize) < end);
                for (i, &p) in positions[lo..hi].iter().enumerate() {
                    out[p as usize - start] = vids.get(lo + i) as u32;
                }
            }
        }
        rows
    }

    /// Visit every `(row, vid)` pair in order.
    pub fn for_each(&self, mut f: impl FnMut(usize, u32)) {
        match &self.repr {
            VidRepr::Plain(_) => {
                let mut buf = [0u32; BLOCK_ROWS];
                for block in 0..self.blocks.len() {
                    let rows = self.unpack_block(block, &mut buf);
                    let base = block * BLOCK_ROWS;
                    for (i, &vid) in buf[..rows].iter().enumerate() {
                        f(base + i, vid);
                    }
                }
            }
            VidRepr::Rle { run_vids, run_ends } => {
                let mut start = 0u32;
                for (&vid, &end) in run_vids.iter().zip(run_ends) {
                    for row in start..end {
                        f(row as usize, vid);
                    }
                    start = end;
                }
            }
            VidRepr::Sparse {
                dominant,
                positions,
                vids,
                len,
            } => {
                let mut next_exc = 0usize;
                for row in 0..*len {
                    if next_exc < positions.len() && positions[next_exc] as usize == row {
                        f(row, vids.get(next_exc) as u32);
                        next_exc += 1;
                    } else {
                        f(row, *dominant);
                    }
                }
            }
        }
    }

    /// Set bits in `out` (at `offset + row`) for rows whose vid matches.
    ///
    /// Plain fragments scan blockwise: the block synopsis is consulted
    /// first (skipping blocks the match cannot intersect), survivors are
    /// bulk-unpacked, and range matches run as a single unsigned
    /// compare per row. RLE skips whole runs; Sparse tests the dominant
    /// value once. RLE/Sparse fragments whose folded synopsis cannot
    /// intersect are skipped without touching the payload at all.
    pub fn scan_into(&self, m: &VidMatch, out: &mut RowIdBitmap, offset: usize) {
        self.scan_range_into(m, out, offset, 0, self.len());
    }

    /// Range-restricted [`VidCodec::scan_into`]: set bits at
    /// `offset + row` for matching rows with `start <= row < end`.
    ///
    /// Equivalent to a full scan masked to `[start, end)`; used by
    /// morsel-parallel scans where each task owns one disjoint range.
    /// RLE seeks to the first overlapping run; Sparse binary-searches
    /// the exception positions; Plain runs the blockwise skip-scan over
    /// the covered blocks.
    pub fn scan_range_into(
        &self,
        m: &VidMatch,
        out: &mut RowIdBitmap,
        offset: usize,
        start: usize,
        end: usize,
    ) {
        let end = end.min(self.len());
        if m.is_empty() || start >= end {
            return;
        }
        match &self.repr {
            VidRepr::Plain(v) => self.scan_plain_blocks(v, m, out, offset, start, end),
            VidRepr::Rle { run_vids, run_ends } => {
                if self.fragment_pruned(m, start, end) {
                    return;
                }
                let first = run_ends.partition_point(|&e| e as usize <= start);
                let mut run_start = if first == 0 {
                    0
                } else {
                    run_ends[first - 1] as usize
                };
                for (&vid, &run_end) in run_vids[first..].iter().zip(&run_ends[first..]) {
                    let run_end = run_end as usize;
                    if run_start >= end {
                        break;
                    }
                    if m.test(vid) {
                        out.set_range(offset + run_start.max(start), offset + run_end.min(end));
                    }
                    run_start = run_end;
                }
            }
            VidRepr::Sparse {
                dominant,
                positions,
                vids,
                ..
            } => {
                if self.fragment_pruned(m, start, end) {
                    return;
                }
                let lo = positions.partition_point(|&p| (p as usize) < start);
                let hi = positions.partition_point(|&p| (p as usize) < end);
                if m.test(*dominant) {
                    out.set_range(offset + start, offset + end);
                    for (i, &p) in positions[lo..hi].iter().enumerate() {
                        if !m.test(vids.get(lo + i) as u32) {
                            out.unset(offset + p as usize);
                        }
                    }
                } else {
                    for (i, &p) in positions[lo..hi].iter().enumerate() {
                        if m.test(vids.get(lo + i) as u32) {
                            out.set(offset + p as usize);
                        }
                    }
                }
            }
        }
    }

    /// Synopsis check for non-Plain reprs over `[start, end)`: returns
    /// `true` (and books the skipped blocks) when no covered block can
    /// intersect `m`.
    fn fragment_pruned(&self, m: &VidMatch, start: usize, end: usize) -> bool {
        let first = start / BLOCK_ROWS;
        let last = end.div_ceil(BLOCK_ROWS);
        let mut folded = BlockSynopsis::empty();
        for s in &self.blocks[first..last] {
            folded.merge(s);
        }
        if m.may_match_block(folded.min_vid, folded.max_vid, folded.has_null) {
            return false;
        }
        record_block_counts(0, (last - first) as u64);
        true
    }

    /// Blockwise skip-scan over a Plain fragment.
    fn scan_plain_blocks(
        &self,
        v: &BitPackedVec,
        m: &VidMatch,
        out: &mut RowIdBitmap,
        offset: usize,
        start: usize,
        end: usize,
    ) {
        let mut scanned = 0u64;
        let mut skipped = 0u64;
        let mut buf = [0u64; BLOCK_ROWS];
        let first = start / BLOCK_ROWS;
        let last = end.div_ceil(BLOCK_ROWS);
        for block in first..last {
            let b_start = (block * BLOCK_ROWS).max(start);
            let b_end = ((block + 1) * BLOCK_ROWS).min(end);
            let syn = &self.blocks[block];
            if !m.may_match_block(syn.min_vid, syn.max_vid, syn.has_null) {
                skipped += 1;
                continue;
            }
            scanned += 1;
            let rows = b_end - b_start;
            v.unpack_range(b_start, &mut buf[..rows]);
            match &m.kind {
                // Hot path: inclusive vid range, nulls excluded, folds
                // to one unsigned compare per row (NULL_VID wraps to
                // u64::MAX - lo and never matches).
                MatchKind::Range(lo, hi) if !m.null_matches => {
                    let span = (*hi - *lo) as u64;
                    let lo = *lo as u64;
                    for (i, &vid) in buf[..rows].iter().enumerate() {
                        if vid.wrapping_sub(lo) <= span {
                            out.set(offset + b_start + i);
                        }
                    }
                }
                _ => {
                    for (i, &vid) in buf[..rows].iter().enumerate() {
                        if m.test(vid as u32) {
                            out.set(offset + b_start + i);
                        }
                    }
                }
            }
        }
        record_block_counts(scanned, skipped);
    }

    /// Scalar reference scan: per-row [`get`](Self::get) + per-row
    /// [`VidMatch::test`], no block skipping. Kept as the correctness
    /// oracle for proptests and the baseline for the kernel benches.
    pub fn scan_into_scalar(&self, m: &VidMatch, out: &mut RowIdBitmap, offset: usize) {
        self.scan_range_into_scalar(m, out, offset, 0, self.len());
    }

    /// Scalar reference for [`VidCodec::scan_range_into`].
    pub fn scan_range_into_scalar(
        &self,
        m: &VidMatch,
        out: &mut RowIdBitmap,
        offset: usize,
        start: usize,
        end: usize,
    ) {
        let end = end.min(self.len());
        for row in start..end {
            if m.test(self.get(row)) {
                out.set(offset + row);
            }
        }
    }

    /// Compressed payload size in bytes (what codec selection minimizes).
    pub fn payload_bytes(&self) -> usize {
        self.repr.payload_bytes()
    }

    /// Codec name for EXPLAIN / stats output.
    pub fn name(&self) -> &'static str {
        match &self.repr {
            VidRepr::Plain(_) => "plain",
            VidRepr::Rle { .. } => "rle",
            VidRepr::Sparse { .. } => "sparse",
        }
    }
}

impl VidRepr {
    fn payload_bytes(&self) -> usize {
        match self {
            VidRepr::Plain(v) => v.payload_bytes(),
            VidRepr::Rle { run_vids, run_ends } => {
                // Runs could themselves be bit-packed; approximate with the
                // width actually needed rather than 4 bytes each.
                let vid_bits = width_for(run_vids.iter().copied().max().unwrap_or(0) as u64);
                let end_bits = width_for(run_ends.last().copied().unwrap_or(0) as u64);
                (run_vids.len() * vid_bits as usize + run_ends.len() * end_bits as usize)
                    .div_ceil(8)
            }
            VidRepr::Sparse {
                positions,
                vids,
                len,
                ..
            } => {
                let pos_bits = width_for(*len as u64);
                (positions.len() * pos_bits as usize).div_ceil(8) + vids.payload_bytes() + 4
            }
        }
    }
}

fn record_block_counts(scanned: u64, skipped: u64) {
    if scanned + skipped == 0 {
        return;
    }
    let obs = hana_obs::registry();
    if scanned > 0 {
        obs.counter("hana_columnar_blocks_scanned_total")
            .add(scanned);
    }
    if skipped > 0 {
        obs.counter("hana_columnar_blocks_skipped_total")
            .add(skipped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::VidMatch;

    fn check_round_trip(vids: &[u32]) -> VidCodec {
        let c = VidCodec::encode(vids);
        assert_eq!(c.len(), vids.len());
        for (i, &v) in vids.iter().enumerate() {
            assert_eq!(c.get(i), v, "codec {} idx {i}", c.name());
        }
        let mut seen = Vec::new();
        c.for_each(|row, vid| seen.push((row, vid)));
        assert_eq!(seen, vids.iter().copied().enumerate().collect::<Vec<_>>());
        c
    }

    #[test]
    fn rle_wins_on_runs() {
        let mut vids = vec![1u32; 1000];
        vids.extend(vec![2u32; 1000]);
        vids.extend(vec![3u32; 1000]);
        let c = check_round_trip(&vids);
        assert_eq!(c.name(), "rle");
    }

    #[test]
    fn sparse_wins_on_skew() {
        let mut vids = vec![7u32; 5000];
        // Scatter exceptions so runs are broken and RLE cannot win.
        for i in (0..5000).step_by(97) {
            vids[i] = (i % 5) as u32 + 1;
        }
        let c = check_round_trip(&vids);
        assert_eq!(c.name(), "sparse");
    }

    #[test]
    fn plain_wins_on_high_entropy() {
        let vids: Vec<u32> = (0..4096u64)
            .map(|i| ((i * 2_654_435_761) % 4093) as u32)
            .collect();
        let c = check_round_trip(&vids);
        assert_eq!(c.name(), "plain");
    }

    #[test]
    fn empty_input() {
        let c = VidCodec::encode(&[]);
        assert!(c.is_empty());
        assert!(c.block_synopses().is_empty());
        let mut out = RowIdBitmap::new(0);
        c.scan_into(&VidMatch::range(1, 10), &mut out, 0);
        assert_eq!(out.count(), 0);
    }

    #[test]
    fn scan_all_codecs_agree() {
        let mut vids = vec![3u32; 300];
        for i in (0..300).step_by(7) {
            vids[i] = (i % 6) as u32;
        }
        let m = VidMatch::range(2, 4);
        let expected: Vec<usize> = vids
            .iter()
            .enumerate()
            .filter(|&(_, &v)| (2..=4).contains(&v))
            .map(|(i, _)| i)
            .collect();
        // Force each codec and compare scan output.
        let plain = VidCodec::from_plain(BitPackedVec::from_slice(
            &vids.iter().map(|&v| v as u64).collect::<Vec<_>>(),
        ));
        for codec in [plain, VidCodec::encode(&vids)] {
            let mut out = RowIdBitmap::new(vids.len());
            codec.scan_into(&m, &mut out, 0);
            assert_eq!(out.iter().collect::<Vec<_>>(), expected, "{}", codec.name());
            let mut scalar = RowIdBitmap::new(vids.len());
            codec.scan_into_scalar(&m, &mut scalar, 0);
            assert_eq!(scalar.iter().collect::<Vec<_>>(), expected);
        }
    }

    #[test]
    fn scan_with_offset() {
        let vids = vec![1u32, 2, 1, 2];
        let c = VidCodec::encode(&vids);
        let mut out = RowIdBitmap::new(10);
        c.scan_into(&VidMatch::range(2, 2), &mut out, 5);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![6, 8]);
    }

    #[test]
    fn synopses_cover_blocks_and_nulls() {
        // Three blocks: [1..], [banded 100..], all-null tail.
        let mut vids: Vec<u32> = (0..BLOCK_ROWS as u32).map(|i| i % 50 + 1).collect();
        vids.extend((0..BLOCK_ROWS as u32).map(|i| i % 50 + 100));
        vids.extend(std::iter::repeat_n(0, 10));
        let c = VidCodec::encode(&vids);
        let syn = c.block_synopses();
        assert_eq!(syn.len(), 3);
        assert_eq!(
            (syn[0].min_vid, syn[0].max_vid, syn[0].has_null),
            (1, 50, false)
        );
        assert_eq!(
            (syn[1].min_vid, syn[1].max_vid, syn[1].has_null),
            (100, 149, false)
        );
        assert_eq!(
            (syn[2].min_vid, syn[2].max_vid, syn[2].has_null),
            (u32::MAX, 0, true)
        );
    }

    #[test]
    fn skip_scan_matches_scalar_on_banded_plain() {
        // High per-block entropy keeps the codec Plain, but each block's
        // vid band is disjoint, so a selective range prunes most blocks.
        let vids: Vec<u32> = (0..(4 * BLOCK_ROWS) as u32)
            .map(|i| (i / BLOCK_ROWS as u32) * 1000 + (i.wrapping_mul(2_654_435_761) % 997) + 1)
            .collect();
        let c = VidCodec::encode(&vids);
        assert_eq!(c.name(), "plain");
        let m = VidMatch::range(2000, 2500);
        let mut fast = RowIdBitmap::new(vids.len());
        let mut slow = RowIdBitmap::new(vids.len());
        c.scan_into(&m, &mut fast, 0);
        c.scan_into_scalar(&m, &mut slow, 0);
        assert_eq!(
            fast.iter().collect::<Vec<_>>(),
            slow.iter().collect::<Vec<_>>()
        );
        assert!(fast.count() > 0);
    }

    #[test]
    fn unpack_block_matches_get_for_all_codecs() {
        let n = 2 * BLOCK_ROWS + 300;
        let shapes: [Vec<u32>; 3] = [
            // High entropy -> plain.
            (0..n as u32)
                .map(|i| i.wrapping_mul(2_654_435_761) % 1021)
                .collect(),
            // Long runs -> rle.
            (0..n as u32).map(|i| i / 700).collect(),
            // Skewed -> sparse.
            (0..n as u32)
                .map(|i| if i % 97 == 0 { i % 7 + 1 } else { 42 })
                .collect(),
        ];
        for vids in &shapes {
            let c = VidCodec::encode(vids);
            let mut buf = [0u32; BLOCK_ROWS];
            for block in 0..vids.len().div_ceil(BLOCK_ROWS) {
                let rows = c.unpack_block(block, &mut buf);
                for (i, &vid) in buf[..rows].iter().enumerate() {
                    assert_eq!(
                        vid,
                        vids[block * BLOCK_ROWS + i],
                        "{} block {block}",
                        c.name()
                    );
                }
            }
        }
    }
}
