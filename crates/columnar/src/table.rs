//! The in-memory column table: per-column main + delta fragments with
//! MVCC row-version metadata and delta merge.

use hana_exec::{current_query_metrics, ExecContext, Morsel};
use hana_types::{HanaError, Result, Row, Schema, Value};

use crate::bitmap::RowIdBitmap;
use crate::column::{DeltaColumn, MainColumn};
use crate::index::{IndexDef, SecondaryIndex};
use crate::predicate::ColumnPredicate;

/// Commit ID sentinel meaning "never" (row not deleted).
pub const NEVER: u64 = u64::MAX;

/// Per-row MVCC metadata.
///
/// The platform applies write-sets at commit time (see `hana-txn`), so a
/// row's `created`/`deleted` fields always hold *commit* IDs — a snapshot
/// at commit ID `s` sees a row iff `created <= s < deleted`.
#[derive(Debug, Clone, Default)]
pub struct RowVersions {
    created: Vec<u64>,
    deleted: Vec<u64>,
}

impl RowVersions {
    /// Record a newly inserted row.
    pub fn push(&mut self, created_cid: u64) {
        self.created.push(created_cid);
        self.deleted.push(NEVER);
    }

    /// Mark `row` deleted as of `cid`. Errors if already deleted.
    pub fn delete(&mut self, row: usize, cid: u64) -> Result<()> {
        if row >= self.deleted.len() {
            return Err(HanaError::Storage(format!("row {row} out of range")));
        }
        if self.deleted[row] != NEVER {
            return Err(HanaError::Storage(format!("row {row} already deleted")));
        }
        self.deleted[row] = cid;
        Ok(())
    }

    /// Visibility of `row` under snapshot `cid`.
    pub fn visible(&self, row: usize, cid: u64) -> bool {
        self.created[row] <= cid && self.deleted[row] > cid
    }

    /// Number of rows ever inserted.
    pub fn len(&self) -> usize {
        self.created.len()
    }

    /// Whether no rows were ever inserted.
    pub fn is_empty(&self) -> bool {
        self.created.is_empty()
    }
}

/// Per-column pair of fragments.
#[derive(Debug, Clone)]
struct ColumnPair {
    main: MainColumn,
    delta: DeltaColumn,
}

/// A dictionary-encoded, MVCC-versioned, delta/main column table — the
/// "regular in-memory column table" of §3.1.
///
/// Row IDs are stable positions: `0..main_rows` live in the main
/// fragments, the rest in the deltas. A delta merge moves delta rows into
/// main *without* changing row IDs.
#[derive(Debug, Clone)]
pub struct ColumnTable {
    name: String,
    schema: Schema,
    columns: Vec<ColumnPair>,
    versions: RowVersions,
    main_rows: usize,
    merges: u64,
    indexes: Vec<SecondaryIndex>,
}

impl ColumnTable {
    /// Create an empty table.
    pub fn new(name: &str, schema: Schema) -> ColumnTable {
        let columns = (0..schema.len())
            .map(|_| ColumnPair {
                main: MainColumn::empty(),
                delta: DeltaColumn::new(),
            })
            .collect();
        ColumnTable {
            name: name.to_string(),
            schema,
            columns,
            versions: RowVersions::default(),
            main_rows: 0,
            merges: 0,
            indexes: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of row slots (including deleted rows).
    pub fn row_count(&self) -> usize {
        self.versions.len()
    }

    /// Rows currently in the delta fragments.
    pub fn delta_rows(&self) -> usize {
        self.versions.len() - self.main_rows
    }

    /// Rows living in the main fragments (row IDs `0..main_rows()`).
    pub fn main_rows(&self) -> usize {
        self.main_rows
    }

    /// The main fragment of column `col` (late-materialization path:
    /// lets the executor work directly on dictionary vids).
    pub fn main_column(&self, col: usize) -> &MainColumn {
        &self.columns[col].main
    }

    /// The delta fragment of column `col`.
    pub fn delta_column(&self, col: usize) -> &DeltaColumn {
        &self.columns[col].delta
    }

    /// How many delta merges have run.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Insert a row with the given commit ID; returns its row ID.
    pub fn insert(&mut self, row: &[Value], cid: u64) -> Result<usize> {
        self.schema.check_row(row)?;
        for (pair, v) in self.columns.iter_mut().zip(row) {
            pair.delta.append(v);
        }
        self.versions.push(cid);
        let row_id = self.versions.len() - 1;
        // Routed DML maintenance: every secondary index absorbs the new
        // row on its ordered delta side. Deletes need no maintenance —
        // seeks re-check MVCC visibility per hit.
        for ix in &mut self.indexes {
            let key = ix.key_of(row);
            ix.append(key, row_id);
        }
        Ok(row_id)
    }

    /// Mark a row deleted as of `cid`.
    pub fn delete(&mut self, row: usize, cid: u64) -> Result<()> {
        self.versions.delete(row, cid)
    }

    /// The value at (`row`, `col`), ignoring visibility.
    pub fn value(&self, row: usize, col: usize) -> Value {
        let pair = &self.columns[col];
        if row < self.main_rows {
            pair.main.get(row)
        } else {
            pair.delta.get(row - self.main_rows)
        }
    }

    /// Bitmap of rows visible under snapshot `cid`.
    pub fn visible(&self, cid: u64) -> RowIdBitmap {
        let mut b = RowIdBitmap::new(self.versions.len());
        for row in 0..self.versions.len() {
            if self.versions.visible(row, cid) {
                b.set(row);
            }
        }
        b
    }

    /// Scan one column with a predicate under snapshot `cid`.
    pub fn scan(&self, col: usize, pred: &ColumnPredicate, cid: u64) -> Result<RowIdBitmap> {
        if col >= self.columns.len() {
            return Err(HanaError::Storage(format!(
                "column index {col} out of range for '{}'",
                self.name
            )));
        }
        let mut out = RowIdBitmap::new(self.versions.len());
        let pair = &self.columns[col];
        pair.main.scan_into(pred, &mut out, 0);
        pair.delta.scan_into(pred, &mut out, self.main_rows);
        out.and(&self.visible(cid));
        Ok(out)
    }

    /// Check a column index, mirroring [`ColumnTable::scan`]'s error.
    fn check_col(&self, col: usize) -> Result<()> {
        if col >= self.columns.len() {
            return Err(HanaError::Storage(format!(
                "column index {col} out of range for '{}'",
                self.name
            )));
        }
        Ok(())
    }

    /// Scan one column within row range `[m.start, m.end)`: matching
    /// bits for the main and delta portions of the range, masked by
    /// visibility. Only bits inside the morsel are set.
    fn scan_morsel(
        &self,
        col: usize,
        pred: &ColumnPredicate,
        cid: u64,
        m: Morsel,
        out: &mut RowIdBitmap,
    ) {
        let pair = &self.columns[col];
        let main_end = m.end.min(self.main_rows);
        if m.start < main_end {
            pair.main.scan_range_into(pred, out, 0, m.start, main_end);
        }
        if m.end > self.main_rows {
            let delta_start = m.start.max(self.main_rows) - self.main_rows;
            pair.delta.scan_range_into(
                pred,
                out,
                self.main_rows,
                delta_start,
                m.end - self.main_rows,
            );
        }
        for row in m.start..m.end {
            if out.get(row) && !self.versions.visible(row, cid) {
                out.unset(row);
            }
        }
    }

    /// Whether a scatter over `morsels` would actually overlap work:
    /// with one worker or one morsel the fork-join only adds queue and
    /// per-morsel bitmap-merge overhead, so scans take a serial path
    /// (still routed through a single-task scatter for accounting).
    fn scan_serially(exec: &ExecContext, n_morsels: usize) -> bool {
        exec.config().workers <= 1 || n_morsels <= 1
    }

    /// Morsel-parallel [`ColumnTable::scan`]: the row domain is sliced
    /// into cache-sized morsels, scanned concurrently on `exec`'s
    /// worker pool, and the per-morsel bitmaps are OR-merged. Morsel
    /// boundaries are 64-row aligned, so tasks touch disjoint bitmap
    /// words and the result is bit-identical to the serial scan.
    ///
    /// With an effective worker count of 1 (or a single morsel) the
    /// scan instead runs [`ColumnTable::scan`] as one task: same
    /// result, no per-morsel bitmap allocations or OR-merge.
    pub fn par_scan(
        &self,
        exec: &ExecContext,
        col: usize,
        pred: &ColumnPredicate,
        cid: u64,
    ) -> Result<RowIdBitmap> {
        self.check_col(col)?;
        let len = self.versions.len();
        let morsels = exec.morsels(len);
        if let Some(q) = current_query_metrics() {
            q.add_morsels(morsels.len() as u64);
            q.add_tasks(morsels.len() as u64);
        }
        if Self::scan_serially(exec, morsels.len()) {
            let mut parts = exec.scatter(vec![()], |()| {
                let started = std::time::Instant::now();
                let out = self.scan(col, pred, cid).expect("column checked");
                (out, started.elapsed().as_nanos() as u64)
            });
            let (out, nanos) = parts.pop().expect("single task");
            if let Some(q) = current_query_metrics() {
                q.add_cpu_nanos(nanos);
            }
            return Ok(out);
        }
        let parts = exec.scatter(morsels, |m| {
            let started = std::time::Instant::now();
            let mut local = RowIdBitmap::new(len);
            self.scan_morsel(col, pred, cid, m, &mut local);
            (local, started.elapsed().as_nanos() as u64)
        });
        let mut out = RowIdBitmap::new(len);
        let mut cpu_nanos = 0u64;
        for (local, nanos) in parts {
            out.or(&local);
            cpu_nanos += nanos;
        }
        if let Some(q) = current_query_metrics() {
            q.add_cpu_nanos(cpu_nanos);
        }
        Ok(out)
    }

    /// Morsel-parallel [`ColumnTable::scan_all`]: each morsel computes
    /// visibility for its row range and intersects every predicate's
    /// range scan, then the disjoint results are OR-merged.
    ///
    /// Falls back to serial [`ColumnTable::scan_all`] as a single task
    /// when a scatter could not overlap any work (see
    /// [`ColumnTable::par_scan`]).
    pub fn par_scan_all(
        &self,
        exec: &ExecContext,
        preds: &[(usize, ColumnPredicate)],
        cid: u64,
    ) -> Result<RowIdBitmap> {
        for (col, _) in preds {
            self.check_col(*col)?;
        }
        let len = self.versions.len();
        let morsels = exec.morsels(len);
        if let Some(q) = current_query_metrics() {
            q.add_morsels(morsels.len() as u64);
            q.add_tasks(morsels.len() as u64);
        }
        if Self::scan_serially(exec, morsels.len()) {
            let mut parts = exec.scatter(vec![()], |()| {
                let started = std::time::Instant::now();
                let out = self.scan_all(preds, cid).expect("columns checked");
                (out, started.elapsed().as_nanos() as u64)
            });
            let (out, nanos) = parts.pop().expect("single task");
            if let Some(q) = current_query_metrics() {
                q.add_cpu_nanos(nanos);
            }
            return Ok(out);
        }
        let parts = exec.scatter(morsels, |m| {
            let started = std::time::Instant::now();
            let mut acc = RowIdBitmap::new(len);
            acc.set_range(m.start, m.end);
            for row in m.start..m.end {
                if !self.versions.visible(row, cid) {
                    acc.unset(row);
                }
            }
            for (col, pred) in preds {
                let mut hits = RowIdBitmap::new(len);
                self.scan_morsel(*col, pred, cid, m, &mut hits);
                acc.and(&hits);
            }
            (acc, started.elapsed().as_nanos() as u64)
        });
        let mut out = RowIdBitmap::new(len);
        let mut cpu_nanos = 0u64;
        for (local, nanos) in parts {
            out.or(&local);
            cpu_nanos += nanos;
        }
        if let Some(q) = current_query_metrics() {
            q.add_cpu_nanos(cpu_nanos);
        }
        Ok(out)
    }

    /// Scan several conjunctive predicates, intersecting the bitmaps.
    pub fn scan_all(&self, preds: &[(usize, ColumnPredicate)], cid: u64) -> Result<RowIdBitmap> {
        let mut acc = self.visible(cid);
        for (col, pred) in preds {
            let b = self.scan(*col, pred, cid)?;
            acc.and(&b);
        }
        Ok(acc)
    }

    /// Materialize the given rows, projected to `projection` columns
    /// (empty projection = all columns).
    pub fn collect_rows(&self, rows: &RowIdBitmap, projection: &[usize]) -> Vec<Row> {
        let proj: Vec<usize> = if projection.is_empty() {
            (0..self.schema.len()).collect()
        } else {
            projection.to_vec()
        };
        rows.iter()
            .map(|row| Row::from_values(proj.iter().map(|&c| self.value(row, c))))
            .collect()
    }

    /// All rows visible under `cid` (convenience for full-table reads).
    pub fn snapshot_rows(&self, cid: u64) -> Vec<Row> {
        self.collect_rows(&self.visible(cid), &[])
    }

    /// Merge the delta fragments into the main fragments, re-encoding the
    /// columns. Row IDs are preserved; the delta becomes empty.
    ///
    /// Merge durations are recorded in the global observability
    /// registry (`hana_columnar_delta_merge_ns` histogram and
    /// `hana_columnar_delta_merges_total` / `..._rows_total` counters).
    pub fn merge_delta(&mut self) {
        if self.delta_rows() == 0 {
            return;
        }
        let merged_rows = self.delta_rows() as u64;
        let started = std::time::Instant::now();
        for pair in &mut self.columns {
            let mut values = pair.main.materialize();
            values.extend(pair.delta.materialize());
            pair.main = MainColumn::build(&values);
            pair.delta.clear();
        }
        self.main_rows = self.versions.len();
        self.merges += 1;
        self.rebuild_indexes();
        let obs = hana_obs::registry();
        obs.histogram("hana_columnar_delta_merge_ns")
            .record(started.elapsed().as_nanos() as u64);
        obs.counter("hana_columnar_delta_merges_total").inc();
        obs.counter("hana_columnar_delta_merge_rows_total")
            .add(merged_rows);
    }

    /// Approximate heap footprint in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|p| p.main.payload_bytes() + p.delta.payload_bytes())
            .sum::<usize>()
            + self.versions.len() * 16
    }

    /// Per-column statistics for the optimizer: (distinct, min, max).
    pub fn column_stats(&self, col: usize) -> (usize, Option<Value>, Option<Value>) {
        let pair = &self.columns[col];
        let main_dict = pair.main.dictionary();
        let mut distinct = main_dict.len();
        let mut min = main_dict.min().cloned();
        let mut max = main_dict.max().cloned();
        for v in pair.delta.dictionary().values() {
            if main_dict.lookup(v).is_none() {
                distinct += 1;
            }
            if min.as_ref().is_none_or(|m| v < m) {
                min = Some(v.clone());
            }
            if max.as_ref().is_none_or(|m| v > m) {
                max = Some(v.clone());
            }
        }
        (distinct, min, max)
    }

    /// Sorted `(value, frequency)` pairs of a column across main and
    /// delta (nulls excluded) — exactly the input the q-optimal
    /// histogram construction of `hana-query` expects, courtesy of the
    /// ordered dictionary.
    pub fn value_frequencies(&self, col: usize) -> Vec<(Value, u64)> {
        let mut freq: std::collections::BTreeMap<Value, u64> = std::collections::BTreeMap::new();
        for row in 0..self.row_count() {
            let v = self.value(row, col);
            if !v.is_null() {
                *freq.entry(v).or_insert(0) += 1;
            }
        }
        freq.into_iter().collect()
    }

    // ---- secondary indexes ----

    /// Create a secondary index over `columns` (key order). The index
    /// is built from the table's current rows (main and delta) and kept
    /// maintained by [`ColumnTable::insert`] and
    /// [`ColumnTable::merge_delta`] from then on.
    pub fn create_index(&mut self, name: &str, columns: &[String]) -> Result<()> {
        let name = name.to_ascii_lowercase();
        if columns.is_empty() {
            return Err(HanaError::Catalog(format!(
                "index '{name}' needs at least one column"
            )));
        }
        if self.indexes.iter().any(|ix| ix.def().name == name) {
            return Err(HanaError::Catalog(format!(
                "index '{name}' already exists on '{}'",
                self.name
            )));
        }
        let mut cols = Vec::with_capacity(columns.len());
        let mut lowered = Vec::with_capacity(columns.len());
        for c in columns {
            let c = c.to_ascii_lowercase();
            cols.push(self.schema.require(&c)?);
            lowered.push(c);
        }
        let mut ix = SecondaryIndex::new(
            IndexDef {
                name,
                columns: lowered,
            },
            cols,
        );
        ix.rebuild(self.index_entries(&ix));
        self.indexes.push(ix);
        Ok(())
    }

    /// Drop a secondary index by name.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let name = name.to_ascii_lowercase();
        let before = self.indexes.len();
        self.indexes.retain(|ix| ix.def().name != name);
        if self.indexes.len() == before {
            return Err(HanaError::Catalog(format!(
                "no index '{name}' on '{}'",
                self.name
            )));
        }
        Ok(())
    }

    /// The table's secondary indexes.
    pub fn indexes(&self) -> &[SecondaryIndex] {
        &self.indexes
    }

    /// Index definitions (for the planner and catalog persistence).
    pub fn index_defs(&self) -> Vec<IndexDef> {
        self.indexes.iter().map(|ix| ix.def().clone()).collect()
    }

    /// Look up an index by name.
    pub fn index(&self, name: &str) -> Option<&SecondaryIndex> {
        let name = name.to_ascii_lowercase();
        self.indexes.iter().find(|ix| ix.def().name == name)
    }

    /// Seek an index: rows matching the equality `prefix` (plus an
    /// optional range predicate on the next indexed column), masked by
    /// snapshot visibility. Only the hit rows are visibility-checked —
    /// a point seek never touches the full row domain.
    pub fn index_seek(
        &self,
        index: &str,
        prefix: &[Value],
        range: Option<&ColumnPredicate>,
        cid: u64,
    ) -> Result<RowIdBitmap> {
        let ix = self
            .index(index)
            .ok_or_else(|| HanaError::Catalog(format!("no index '{index}' on '{}'", self.name)))?;
        let mut out = RowIdBitmap::new(self.versions.len());
        for row in ix.seek(prefix, range) {
            if self.versions.visible(row, cid) {
                out.set(row);
            }
        }
        Ok(out)
    }

    /// `(key, row id)` pairs for every current row of `ix`'s columns.
    fn index_entries(&self, ix: &SecondaryIndex) -> Vec<(Vec<Value>, usize)> {
        (0..self.versions.len())
            .map(|row| {
                let key = ix
                    .columns()
                    .iter()
                    .map(|&c| self.value(row, c))
                    .collect::<Vec<_>>();
                (key, row)
            })
            .collect()
    }

    /// Rebuild every index's sorted main side (delta-merge barrier).
    fn rebuild_indexes(&mut self) {
        let mut indexes = std::mem::take(&mut self.indexes);
        for ix in &mut indexes {
            let entries = self.index_entries(ix);
            ix.rebuild(entries);
        }
        self.indexes = indexes;
    }

    /// Sorted distinct values of a column (dictionary view; feeds the
    /// q-optimal histogram construction in `hana-query`).
    pub fn distinct_values(&self, col: usize) -> Vec<Value> {
        let pair = &self.columns[col];
        let mut vals: Vec<Value> = pair.main.dictionary().values().to_vec();
        vals.extend(pair.delta.dictionary().values().iter().cloned());
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_types::DataType;

    fn table() -> ColumnTable {
        ColumnTable::new(
            "t",
            Schema::of(&[("id", DataType::Int), ("tag", DataType::Varchar)]),
        )
    }

    #[test]
    fn insert_scan_visibility() {
        let mut t = table();
        t.insert(&[Value::Int(1), Value::from("a")], 10).unwrap();
        t.insert(&[Value::Int(2), Value::from("b")], 20).unwrap();
        // Snapshot at cid 15 sees only the first row.
        assert_eq!(t.visible(15).count(), 1);
        assert_eq!(t.visible(20).count(), 2);
        let hits = t.scan(0, &ColumnPredicate::Ge(Value::Int(1)), 15).unwrap();
        assert_eq!(hits.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn delete_hides_row_from_later_snapshots() {
        let mut t = table();
        let r = t.insert(&[Value::Int(1), Value::from("a")], 10).unwrap();
        t.delete(r, 30).unwrap();
        assert!(t.versions.visible(r, 29));
        assert!(!t.versions.visible(r, 30));
        assert_eq!(t.snapshot_rows(25).len(), 1);
        assert_eq!(t.snapshot_rows(30).len(), 0);
        assert!(t.delete(r, 40).is_err(), "double delete must fail");
    }

    #[test]
    fn merge_preserves_row_ids_and_results() {
        let mut t = table();
        for i in 0..100i64 {
            t.insert(&[Value::Int(i), Value::from(format!("v{}", i % 7))], 5)
                .unwrap();
        }
        let before = t
            .scan(
                0,
                &ColumnPredicate::Between(Value::Int(10), Value::Int(20)),
                5,
            )
            .unwrap();
        assert_eq!(t.delta_rows(), 100);
        t.merge_delta();
        assert_eq!(t.delta_rows(), 0);
        assert_eq!(t.merge_count(), 1);
        let after = t
            .scan(
                0,
                &ColumnPredicate::Between(Value::Int(10), Value::Int(20)),
                5,
            )
            .unwrap();
        assert_eq!(before, after);
        assert_eq!(t.value(42, 0), Value::Int(42));
        // Inserts continue to work after a merge.
        t.insert(&[Value::Int(100), Value::from("x")], 6).unwrap();
        assert_eq!(t.value(100, 0), Value::Int(100));
        assert_eq!(t.delta_rows(), 1);
    }

    #[test]
    fn merge_usually_shrinks_memory() {
        let mut t = table();
        for i in 0..5000i64 {
            t.insert(
                &[Value::Int(i % 50), Value::from(format!("tag{}", i % 10))],
                1,
            )
            .unwrap();
        }
        let before = t.payload_bytes();
        t.merge_delta();
        let after = t.payload_bytes();
        assert!(after < before, "merge should compress: {after} !< {before}");
    }

    #[test]
    fn scan_all_intersects() {
        let mut t = table();
        for i in 0..10i64 {
            t.insert(
                &[
                    Value::Int(i),
                    Value::from(if i % 2 == 0 { "even" } else { "odd" }),
                ],
                1,
            )
            .unwrap();
        }
        let hits = t
            .scan_all(
                &[
                    (0, ColumnPredicate::Ge(Value::Int(4))),
                    (1, ColumnPredicate::Eq(Value::from("even"))),
                ],
                1,
            )
            .unwrap();
        assert_eq!(hits.iter().collect::<Vec<_>>(), vec![4, 6, 8]);
    }

    #[test]
    fn stats_track_main_and_delta() {
        let mut t = table();
        t.insert(&[Value::Int(5), Value::from("a")], 1).unwrap();
        t.merge_delta();
        t.insert(&[Value::Int(9), Value::from("b")], 1).unwrap();
        let (distinct, min, max) = t.column_stats(0);
        assert_eq!(distinct, 2);
        assert_eq!(min, Some(Value::Int(5)));
        assert_eq!(max, Some(Value::Int(9)));
        assert_eq!(t.distinct_values(0), vec![Value::Int(5), Value::Int(9)]);
    }

    #[test]
    fn index_seek_tracks_dml_and_merge() {
        let mut t = table();
        for i in 0..50i64 {
            t.insert(&[Value::Int(i % 10), Value::from(format!("v{i}"))], 1)
                .unwrap();
        }
        t.create_index("ix_id", &["id".into()]).unwrap();
        assert!(
            t.create_index("ix_id", &["tag".into()]).is_err(),
            "duplicate index name"
        );
        let seek = |t: &ColumnTable, v: i64, cid: u64| {
            t.index_seek("ix_id", &[Value::Int(v)], None, cid)
                .unwrap()
                .iter()
                .collect::<Vec<_>>()
        };
        let scan = |t: &ColumnTable, v: i64, cid: u64| {
            t.scan(0, &ColumnPredicate::Eq(Value::Int(v)), cid)
                .unwrap()
                .iter()
                .collect::<Vec<_>>()
        };
        assert_eq!(seek(&t, 3, 1), scan(&t, 3, 1));
        // Post-DML: inserts land on the index delta, deletes vanish via
        // visibility.
        t.insert(&[Value::Int(3), Value::from("new")], 2).unwrap();
        t.delete(3, 2).unwrap();
        assert_eq!(seek(&t, 3, 2), scan(&t, 3, 2));
        // Post-merge: rebuilt main side, empty delta, same answers.
        t.merge_delta();
        assert_eq!(seek(&t, 3, 2), scan(&t, 3, 2));
        assert_eq!(t.index("ix_id").unwrap().entry_count(), 51);
        t.drop_index("ix_id").unwrap();
        assert!(t.index_seek("ix_id", &[Value::Int(3)], None, 2).is_err());
        assert!(t.drop_index("ix_id").is_err());
    }

    #[test]
    fn schema_violations_rejected() {
        let mut t = table();
        assert!(t.insert(&[Value::Int(1)], 1).is_err());
        assert!(t
            .insert(&[Value::from("nope"), Value::from("a")], 1)
            .is_err());
        assert_eq!(t.row_count(), 0);
    }
}
