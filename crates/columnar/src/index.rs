//! Secondary indexes over column tables: ordered `(key, row id)`
//! structures for exact point seeks and range seeks on the OLTP hot
//! path, instead of full column scans.
//!
//! Mirroring the table's fragments, an index keeps a **sorted** array
//! for the rows present at its last rebuild (binary-searchable, rebuilt
//! at delta merge) and an ordered **delta** map that absorbs routed
//! inserts in between. Deletes need no index maintenance at all: seeks
//! re-check MVCC visibility per hit, exactly like scans do, so a
//! deleted row simply stops matching.
//!
//! Keys are multi-column. A seek supplies an equality prefix plus an
//! optional range predicate on the next indexed column; both sides use
//! the same `Value` total order as the table's ordered dictionaries, so
//! a seek returns bit-identical results to the equivalent predicate
//! scan (property-tested in `tests/proptests.rs`).

use std::collections::BTreeMap;

use hana_types::Value;

use crate::predicate::ColumnPredicate;

/// Index metadata: the name and the indexed columns, in key order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name (lower-cased), unique within its table.
    pub name: String,
    /// Indexed column names (lower-cased), most significant first.
    pub columns: Vec<String>,
}

/// An ordered secondary index of one column table.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    def: IndexDef,
    /// Resolved column positions of `def.columns` in the table schema.
    cols: Vec<usize>,
    /// `(key, row id)` sorted by key then row id — the rows present at
    /// the last rebuild.
    main: Vec<(Vec<Value>, usize)>,
    /// Rows inserted since the last rebuild, in key order.
    delta: BTreeMap<Vec<Value>, Vec<usize>>,
}

impl SecondaryIndex {
    /// An empty index over the given resolved columns.
    pub fn new(def: IndexDef, cols: Vec<usize>) -> SecondaryIndex {
        SecondaryIndex {
            def,
            cols,
            main: Vec::new(),
            delta: BTreeMap::new(),
        }
    }

    /// The index definition.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Resolved positions of the indexed columns.
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// Extract this index's key from a full table row.
    pub fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.cols.iter().map(|&c| row[c].clone()).collect()
    }

    /// Route one inserted row into the delta side.
    pub fn append(&mut self, key: Vec<Value>, row_id: usize) {
        self.delta.entry(key).or_default().push(row_id);
    }

    /// Rebuild the sorted main side from `(key, row id)` pairs covering
    /// *every* current row, and clear the delta (delta-merge barrier).
    pub fn rebuild(&mut self, mut entries: Vec<(Vec<Value>, usize)>) {
        entries.sort_unstable();
        self.main = entries;
        self.delta.clear();
    }

    /// Number of distinct keys currently indexed (main-side exact,
    /// delta-side additive) — the live NDV that feeds heuristic seek
    /// cardinality estimates when no persisted statistics exist.
    pub fn distinct_keys(&self) -> usize {
        let mut distinct = self.delta.len();
        let mut prev: Option<&Vec<Value>> = None;
        for (key, _) in &self.main {
            if prev != Some(key) && !self.delta.contains_key(key) {
                distinct += 1;
            }
            prev = Some(key);
        }
        distinct
    }

    /// Total indexed entries (monitoring).
    pub fn entry_count(&self) -> usize {
        self.main.len() + self.delta.values().map(Vec::len).sum::<usize>()
    }

    /// Seek row ids whose key starts with the equality `prefix` and —
    /// if `range` is given — whose next key column satisfies the range
    /// predicate. Visibility is *not* applied here; callers intersect
    /// with their snapshot (see `ColumnTable::index_seek`).
    ///
    /// `prefix.len() + (range ? 1 : 0)` must not exceed the key width.
    pub fn seek(&self, prefix: &[Value], range: Option<&ColumnPredicate>) -> Vec<usize> {
        let k = prefix.len();
        debug_assert!(k + usize::from(range.is_some()) <= self.cols.len());
        // SQL equality never matches NULL: `Eq(Null)` scans to nothing,
        // so a NULL prefix value must not key-match stored NULL keys
        // (which *are* equal under the storage order).
        if prefix.iter().any(Value::is_null) {
            return Vec::new();
        }
        let mut out = Vec::new();

        // Sorted main side: binary-search the first key >= the prefix
        // (optionally tightened by the range's lower bound — NULL keys
        // sort before every bound, so a lower bound also skips them),
        // then walk forward while the prefix still matches.
        let start_key = seek_start(prefix, range);
        let start = self.main.partition_point(|(key, _)| key < &start_key);
        for (key, row_id) in &self.main[start..] {
            match key_match(key, prefix, range) {
                KeyMatch::Hit => out.push(*row_id),
                KeyMatch::Miss => {}
                KeyMatch::Stop => break,
            }
        }

        // Ordered delta side: same walk over the BTreeMap range.
        for (key, row_ids) in self.delta.range(start_key..) {
            match key_match(key, prefix, range) {
                KeyMatch::Hit => out.extend_from_slice(row_ids),
                KeyMatch::Miss => {}
                KeyMatch::Stop => break,
            }
        }
        out
    }
}

/// Outcome of testing one stored key against the seek bounds.
enum KeyMatch {
    /// Key satisfies prefix and range: take the rows.
    Hit,
    /// Inside the prefix run but the range column rejects (e.g. NULL).
    Miss,
    /// Past the prefix run (or past the upper bound): stop walking.
    Stop,
}

/// The smallest key vector at or after which hits can start.
fn seek_start(prefix: &[Value], range: Option<&ColumnPredicate>) -> Vec<Value> {
    let mut start: Vec<Value> = prefix.to_vec();
    // A lower range bound narrows the start position further. The bound
    // value itself is included even for the exclusive `Gt`: equal keys
    // are then rejected by `key_match`, which keeps this bound logic
    // trivially conservative.
    match range {
        Some(ColumnPredicate::Gt(lo) | ColumnPredicate::Ge(lo))
        | Some(ColumnPredicate::Between(lo, _)) => start.push(lo.clone()),
        _ => {}
    }
    start
}

/// Test a stored key against the equality prefix + range predicate.
fn key_match(key: &[Value], prefix: &[Value], range: Option<&ColumnPredicate>) -> KeyMatch {
    let k = prefix.len();
    match key[..k].cmp(prefix) {
        std::cmp::Ordering::Less => return KeyMatch::Miss,
        std::cmp::Ordering::Greater => return KeyMatch::Stop,
        std::cmp::Ordering::Equal => {}
    }
    let Some(pred) = range else {
        return KeyMatch::Hit;
    };
    let v = &key[k];
    if pred.matches(v) {
        return KeyMatch::Hit;
    }
    // Sorted keys let upper-bounded predicates terminate the walk as
    // soon as a non-NULL key exceeds the bound (NULL sorts first and is
    // just a miss).
    let past_upper = match pred {
        ColumnPredicate::Lt(hi) => !v.is_null() && v >= hi,
        ColumnPredicate::Le(hi) | ColumnPredicate::Between(_, hi) => !v.is_null() && v > hi,
        _ => false,
    };
    if past_upper {
        KeyMatch::Stop
    } else {
        KeyMatch::Miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> SecondaryIndex {
        SecondaryIndex::new(
            IndexDef {
                name: "ix".into(),
                columns: vec!["a".into(), "b".into()],
            },
            vec![0, 1],
        )
    }

    fn key(a: i64, b: &str) -> Vec<Value> {
        vec![Value::Int(a), Value::from(b)]
    }

    #[test]
    fn seek_spans_main_and_delta() {
        let mut ix = index();
        ix.rebuild(vec![(key(1, "x"), 0), (key(2, "y"), 1), (key(2, "z"), 2)]);
        ix.append(key(2, "y"), 3);
        ix.append(key(3, "w"), 4);
        assert_eq!(ix.seek(&[Value::Int(2)], None), vec![1, 2, 3]);
        assert_eq!(
            ix.seek(&[Value::Int(2), Value::from("y")], None),
            vec![1, 3]
        );
        assert_eq!(ix.seek(&[Value::Int(9)], None), Vec::<usize>::new());
        assert_eq!(ix.distinct_keys(), 4);
        assert_eq!(ix.entry_count(), 5);
    }

    #[test]
    fn range_seek_respects_bounds_and_nulls() {
        let mut ix = index();
        ix.rebuild(vec![
            (vec![Value::Int(1), Value::Null], 0),
            (key(1, "a"), 1),
            (key(1, "m"), 2),
            (key(1, "z"), 3),
            (key(2, "a"), 4),
        ]);
        let got = ix.seek(
            &[Value::Int(1)],
            Some(&ColumnPredicate::Between(
                Value::from("a"),
                Value::from("m"),
            )),
        );
        assert_eq!(got, vec![1, 2], "NULL never matches a range");
        let got = ix.seek(&[], Some(&ColumnPredicate::Ge(Value::Int(2))));
        assert_eq!(got, vec![4], "pure range seek on the leading column");
    }
}
