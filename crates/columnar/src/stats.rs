//! Persisted column statistics (synopses).
//!
//! §3.1: the cost-based optimizer needs cardinality inputs that are
//! available *at plan time* without touching the data. This module is
//! the data half of that contract: per-column row/null/distinct counts,
//! min/max and an equi-depth histogram, collected from a column table's
//! ordered dictionaries (at delta-merge time and on bulk load) and kept
//! in the catalog. The estimator side lives in `hana-query`; these types
//! stay in `hana-columnar` because they are produced here and consumed
//! by every layer above.
//!
//! Statistics are **advisory**: they steer plan choice, never
//! correctness. A stale synopsis yields a worse plan, not a wrong
//! answer.

use hana_types::Value;

use crate::predicate::ColumnPredicate;
use crate::table::ColumnTable;

/// Default number of equi-depth buckets per column synopsis.
pub const DEFAULT_STATS_BUCKETS: usize = 64;

/// One equi-depth bucket over a run of adjacent distinct values.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsBucket {
    /// Smallest value in the bucket.
    pub lo: Value,
    /// Largest value in the bucket.
    pub hi: Value,
    /// Total rows covered.
    pub rows: u64,
    /// Distinct values covered.
    pub distinct: u64,
}

/// Persisted statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name (unqualified).
    pub column: String,
    /// Row slots covered (including nulls).
    pub row_count: u64,
    /// Rows with NULL in this column.
    pub null_count: u64,
    /// Distinct non-null values (exact at collection time; an upper
    /// bound after partition merges).
    pub distinct_count: u64,
    /// Smallest non-null value.
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
    /// Average encoded width of a value in bytes (frequency-weighted).
    pub avg_bytes: f64,
    /// Equi-depth histogram over the non-null domain, ascending by
    /// `lo`; buckets never overlap within one collection but may after
    /// a partition merge (the estimator sums across buckets).
    pub buckets: Vec<StatsBucket>,
}

/// Persisted statistics of one table (or one partition of one).
#[derive(Debug, Clone, PartialEq)]
pub struct TableStatistics {
    /// Table name.
    pub table: String,
    /// Row slots covered.
    pub row_count: u64,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl ColumnStats {
    /// Build from sorted `(value, frequency)` pairs (ascending, exactly
    /// what an ordered dictionary provides) plus the null count, using
    /// at most `target_buckets` equi-depth buckets.
    pub fn from_frequencies(
        column: &str,
        sorted: &[(Value, u64)],
        null_count: u64,
        target_buckets: usize,
    ) -> ColumnStats {
        let non_null: u64 = sorted.iter().map(|(_, f)| *f).sum();
        let weighted_bytes: u64 = sorted
            .iter()
            .map(|(v, f)| v.storage_bytes() as u64 * *f)
            .sum();
        let depth = non_null.div_ceil(target_buckets.max(1) as u64).max(1);
        let mut buckets: Vec<StatsBucket> = Vec::new();
        let mut cur: Option<StatsBucket> = None;
        for (v, f) in sorted {
            let f = (*f).max(1);
            match &mut cur {
                Some(b) if b.rows < depth => {
                    b.hi = v.clone();
                    b.rows += f;
                    b.distinct += 1;
                }
                _ => {
                    if let Some(b) = cur.take() {
                        buckets.push(b);
                    }
                    cur = Some(StatsBucket {
                        lo: v.clone(),
                        hi: v.clone(),
                        rows: f,
                        distinct: 1,
                    });
                }
            }
        }
        if let Some(b) = cur {
            buckets.push(b);
        }
        ColumnStats {
            column: column.to_string(),
            row_count: non_null + null_count,
            null_count,
            distinct_count: sorted.len() as u64,
            min: sorted.first().map(|(v, _)| v.clone()),
            max: sorted.last().map(|(v, _)| v.clone()),
            avg_bytes: if non_null == 0 {
                1.0
            } else {
                weighted_bytes as f64 / non_null as f64
            },
            buckets,
        }
    }

    /// Non-null rows covered.
    pub fn non_null_rows(&self) -> u64 {
        self.row_count - self.null_count
    }

    /// Estimated rows matching `value = v`: every bucket whose range
    /// contains `v` contributes its average per-value frequency (one
    /// bucket within a single collection; possibly several after a
    /// partition merge).
    pub fn estimate_eq(&self, v: &Value) -> f64 {
        let mut rows = 0.0;
        for b in &self.buckets {
            if *v >= b.lo && *v <= b.hi {
                rows += b.rows as f64 / b.distinct.max(1) as f64;
            }
        }
        rows.min(self.non_null_rows() as f64)
    }

    /// Estimated rows in the inclusive range `[lo, hi]` (either side
    /// unbounded with `None`), interpolating numerically inside
    /// partially overlapped buckets.
    pub fn estimate_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> f64 {
        let mut rows = 0.0;
        for b in &self.buckets {
            if lo.is_some_and(|l| *l > b.hi) || hi.is_some_and(|h| *h < b.lo) {
                continue;
            }
            rows += b.rows as f64 * overlap_fraction(b, lo, hi);
        }
        rows.min(self.non_null_rows() as f64)
    }

    /// Estimated rows matching a column predicate; always within
    /// `[0, row_count]`.
    pub fn estimate(&self, pred: &ColumnPredicate) -> f64 {
        let non_null = self.non_null_rows() as f64;
        let est = match pred {
            ColumnPredicate::Eq(v) => self.estimate_eq(v),
            ColumnPredicate::Ne(v) => non_null - self.estimate_eq(v),
            ColumnPredicate::Lt(v) | ColumnPredicate::Le(v) => self.estimate_range(None, Some(v)),
            ColumnPredicate::Gt(v) | ColumnPredicate::Ge(v) => self.estimate_range(Some(v), None),
            ColumnPredicate::Between(lo, hi) => self.estimate_range(Some(lo), Some(hi)),
            ColumnPredicate::InList(vs) => {
                // Dedup: `IN (1, 1, 1)` matches the same rows as
                // `IN (1)`; summing raw would triple-count.
                let mut uniq: Vec<&Value> = vs.iter().collect();
                uniq.sort();
                uniq.dedup();
                uniq.iter().map(|v| self.estimate_eq(v)).sum::<f64>()
            }
            ColumnPredicate::IsNull => self.null_count as f64,
            ColumnPredicate::IsNotNull => non_null,
            ColumnPredicate::Like(_) => 0.1 * non_null,
        };
        est.clamp(0.0, self.row_count as f64)
    }

    /// Selectivity (`0..=1`) of a predicate.
    pub fn selectivity(&self, pred: &ColumnPredicate) -> f64 {
        if self.row_count == 0 {
            return 0.0;
        }
        (self.estimate(pred) / self.row_count as f64).clamp(0.0, 1.0)
    }
}

/// Fraction of a bucket's rows assumed inside `[lo, hi]`, interpolating
/// numerically where possible.
fn overlap_fraction(b: &StatsBucket, lo: Option<&Value>, hi: Option<&Value>) -> f64 {
    let (Some(blo), Some(bhi)) = (b.lo.as_f64(), b.hi.as_f64()) else {
        // Non-numeric: containment is all we know.
        return 1.0;
    };
    if bhi == blo {
        return 1.0;
    }
    let from = lo.and_then(Value::as_f64).unwrap_or(blo).max(blo);
    let to = hi.and_then(Value::as_f64).unwrap_or(bhi).min(bhi);
    ((to - from) / (bhi - blo)).clamp(0.0, 1.0)
}

impl TableStatistics {
    /// Look up one column's statistics by (unqualified) name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.column == name)
    }

    /// Distinct-count estimate for a column, if known and non-zero.
    pub fn column_distinct(&self, name: &str) -> Option<f64> {
        self.column(name)
            .map(|c| c.distinct_count as f64)
            .filter(|&d| d > 0.0)
    }

    /// Average row width in bytes over all columns.
    pub fn row_bytes(&self) -> f64 {
        self.columns
            .iter()
            .map(|c| c.avg_bytes)
            .sum::<f64>()
            .max(1.0)
    }

    /// Merge per-partition statistics into one table-level synopsis:
    /// counts add, min/max widen, buckets concatenate (re-sorted by
    /// `lo`). `distinct_count` becomes an upper bound — values shared
    /// between partitions are counted once per partition.
    pub fn merge(table: &str, parts: &[TableStatistics]) -> TableStatistics {
        let Some(first) = parts.first() else {
            return TableStatistics {
                table: table.to_string(),
                row_count: 0,
                columns: Vec::new(),
            };
        };
        let mut columns: Vec<ColumnStats> = Vec::with_capacity(first.columns.len());
        for (ci, proto) in first.columns.iter().enumerate() {
            let mut rows = 0u64;
            let mut nulls = 0u64;
            let mut distinct = 0u64;
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            let mut weighted_bytes = 0.0f64;
            let mut buckets: Vec<StatsBucket> = Vec::new();
            for p in parts {
                let Some(c) = p.columns.get(ci) else { continue };
                rows += c.row_count;
                nulls += c.null_count;
                distinct += c.distinct_count;
                weighted_bytes += c.avg_bytes * c.non_null_rows() as f64;
                if let Some(v) = &c.min {
                    if min.as_ref().is_none_or(|m| v < m) {
                        min = Some(v.clone());
                    }
                }
                if let Some(v) = &c.max {
                    if max.as_ref().is_none_or(|m| v > m) {
                        max = Some(v.clone());
                    }
                }
                buckets.extend(c.buckets.iter().cloned());
            }
            buckets.sort_by(|a, b| a.lo.cmp(&b.lo));
            let non_null = rows - nulls;
            columns.push(ColumnStats {
                column: proto.column.clone(),
                row_count: rows,
                null_count: nulls,
                distinct_count: distinct,
                min,
                max,
                avg_bytes: if non_null == 0 {
                    1.0
                } else {
                    weighted_bytes / non_null as f64
                },
                buckets,
            });
        }
        TableStatistics {
            table: table.to_string(),
            row_count: parts.iter().map(|p| p.row_count).sum(),
            columns,
        }
    }
}

impl ColumnTable {
    /// Collect a full statistics synopsis of this table (every column,
    /// all row slots regardless of visibility — the same domain the
    /// plan-time histograms covered).
    pub fn collect_statistics(&self) -> TableStatistics {
        let rows = self.row_count() as u64;
        let columns = self
            .schema()
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let freqs = self.value_frequencies(i);
                let non_null: u64 = freqs.iter().map(|(_, f)| *f).sum();
                ColumnStats::from_frequencies(
                    &c.name,
                    &freqs,
                    rows - non_null,
                    DEFAULT_STATS_BUCKETS,
                )
            })
            .collect();
        TableStatistics {
            table: self.name().to_string(),
            row_count: rows,
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_types::{DataType, Schema};

    fn freqs(pairs: &[(i64, u64)]) -> Vec<(Value, u64)> {
        pairs.iter().map(|&(v, f)| (Value::Int(v), f)).collect()
    }

    #[test]
    fn equi_depth_buckets_balance_rows() {
        let data: Vec<(i64, u64)> = (0..1000).map(|i| (i, 1)).collect();
        let s = ColumnStats::from_frequencies("c", &freqs(&data), 0, 10);
        assert_eq!(s.buckets.len(), 10);
        for b in &s.buckets {
            assert_eq!(b.rows, 100);
        }
        assert_eq!(s.distinct_count, 1000);
        assert_eq!(s.min, Some(Value::Int(0)));
        assert_eq!(s.max, Some(Value::Int(999)));
    }

    #[test]
    fn estimates_bounded_and_sane() {
        let data: Vec<(i64, u64)> = (0..100).map(|i| (i, 10)).collect();
        let s = ColumnStats::from_frequencies("c", &freqs(&data), 50, 16);
        assert_eq!(s.row_count, 1050);
        assert_eq!(s.estimate(&ColumnPredicate::IsNull), 50.0);
        assert_eq!(s.estimate(&ColumnPredicate::IsNotNull), 1000.0);
        let eq = s.estimate(&ColumnPredicate::Eq(Value::Int(42)));
        assert!((eq - 10.0).abs() < 1e-9, "eq = {eq}");
        let half = s.estimate(&ColumnPredicate::Lt(Value::Int(50)));
        assert!((half - 500.0).abs() < 80.0, "half = {half}");
        assert_eq!(s.estimate(&ColumnPredicate::Eq(Value::Int(5000))), 0.0);
    }

    #[test]
    fn in_list_dedups_and_clamps() {
        let data: Vec<(i64, u64)> = (0..10).map(|i| (i, 10)).collect();
        let s = ColumnStats::from_frequencies("c", &freqs(&data), 0, 4);
        // Duplicates count once.
        let dup = s.estimate(&ColumnPredicate::InList(vec![
            Value::Int(1),
            Value::Int(1),
            Value::Int(1),
        ]));
        assert!((dup - 10.0).abs() < 1e-9, "dup = {dup}");
        // A huge list can never exceed the table.
        let all = s.estimate(&ColumnPredicate::InList((0..500).map(Value::Int).collect()));
        assert!(all <= s.row_count as f64);
    }

    #[test]
    fn collect_from_table_and_merge_partitions() {
        let mut t = ColumnTable::new(
            "t",
            Schema::of(&[("id", DataType::Int), ("tag", DataType::Varchar)]),
        );
        for i in 0..100i64 {
            t.insert(
                &[
                    Value::Int(i % 10),
                    if i % 4 == 0 {
                        Value::Null
                    } else {
                        Value::from("x")
                    },
                ],
                1,
            )
            .unwrap();
        }
        t.merge_delta();
        let s = t.collect_statistics();
        assert_eq!(s.row_count, 100);
        let id = s.column("id").unwrap();
        assert_eq!(id.distinct_count, 10);
        assert_eq!(id.null_count, 0);
        let tag = s.column("tag").unwrap();
        assert_eq!(tag.null_count, 25);
        assert_eq!(tag.distinct_count, 1);

        // Two "partitions" merge into widened, summed stats.
        let merged = TableStatistics::merge("t", &[s.clone(), s]);
        assert_eq!(merged.row_count, 200);
        let id = merged.column("id").unwrap();
        assert_eq!(id.row_count, 200);
        assert_eq!(id.min, Some(Value::Int(0)));
        assert_eq!(id.max, Some(Value::Int(9)));
        // Eq estimate sums across the per-partition buckets.
        let eq = id.estimate(&ColumnPredicate::Eq(Value::Int(3)));
        assert!((eq - 20.0).abs() < 1e-9, "eq = {eq}");
    }
}
