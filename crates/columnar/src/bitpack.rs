//! Fixed-width bit packing for dictionary value IDs.
//!
//! The in-memory column store (§3.1 of the paper) stores each column as a
//! vector of dictionary value IDs packed to the minimum number of bits
//! needed for the dictionary's cardinality. This is the workhorse behind
//! the "factor of 10 vs. row-oriented storage" compression of Figure 2.

/// Rows per vectorized kernel block: bulk unpacking, block synopses and
/// skip-scans all operate on ranges of this many rows. A multiple of 64,
/// so block starts always fall on 64-bit word boundaries for every
/// element width (`64 * k * bits ≡ 0 (mod 64)`).
pub const BLOCK_ROWS: usize = 1024;

/// A vector of `len` unsigned integers, each `bits` wide, packed
/// contiguously into 64-bit words.
///
/// `bits == 0` is a valid degenerate case: every element is zero and no
/// payload is stored (this happens for single-value dictionaries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPackedVec {
    bits: u8,
    len: usize,
    words: Vec<u64>,
}

impl BitPackedVec {
    /// Create an empty vector with the given element width (`0..=64`).
    pub fn with_width(bits: u8) -> BitPackedVec {
        assert!(bits <= 64, "element width must be at most 64 bits");
        BitPackedVec {
            bits,
            len: 0,
            words: Vec::new(),
        }
    }

    /// Pack a slice, choosing the minimal width for its maximum value.
    pub fn from_slice(values: &[u64]) -> BitPackedVec {
        let max = values.iter().copied().max().unwrap_or(0);
        let mut v = BitPackedVec::with_width(width_for(max));
        for &x in values {
            v.push(x);
        }
        v
    }

    /// The element width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a value. Panics if the value does not fit the width.
    pub fn push(&mut self, v: u64) {
        debug_assert!(
            self.bits == 64 || v < (1u64 << self.bits),
            "value {v} does not fit in {} bits",
            self.bits
        );
        if self.bits == 0 {
            self.len += 1;
            return;
        }
        let bit_pos = self.len * self.bits as usize;
        let word = bit_pos / 64;
        let off = bit_pos % 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= v << off;
        let spill = off + self.bits as usize;
        if spill > 64 {
            self.words.push(v >> (64 - off));
        }
        self.len += 1;
    }

    /// Read the element at `idx`. Panics on out-of-bounds.
    pub fn get(&self, idx: usize) -> u64 {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        if self.bits == 0 {
            return 0;
        }
        let bit_pos = idx * self.bits as usize;
        let word = bit_pos / 64;
        let off = bit_pos % 64;
        let mask = if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        };
        let mut v = self.words[word] >> off;
        let spill = off + self.bits as usize;
        if spill > 64 {
            v |= self.words[word + 1] << (64 - off);
        }
        v & mask
    }

    /// Iterate over all elements.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Bulk-unpack `out.len()` elements starting at `start` into `out`.
    ///
    /// This is the vectorized replacement for calling [`get`](Self::get)
    /// in a loop: the bit cursor advances monotonically, so the
    /// per-element bounds check, division and modulo disappear, and for
    /// widths that divide 64 an aligned fast path unpacks a whole word
    /// per inner loop without any cross-word spill handling.
    ///
    /// Panics if `start + out.len()` exceeds the vector length.
    pub fn unpack_range(&self, start: usize, out: &mut [u64]) {
        let n = out.len();
        assert!(
            start.checked_add(n).is_some_and(|end| end <= self.len),
            "range {start}..{} out of bounds (len {})",
            start + n,
            self.len
        );
        if n == 0 {
            return;
        }
        let bits = self.bits as usize;
        if bits == 0 {
            out.fill(0);
            return;
        }
        if bits == 64 {
            out.copy_from_slice(&self.words[start..start + n]);
            return;
        }
        let mask = (1u64 << bits) - 1;
        let mut bit_pos = start * bits;
        if 64 % bits == 0 {
            // Aligned widths (1,2,4,8,16,32): elements never straddle a
            // word boundary. Walk the leading partial word elementwise,
            // then unpack `per_word` elements per full word.
            let per_word = 64 / bits;
            let mut i = 0;
            while i < n && !bit_pos.is_multiple_of(64) {
                out[i] = (self.words[bit_pos / 64] >> (bit_pos % 64)) & mask;
                bit_pos += bits;
                i += 1;
            }
            let mut word = bit_pos / 64;
            while n - i >= per_word {
                let mut w = self.words[word];
                for slot in &mut out[i..i + per_word] {
                    *slot = w & mask;
                    w >>= bits;
                }
                word += 1;
                i += per_word;
            }
            let mut w = if i < n { self.words[word] } else { 0 };
            for slot in &mut out[i..n] {
                *slot = w & mask;
                w >>= bits;
            }
            return;
        }
        // Unaligned widths: single forward cursor, one shift (plus a
        // spill OR when the element crosses a word boundary) per element.
        for slot in out.iter_mut() {
            let word = bit_pos >> 6;
            let off = bit_pos & 63;
            let mut v = self.words[word] >> off;
            if off + bits > 64 {
                v |= self.words[word + 1] << (64 - off);
            }
            *slot = v & mask;
            bit_pos += bits;
        }
    }

    /// Unpack elements `start..end` into a freshly allocated `Vec`.
    pub fn get_range(&self, start: usize, end: usize) -> Vec<u64> {
        assert!(start <= end, "range start {start} > end {end}");
        let mut out = vec![0u64; end - start];
        self.unpack_range(start, &mut out);
        out
    }

    /// Heap footprint of the packed payload in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Minimal width able to represent `max`.
pub fn width_for(max: u64) -> u8 {
    if max == 0 {
        0
    } else {
        (64 - max.leading_zeros()) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_calculation() {
        assert_eq!(width_for(0), 0);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 2);
        assert_eq!(width_for(255), 8);
        assert_eq!(width_for(256), 9);
        assert_eq!(width_for(u64::MAX), 64);
    }

    #[test]
    fn round_trip_odd_widths() {
        for bits in [1u8, 3, 7, 13, 31, 33, 63, 64] {
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1 << bits) - 1
            };
            let vals: Vec<u64> = (0..200u64).map(|i| (i * 0x9E37_79B9) & mask).collect();
            let mut v = BitPackedVec::with_width(bits);
            for &x in &vals {
                v.push(x);
            }
            assert_eq!(v.len(), vals.len());
            for (i, &x) in vals.iter().enumerate() {
                assert_eq!(v.get(i), x, "bits={bits} idx={i}");
            }
            assert_eq!(v.iter().collect::<Vec<_>>(), vals);
        }
    }

    #[test]
    fn zero_width_stores_nothing() {
        let v = BitPackedVec::from_slice(&[0, 0, 0]);
        assert_eq!(v.bits(), 0);
        assert_eq!(v.len(), 3);
        assert_eq!(v.payload_bytes(), 0);
        assert_eq!(v.get(2), 0);
    }

    #[test]
    fn from_slice_picks_minimal_width() {
        let v = BitPackedVec::from_slice(&[0, 5, 2]);
        assert_eq!(v.bits(), 3);
        // 3 elements * 3 bits = 9 bits -> one word.
        assert_eq!(v.payload_bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        BitPackedVec::from_slice(&[1]).get(1);
    }

    #[test]
    fn unpack_range_matches_get_all_widths() {
        for bits in [0u8, 1, 2, 3, 4, 7, 8, 13, 16, 31, 32, 33, 63, 64] {
            let mask = if bits == 64 {
                u64::MAX
            } else if bits == 0 {
                0
            } else {
                (1 << bits) - 1
            };
            let vals: Vec<u64> = (0..BLOCK_ROWS as u64 + 70)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
                .collect();
            let mut v = BitPackedVec::with_width(bits);
            for &x in &vals {
                v.push(x);
            }
            for (start, n) in [
                (0usize, vals.len()),
                (0, BLOCK_ROWS),
                (BLOCK_ROWS, 70),
                (1, 130),
                (63, 66),
                (5, 0),
            ] {
                let mut out = vec![0u64; n];
                v.unpack_range(start, &mut out);
                for (k, &got) in out.iter().enumerate() {
                    assert_eq!(got, v.get(start + k), "bits={bits} start={start} k={k}");
                }
            }
            assert_eq!(
                v.get_range(3, 40),
                (3..40).map(|i| v.get(i)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn unpack_range_out_of_bounds_panics() {
        let v = BitPackedVec::from_slice(&[1, 2, 3]);
        let mut out = [0u64; 4];
        v.unpack_range(1, &mut out);
    }
}
