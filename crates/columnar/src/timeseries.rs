//! Native time-series tables (Figure 2 of the paper).
//!
//! The paper's time-series extension models series semantics explicitly —
//! an equidistant time axis and a missing-value compensation strategy —
//! and uses an "optimized internal representation" that compresses sensor
//! data "by more than a factor of 10 compared to row-oriented storage and
//! more than a factor of 3 compared to columnar storage".
//!
//! This module reproduces that design:
//!
//! * the **time axis is implicit**: only `(start, interval, count)` are
//!   stored, eliminating the per-row timestamp entirely;
//! * values are compressed with **XOR delta encoding** (Gorilla-style),
//!   which collapses repeated or slowly-moving sensor readings to a few
//!   bits per point;
//! * missing measurements are recorded in a presence bitmap and
//!   **compensated on read** according to the declared strategy.

use hana_types::{HanaError, Result};

use crate::bitmap::RowIdBitmap;

/// How reads fill in missing measurements (declared per table, as in the
/// `MISSING VALUES` clause sketched in Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compensation {
    /// Expose missing points as absent (`None`).
    #[default]
    None,
    /// Repeat the previous present value (step interpolation).
    Previous,
    /// Linearly interpolate between the neighbouring present values.
    Linear,
}

/// Writer of an LSB-first bit stream.
#[derive(Debug, Clone, Default)]
struct BitWriter {
    words: Vec<u64>,
    bit_len: usize,
}

impl BitWriter {
    fn write(&mut self, v: u64, bits: u32) {
        debug_assert!(bits <= 64);
        if bits == 0 {
            return;
        }
        let v = if bits == 64 {
            v
        } else {
            v & ((1u64 << bits) - 1)
        };
        let off = self.bit_len % 64;
        if off == 0 {
            self.words.push(v);
        } else {
            *self.words.last_mut().expect("off != 0 implies a word") |= v << off;
            if off + bits as usize > 64 {
                self.words.push(v >> (64 - off));
            }
        }
        self.bit_len += bits as usize;
    }

    fn bytes(&self) -> usize {
        self.bit_len.div_ceil(8)
    }
}

/// Reader over a [`BitWriter`]'s stream.
struct BitReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl BitReader<'_> {
    fn read(&mut self, bits: u32) -> u64 {
        if bits == 0 {
            return 0;
        }
        let word = self.pos / 64;
        let off = self.pos % 64;
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mut v = self.words[word] >> off;
        if off + bits as usize > 64 {
            v |= self.words[word + 1] << (64 - off);
        }
        self.pos += bits as usize;
        v & mask
    }
}

/// Gorilla-style XOR-compressed vector of `f64` readings.
#[derive(Debug, Clone, Default)]
pub struct CompressedDoubles {
    bits: BitWriter,
    len: usize,
    // Encoder state for appends.
    prev: u64,
    prev_lead: u32,
    prev_trail: u32,
}

impl CompressedDoubles {
    /// An empty vector.
    pub fn new() -> CompressedDoubles {
        CompressedDoubles::default()
    }

    /// Number of stored readings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no readings are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one reading.
    pub fn push(&mut self, v: f64) {
        let bits = v.to_bits();
        if self.len == 0 {
            self.bits.write(bits, 64);
            self.prev = bits;
            self.prev_lead = u32::MAX; // no window yet
            self.len = 1;
            return;
        }
        let xor = self.prev ^ bits;
        if xor == 0 {
            self.bits.write(0, 1);
        } else {
            self.bits.write(1, 1);
            let lead = xor.leading_zeros().min(31);
            let trail = xor.trailing_zeros();
            if self.prev_lead != u32::MAX && lead >= self.prev_lead && trail >= self.prev_trail {
                // Fits the previous meaningful-bit window: '0' + bits.
                self.bits.write(0, 1);
                let width = 64 - self.prev_lead - self.prev_trail;
                self.bits.write(xor >> self.prev_trail, width);
            } else {
                // New window: '1' + 5-bit lead + 6-bit (width - 1) + bits.
                // (width is in 1..=64, so width-1 fits 6 bits.)
                self.bits.write(1, 1);
                let width = 64 - lead - trail;
                self.bits.write(lead as u64, 5);
                self.bits.write(width as u64 - 1, 6);
                self.bits.write(xor >> trail, width);
                self.prev_lead = lead;
                self.prev_trail = trail;
            }
        }
        self.prev = bits;
        self.len += 1;
    }

    /// Decode every reading in order.
    pub fn iter(&self) -> CompressedIter<'_> {
        CompressedIter {
            reader: BitReader {
                words: &self.bits.words,
                pos: 0,
            },
            remaining: self.len,
            prev: 0,
            lead: 0,
            trail: 0,
            first: true,
        }
    }

    /// Append a repeat of the previous reading (costs a single bit).
    /// Equivalent to `push(last)`; panics if empty.
    pub fn push_repeat(&mut self) {
        assert!(self.len > 0, "push_repeat on empty vector");
        self.bits.write(0, 1);
        self.len += 1;
    }

    /// Compressed payload in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.bits.bytes()
    }
}

/// Decoding iterator for [`CompressedDoubles`].
pub struct CompressedIter<'a> {
    reader: BitReader<'a>,
    remaining: usize,
    prev: u64,
    lead: u32,
    trail: u32,
    first: bool,
}

impl Iterator for CompressedIter<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.first {
            self.first = false;
            self.prev = self.reader.read(64);
            return Some(f64::from_bits(self.prev));
        }
        if self.reader.read(1) == 1 {
            if self.reader.read(1) == 1 {
                self.lead = self.reader.read(5) as u32;
                let width = self.reader.read(6) as u32 + 1;
                self.trail = 64 - self.lead - width;
            }
            let width = 64 - self.lead - self.trail;
            let xor = self.reader.read(width) << self.trail;
            self.prev ^= xor;
        }
        Some(f64::from_bits(self.prev))
    }
}

/// A multi-series table over a shared equidistant time axis.
#[derive(Debug, Clone)]
pub struct TimeSeriesTable {
    name: String,
    /// First timestamp (microseconds since epoch).
    start_us: i64,
    /// Sampling interval (microseconds).
    interval_us: i64,
    compensation: Compensation,
    series_names: Vec<String>,
    series: Vec<CompressedDoubles>,
    present: Vec<RowIdBitmap>,
    points: usize,
}

impl TimeSeriesTable {
    /// Create a table with the given axis and per-table compensation.
    pub fn new(
        name: &str,
        start_us: i64,
        interval_us: i64,
        series_names: &[&str],
        compensation: Compensation,
    ) -> Result<TimeSeriesTable> {
        if interval_us <= 0 {
            return Err(HanaError::Config(
                "time series interval must be positive".into(),
            ));
        }
        if series_names.is_empty() {
            return Err(HanaError::Config(
                "time series table needs at least one series".into(),
            ));
        }
        Ok(TimeSeriesTable {
            name: name.to_string(),
            start_us,
            interval_us,
            compensation,
            series_names: series_names.iter().map(|s| s.to_string()).collect(),
            series: series_names
                .iter()
                .map(|_| CompressedDoubles::new())
                .collect(),
            present: series_names.iter().map(|_| RowIdBitmap::new(0)).collect(),
            points: 0,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.points
    }

    /// Whether the table has no points.
    pub fn is_empty(&self) -> bool {
        self.points == 0
    }

    /// Series names.
    pub fn series_names(&self) -> &[String] {
        &self.series_names
    }

    /// Timestamp (µs) of point `idx` — computed, never stored.
    pub fn timestamp(&self, idx: usize) -> i64 {
        self.start_us + idx as i64 * self.interval_us
    }

    /// Append one measurement per series for the next time point.
    /// `None` marks a missing measurement.
    pub fn push(&mut self, values: &[Option<f64>]) -> Result<()> {
        if values.len() != self.series.len() {
            return Err(HanaError::Execution(format!(
                "expected {} series values, got {}",
                self.series.len(),
                values.len()
            )));
        }
        for ((s, p), v) in self.series.iter_mut().zip(&mut self.present).zip(values) {
            p.grow(self.points + 1);
            match v {
                Some(x) => {
                    s.push(*x);
                    p.set(self.points);
                }
                // Encode missing points as a repeat of the previous value
                // (costs 1 bit); the presence bitmap masks them on read.
                None if s.is_empty() => s.push(0.0),
                None => s.push_repeat(),
            }
        }
        self.points += 1;
        Ok(())
    }

    /// Raw (uncompensated) reading of `series` at `idx`.
    pub fn raw(&self, series: usize, idx: usize) -> Option<f64> {
        if !self.present[series].get(idx) {
            return None;
        }
        self.series[series].iter().nth(idx)
    }

    /// Decode a whole series with compensation applied.
    pub fn series_values(&self, series: usize) -> Vec<Option<f64>> {
        let raw: Vec<Option<f64>> = self.series[series]
            .iter()
            .enumerate()
            .map(|(i, v)| self.present[series].get(i).then_some(v))
            .collect();
        match self.compensation {
            Compensation::None => raw,
            Compensation::Previous => {
                let mut last = None;
                raw.into_iter()
                    .map(|v| {
                        if v.is_some() {
                            last = v;
                        }
                        last
                    })
                    .collect()
            }
            Compensation::Linear => compensate_linear(&raw),
        }
    }

    /// Average of a series over the time range `[from_us, to_us)`,
    /// after compensation. `None` if no points fall in the range.
    pub fn avg(&self, series: usize, from_us: i64, to_us: i64) -> Option<f64> {
        let vals = self.series_values(series);
        let mut sum = 0.0;
        let mut n = 0usize;
        for (i, v) in vals.iter().enumerate() {
            let ts = self.timestamp(i);
            if ts >= from_us && ts < to_us {
                if let Some(x) = v {
                    sum += x;
                    n += 1;
                }
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Pearson correlation between two series (the paper's "correlation
    /// analysis between different sensors", §3.2), over compensated values
    /// at time points where both are defined.
    pub fn correlation(&self, a: usize, b: usize) -> Option<f64> {
        let (va, vb) = (self.series_values(a), self.series_values(b));
        let pairs: Vec<(f64, f64)> = va
            .iter()
            .zip(&vb)
            .filter_map(|(x, y)| Some(((*x)?, (*y)?)))
            .collect();
        let n = pairs.len() as f64;
        if n < 2.0 {
            return None;
        }
        let (mx, my) = (
            pairs.iter().map(|p| p.0).sum::<f64>() / n,
            pairs.iter().map(|p| p.1).sum::<f64>() / n,
        );
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (x, y) in &pairs {
            cov += (x - mx) * (y - my);
            vx += (x - mx) * (x - mx);
            vy += (y - my) * (y - my);
        }
        if vx == 0.0 || vy == 0.0 {
            return None;
        }
        Some(cov / (vx.sqrt() * vy.sqrt()))
    }

    /// Bytes used by the optimized time-series representation.
    pub fn compressed_bytes(&self) -> usize {
        // axis metadata + per-series payload + presence bitmaps
        24 + self
            .series
            .iter()
            .zip(&self.present)
            .map(|(s, p)| s.payload_bytes() + p.payload_bytes())
            .sum::<usize>()
    }

    /// Bytes a plain columnar layout would use: one 8-byte timestamp
    /// column plus 8 bytes + null byte per series value.
    pub fn plain_columnar_bytes(&self) -> usize {
        self.points * 8 + self.points * self.series.len() * 9
    }

    /// Bytes a row-oriented layout would use: 16-byte row header,
    /// 8-byte timestamp, 8 bytes per series value.
    pub fn row_layout_bytes(&self) -> usize {
        self.points * (16 + 8 + 8 * self.series.len())
    }
}

/// Linear interpolation between present neighbours; edges fall back to
/// the nearest present value.
fn compensate_linear(raw: &[Option<f64>]) -> Vec<Option<f64>> {
    let n = raw.len();
    let mut out = raw.to_vec();
    let mut i = 0usize;
    while i < n {
        if out[i].is_some() {
            i += 1;
            continue;
        }
        // Find the gap [i, j).
        let mut j = i;
        while j < n && out[j].is_none() {
            j += 1;
        }
        let left = i.checked_sub(1).and_then(|k| raw[k]);
        let right = (j < n).then(|| raw[j]).flatten();
        for (off, slot) in out.iter_mut().enumerate().take(j).skip(i) {
            *slot = match (left, right) {
                (Some(l), Some(r)) => {
                    let span = (j - i + 1) as f64;
                    let t = (off - i + 1) as f64 / span;
                    Some(l + (r - l) * t)
                }
                (Some(l), None) => Some(l),
                (None, Some(r)) => Some(r),
                (None, None) => None,
            };
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_compression_round_trips() {
        let vals = [230.0, 230.0, 230.1, 229.9, 231.5, 231.5, 0.0, -4.25, 1e300];
        let mut c = CompressedDoubles::new();
        for &v in &vals {
            c.push(v);
        }
        let out: Vec<f64> = c.iter().collect();
        assert_eq!(out, vals);
    }

    #[test]
    fn repeated_values_cost_one_bit() {
        let mut c = CompressedDoubles::new();
        for _ in 0..10_000 {
            c.push(42.5);
        }
        // 8 bytes for the first value + ~1 bit per repeat.
        assert!(
            c.payload_bytes() < 8 + 10_000 / 8 + 16,
            "{}",
            c.payload_bytes()
        );
    }

    fn meter_table(points: usize) -> TimeSeriesTable {
        let mut t = TimeSeriesTable::new(
            "meters",
            0,
            60_000_000, // one reading per minute
            &["power", "voltage"],
            Compensation::Linear,
        )
        .unwrap();
        for i in 0..points {
            // Plateau-heavy sensor signal with occasional gaps.
            let p = (i / 50) as f64 * 0.5 + 100.0;
            let v = 230.0 + ((i / 200) % 3) as f64 * 0.1;
            let gap = i % 97 == 0;
            t.push(&[(!gap).then_some(p), Some(v)]).unwrap();
        }
        t
    }

    #[test]
    fn implicit_axis_and_access() {
        let t = meter_table(500);
        assert_eq!(t.len(), 500);
        assert_eq!(t.timestamp(0), 0);
        assert_eq!(t.timestamp(10), 600_000_000);
        assert_eq!(t.raw(1, 3), Some(230.0));
        assert_eq!(t.raw(0, 0), None, "gap at i=0");
    }

    #[test]
    fn compensation_strategies() {
        let mut t = TimeSeriesTable::new("s", 0, 1, &["x"], Compensation::Previous).unwrap();
        for v in [Some(1.0), None, None, Some(4.0)] {
            t.push(&[v]).unwrap();
        }
        assert_eq!(
            t.series_values(0),
            vec![Some(1.0), Some(1.0), Some(1.0), Some(4.0)]
        );

        let mut t = TimeSeriesTable::new("s", 0, 1, &["x"], Compensation::Linear).unwrap();
        for v in [Some(1.0), None, None, Some(4.0)] {
            t.push(&[v]).unwrap();
        }
        assert_eq!(
            t.series_values(0),
            vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0)]
        );

        let mut t = TimeSeriesTable::new("s", 0, 1, &["x"], Compensation::None).unwrap();
        for v in [None, Some(2.0)] {
            t.push(&[v]).unwrap();
        }
        assert_eq!(t.series_values(0), vec![None, Some(2.0)]);
    }

    #[test]
    fn linear_edges_clamp() {
        let raw = [None, Some(2.0), None];
        assert_eq!(
            compensate_linear(&raw),
            vec![Some(2.0), Some(2.0), Some(2.0)]
        );
        assert_eq!(compensate_linear(&[None, None]), vec![None, None]);
    }

    #[test]
    fn figure2_compression_factors() {
        // The paper's Figure 2 claim: >10x vs row storage, >3x vs plain
        // columnar, on realistic (plateau-heavy) sensor data.
        let t = meter_table(50_000);
        let compressed = t.compressed_bytes();
        let row = t.row_layout_bytes();
        let col = t.plain_columnar_bytes();
        assert!(
            row as f64 / compressed as f64 > 10.0,
            "row/ts = {}",
            row as f64 / compressed as f64
        );
        assert!(
            col as f64 / compressed as f64 > 3.0,
            "col/ts = {}",
            col as f64 / compressed as f64
        );
    }

    #[test]
    fn aggregation_and_correlation() {
        let mut t = TimeSeriesTable::new("s", 0, 10, &["a", "b"], Compensation::None).unwrap();
        for i in 0..100 {
            let x = i as f64;
            t.push(&[Some(x), Some(2.0 * x + 1.0)]).unwrap();
        }
        // Average of 0..9 over the first 100us (indices 0..9).
        assert_eq!(t.avg(0, 0, 100), Some(4.5));
        assert!(t.avg(0, 10_000, 20_000).is_none());
        // Perfect linear relation -> correlation 1.
        let corr = t.correlation(0, 1).unwrap();
        assert!((corr - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constructor_validation() {
        assert!(TimeSeriesTable::new("s", 0, 0, &["x"], Compensation::None).is_err());
        assert!(TimeSeriesTable::new("s", 0, 1, &[], Compensation::None).is_err());
    }
}
