//! Column fragments: read-optimized main and write-optimized delta.

use hana_types::Value;

use crate::bitmap::RowIdBitmap;
use crate::codec::VidCodec;
use crate::dictionary::{DeltaDictionary, OrderedDictionary};
use crate::predicate::ColumnPredicate;

/// Read-optimized, immutable column fragment: an ordered dictionary plus
/// a compressed value-ID vector.
#[derive(Debug, Clone)]
pub struct MainColumn {
    dict: OrderedDictionary,
    codec: VidCodec,
}

impl MainColumn {
    /// An empty main fragment.
    pub fn empty() -> MainColumn {
        MainColumn {
            dict: OrderedDictionary::default(),
            codec: VidCodec::encode(&[]),
        }
    }

    /// Build from raw values (the delta-merge path).
    pub fn build(values: &[Value]) -> MainColumn {
        let dict = OrderedDictionary::build(values.iter());
        let vids: Vec<u32> = values
            .iter()
            .map(|v| dict.lookup(v).expect("value came from this input"))
            .collect();
        MainColumn {
            codec: VidCodec::encode(&vids),
            dict,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codec.len()
    }

    /// Whether the fragment has no rows.
    pub fn is_empty(&self) -> bool {
        self.codec.is_empty()
    }

    /// The value at `row`.
    pub fn get(&self, row: usize) -> Value {
        self.dict.decode(self.codec.get(row))
    }

    /// The fragment's ordered dictionary.
    pub fn dictionary(&self) -> &OrderedDictionary {
        &self.dict
    }

    /// The codec in use (exposed for stats and the ablation bench).
    pub fn codec(&self) -> &VidCodec {
        &self.codec
    }

    /// Scan: set bits at `offset + row` for matching rows.
    pub fn scan_into(&self, pred: &ColumnPredicate, out: &mut RowIdBitmap, offset: usize) {
        let m = pred.compile_ordered(&self.dict);
        self.codec.scan_into(&m, out, offset);
    }

    /// Scan restricted to fragment rows `start..end` (morsel-parallel
    /// path); equivalent to `scan_into` masked to that range.
    pub fn scan_range_into(
        &self,
        pred: &ColumnPredicate,
        out: &mut RowIdBitmap,
        offset: usize,
        start: usize,
        end: usize,
    ) {
        let m = pred.compile_ordered(&self.dict);
        self.codec.scan_range_into(&m, out, offset, start, end);
    }

    /// Approximate heap footprint in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.dict.payload_bytes() + self.codec.payload_bytes()
    }

    /// Extract all values (used by delta merge to rebuild fragments).
    pub fn materialize(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.len());
        self.codec
            .for_each(|_, vid| out.push(self.dict.decode(vid)));
        out
    }
}

/// Write-optimized column fragment: insertion-ordered dictionary plus an
/// uncompressed value-ID vector. Appends are `O(1)` amortized and never
/// reshuffle existing IDs, which is why the engine keeps a delta next to
/// each main fragment and merges periodically (§3.1).
#[derive(Debug, Clone, Default)]
pub struct DeltaColumn {
    dict: DeltaDictionary,
    vids: Vec<u32>,
}

impl DeltaColumn {
    /// An empty delta fragment.
    pub fn new() -> DeltaColumn {
        DeltaColumn::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.vids.len()
    }

    /// Whether the fragment has no rows.
    pub fn is_empty(&self) -> bool {
        self.vids.is_empty()
    }

    /// Append a value.
    pub fn append(&mut self, v: &Value) {
        let vid = self.dict.insert_or_get(v);
        self.vids.push(vid);
    }

    /// The value at `row`.
    pub fn get(&self, row: usize) -> Value {
        self.dict.decode(self.vids[row])
    }

    /// The fragment's dictionary.
    pub fn dictionary(&self) -> &DeltaDictionary {
        &self.dict
    }

    /// The raw (uncompressed) value-ID vector, one entry per row.
    ///
    /// Exposed so the executor's late-materializing group-by can key
    /// delta rows on vids without decoding values.
    pub fn vids(&self) -> &[u32] {
        &self.vids
    }

    /// Scan: set bits at `offset + row` for matching rows.
    pub fn scan_into(&self, pred: &ColumnPredicate, out: &mut RowIdBitmap, offset: usize) {
        let m = pred.compile_delta(&self.dict);
        if m.is_empty() {
            return;
        }
        for (row, &vid) in self.vids.iter().enumerate() {
            if m.test(vid) {
                out.set(offset + row);
            }
        }
    }

    /// Scan restricted to fragment rows `start..end` (morsel-parallel
    /// path); equivalent to `scan_into` masked to that range.
    pub fn scan_range_into(
        &self,
        pred: &ColumnPredicate,
        out: &mut RowIdBitmap,
        offset: usize,
        start: usize,
        end: usize,
    ) {
        let m = pred.compile_delta(&self.dict);
        let end = end.min(self.vids.len());
        if m.is_empty() || start >= end {
            return;
        }
        for (row, &vid) in self.vids[start..end].iter().enumerate() {
            if m.test(vid) {
                out.set(offset + start + row);
            }
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.dict.payload_bytes() + self.vids.len() * 4
    }

    /// Extract all values (used by delta merge).
    pub fn materialize(&self) -> Vec<Value> {
        self.vids.iter().map(|&vid| self.dict.decode(vid)).collect()
    }

    /// Drop all rows (after a delta merge).
    pub fn clear(&mut self) {
        *self = DeltaColumn::new();
    }
}

/// Uncompressed 8-bytes-per-value baseline used for the Figure 2
/// comparison ("more than a factor of 3 compared to columnar storage"
/// refers to time-series tables vs. this plain columnar layout).
pub fn plain_columnar_bytes(values: &[Value]) -> usize {
    values.iter().map(Value::storage_bytes).sum::<usize>() + values.len()
}

/// Row-oriented baseline: per-row header plus padded values (what a
/// disk-era row store spends, Figure 2's "factor of 10").
pub fn row_layout_bytes(rows: usize, schema_width: usize) -> usize {
    // 16-byte row header + 8 bytes per attribute slot.
    rows * (16 + 8 * schema_width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn main_column_round_trip() {
        let v = vals(&[5, 3, 5, 7, 3]);
        let m = MainColumn::build(&v);
        assert_eq!(m.len(), 5);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(&m.get(i), x);
        }
        assert_eq!(m.materialize(), v);
        assert_eq!(m.dictionary().len(), 3);
    }

    #[test]
    fn main_column_with_nulls() {
        let v = vec![Value::Int(1), Value::Null, Value::Int(2)];
        let m = MainColumn::build(&v);
        assert_eq!(m.get(1), Value::Null);
        let mut out = RowIdBitmap::new(3);
        m.scan_into(&ColumnPredicate::IsNull, &mut out, 0);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![1]);
        let mut out = RowIdBitmap::new(3);
        m.scan_into(&ColumnPredicate::IsNotNull, &mut out, 0);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn delta_column_append_and_scan() {
        let mut d = DeltaColumn::new();
        for v in vals(&[9, 2, 9, 4]) {
            d.append(&v);
        }
        d.append(&Value::Null);
        assert_eq!(d.len(), 5);
        assert_eq!(d.get(0), Value::Int(9));
        assert_eq!(d.get(4), Value::Null);
        let mut out = RowIdBitmap::new(5);
        d.scan_into(&ColumnPredicate::Ge(Value::Int(4)), &mut out, 0);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn main_and_delta_scans_agree() {
        let v = vals(&[1, 4, 2, 8, 5, 7, 1, 1, 3]);
        let m = MainColumn::build(&v);
        let mut d = DeltaColumn::new();
        for x in &v {
            d.append(x);
        }
        for pred in [
            ColumnPredicate::Eq(Value::Int(1)),
            ColumnPredicate::Between(Value::Int(2), Value::Int(5)),
            ColumnPredicate::Ne(Value::Int(1)),
            ColumnPredicate::InList(vals(&[4, 7])),
        ] {
            let mut a = RowIdBitmap::new(v.len());
            let mut b = RowIdBitmap::new(v.len());
            m.scan_into(&pred, &mut a, 0);
            d.scan_into(&pred, &mut b, 0);
            assert_eq!(a, b, "{pred:?}");
        }
    }

    #[test]
    fn dictionary_compression_shrinks_repetitive_data() {
        // 10k rows, 16 distinct strings: dictionary + bit packing must be
        // far below the naive columnar layout.
        let values: Vec<Value> = (0..10_000)
            .map(|i| Value::from(format!("region-{:02}", i % 16)))
            .collect();
        let m = MainColumn::build(&values);
        let plain = plain_columnar_bytes(&values);
        assert!(
            m.payload_bytes() * 5 < plain,
            "main {} vs plain {plain}",
            m.payload_bytes()
        );
    }
}
