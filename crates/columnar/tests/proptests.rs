//! Property-based tests for the column-store invariants.

use hana_columnar::{
    BitPackedVec, ColumnPredicate, ColumnTable, CompressedDoubles, MainColumn, RowIdBitmap,
    VidCodec,
};
use hana_types::{DataType, Schema, Value};
use proptest::prelude::*;

proptest! {
    /// Bit packing is lossless for any width/value combination.
    #[test]
    fn bitpack_round_trip(values in prop::collection::vec(0u64..1_000_000, 0..300)) {
        let packed = BitPackedVec::from_slice(&values);
        prop_assert_eq!(packed.iter().collect::<Vec<_>>(), values);
    }

    /// Every codec decodes to exactly the value IDs it was given.
    #[test]
    fn codec_round_trip(vids in prop::collection::vec(0u32..64, 0..500)) {
        let c = VidCodec::encode(&vids);
        prop_assert_eq!(c.len(), vids.len());
        for (i, &v) in vids.iter().enumerate() {
            prop_assert_eq!(c.get(i), v);
        }
    }

    /// A codec scan equals a scalar scan of the decoded values.
    #[test]
    fn codec_scan_matches_naive(
        vids in prop::collection::vec(0u32..16, 1..400),
        lo in 0u32..16,
        span in 0u32..16,
    ) {
        let hi = lo.saturating_add(span);
        let m = hana_columnar::VidMatch::range(lo.max(1), hi);
        let c = VidCodec::encode(&vids);
        let mut out = RowIdBitmap::new(vids.len());
        c.scan_into(&m, &mut out, 0);
        let expected: Vec<usize> = vids.iter().enumerate()
            .filter(|&(_, &v)| v >= lo.max(1) && v <= hi)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(out.iter().collect::<Vec<_>>(), expected);
    }

    /// XOR compression of doubles is lossless, including specials.
    #[test]
    fn gorilla_round_trip(values in prop::collection::vec(
        prop_oneof![
            any::<f64>().prop_filter("no NaN (NaN != NaN)", |v| !v.is_nan()),
            (-1000i64..1000).prop_map(|i| i as f64 / 4.0),
        ],
        0..200,
    )) {
        let mut c = CompressedDoubles::new();
        for &v in &values {
            c.push(v);
        }
        let out: Vec<f64> = c.iter().collect();
        prop_assert_eq!(out.len(), values.len());
        for (a, b) in out.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Table scans return exactly the visible rows whose value matches,
    /// before and after a delta merge.
    #[test]
    fn table_scan_matches_naive(
        rows in prop::collection::vec((0i64..40, 0u8..3), 1..200),
        lo in 0i64..40,
        span in 0i64..10,
        merge in any::<bool>(),
    ) {
        let mut t = ColumnTable::new("p", Schema::of(&[("v", DataType::Int)]));
        let mut deleted = Vec::new();
        for (i, &(v, action)) in rows.iter().enumerate() {
            t.insert(&[Value::Int(v)], 1).unwrap();
            if action == 2 {
                t.delete(i, 2).unwrap();
                deleted.push(i);
            }
        }
        if merge {
            t.merge_delta();
        }
        let hi = lo + span;
        let pred = ColumnPredicate::Between(Value::Int(lo), Value::Int(hi));
        let got = t.scan(0, &pred, 5).unwrap();
        let expected: Vec<usize> = rows.iter().enumerate()
            .filter(|&(i, &(v, _))| !deleted.contains(&i) && v >= lo && v <= hi)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got.iter().collect::<Vec<_>>(), expected);
    }

    /// Delta merge never changes query results or stored values.
    #[test]
    fn merge_is_transparent(values in prop::collection::vec(0i64..100, 1..300)) {
        let mut t = ColumnTable::new("p", Schema::of(&[("v", DataType::Int)]));
        for &v in &values {
            t.insert(&[Value::Int(v)], 1).unwrap();
        }
        let before: Vec<Value> = (0..values.len()).map(|r| t.value(r, 0)).collect();
        t.merge_delta();
        let after: Vec<Value> = (0..values.len()).map(|r| t.value(r, 0)).collect();
        prop_assert_eq!(before, after);
    }

    /// MainColumn::build + materialize is the identity (nulls included).
    #[test]
    fn main_column_identity(values in prop::collection::vec(
        prop_oneof![
            Just(Value::Null),
            (0i64..50).prop_map(Value::Int),
            "[a-c]{0,3}".prop_map(Value::from),
        ],
        0..200,
    )) {
        let m = MainColumn::build(&values);
        prop_assert_eq!(m.materialize(), values);
    }
}
