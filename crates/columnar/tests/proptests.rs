//! Property-based tests for the column-store invariants.

use hana_columnar::{
    BitPackedVec, ColumnPredicate, ColumnTable, CompressedDoubles, MainColumn, RowIdBitmap,
    VidCodec,
};
use hana_exec::{ExecConfig, ExecContext};
use hana_types::{DataType, Schema, Value};
use proptest::prelude::*;

proptest! {
    /// Bit packing is lossless for any width/value combination.
    #[test]
    fn bitpack_round_trip(values in prop::collection::vec(0u64..1_000_000, 0..300)) {
        let packed = BitPackedVec::from_slice(&values);
        prop_assert_eq!(packed.iter().collect::<Vec<_>>(), values);
    }

    /// Every codec decodes to exactly the value IDs it was given.
    #[test]
    fn codec_round_trip(vids in prop::collection::vec(0u32..64, 0..500)) {
        let c = VidCodec::encode(&vids);
        prop_assert_eq!(c.len(), vids.len());
        for (i, &v) in vids.iter().enumerate() {
            prop_assert_eq!(c.get(i), v);
        }
    }

    /// A codec scan equals a scalar scan of the decoded values.
    #[test]
    fn codec_scan_matches_naive(
        vids in prop::collection::vec(0u32..16, 1..400),
        lo in 0u32..16,
        span in 0u32..16,
    ) {
        let hi = lo.saturating_add(span);
        let m = hana_columnar::VidMatch::range(lo.max(1), hi);
        let c = VidCodec::encode(&vids);
        let mut out = RowIdBitmap::new(vids.len());
        c.scan_into(&m, &mut out, 0);
        let expected: Vec<usize> = vids.iter().enumerate()
            .filter(|&(_, &v)| v >= lo.max(1) && v <= hi)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(out.iter().collect::<Vec<_>>(), expected);
    }

    /// XOR compression of doubles is lossless, including specials.
    #[test]
    fn gorilla_round_trip(values in prop::collection::vec(
        prop_oneof![
            any::<f64>().prop_filter("no NaN (NaN != NaN)", |v| !v.is_nan()),
            (-1000i64..1000).prop_map(|i| i as f64 / 4.0),
        ],
        0..200,
    )) {
        let mut c = CompressedDoubles::new();
        for &v in &values {
            c.push(v);
        }
        let out: Vec<f64> = c.iter().collect();
        prop_assert_eq!(out.len(), values.len());
        for (a, b) in out.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Table scans return exactly the visible rows whose value matches,
    /// before and after a delta merge.
    #[test]
    fn table_scan_matches_naive(
        rows in prop::collection::vec((0i64..40, 0u8..3), 1..200),
        lo in 0i64..40,
        span in 0i64..10,
        merge in any::<bool>(),
    ) {
        let mut t = ColumnTable::new("p", Schema::of(&[("v", DataType::Int)]));
        let mut deleted = Vec::new();
        for (i, &(v, action)) in rows.iter().enumerate() {
            t.insert(&[Value::Int(v)], 1).unwrap();
            if action == 2 {
                t.delete(i, 2).unwrap();
                deleted.push(i);
            }
        }
        if merge {
            t.merge_delta();
        }
        let hi = lo + span;
        let pred = ColumnPredicate::Between(Value::Int(lo), Value::Int(hi));
        let got = t.scan(0, &pred, 5).unwrap();
        let expected: Vec<usize> = rows.iter().enumerate()
            .filter(|&(i, &(v, _))| !deleted.contains(&i) && v >= lo && v <= hi)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got.iter().collect::<Vec<_>>(), expected);
    }

    /// Delta merge never changes query results or stored values.
    #[test]
    fn merge_is_transparent(values in prop::collection::vec(0i64..100, 1..300)) {
        let mut t = ColumnTable::new("p", Schema::of(&[("v", DataType::Int)]));
        for &v in &values {
            t.insert(&[Value::Int(v)], 1).unwrap();
        }
        let before: Vec<Value> = (0..values.len()).map(|r| t.value(r, 0)).collect();
        t.merge_delta();
        let after: Vec<Value> = (0..values.len()).map(|r| t.value(r, 0)).collect();
        prop_assert_eq!(before, after);
    }

    /// Morsel-parallel scans return the exact bitmap of the serial scan
    /// for any table shape: delta-only, merged main, deletions, and any
    /// worker count. Tiny morsels force multi-morsel coverage.
    #[test]
    fn par_scan_matches_serial(
        rows in prop::collection::vec((0i64..40, 0u8..3), 1..400),
        lo in 0i64..40,
        span in 0i64..10,
        merge in any::<bool>(),
        workers in 1usize..5,
    ) {
        let mut t = ColumnTable::new("p", Schema::of(&[("v", DataType::Int)]));
        for (i, &(v, action)) in rows.iter().enumerate() {
            t.insert(&[Value::Int(v)], 1).unwrap();
            if action == 2 {
                t.delete(i, 2).unwrap();
            }
        }
        if merge {
            t.merge_delta();
        }
        let pred = ColumnPredicate::Between(Value::Int(lo), Value::Int(lo + span));
        let serial = t.scan(0, &pred, 5).unwrap();
        let exec = ExecContext::new(
            ExecConfig::default().with_workers(workers).with_morsel_rows(64),
        );
        let parallel = t.par_scan(&exec, 0, &pred, 5).unwrap();
        prop_assert_eq!(parallel, serial);
    }

    /// Conjunctive parallel scans match the serial intersection scan.
    #[test]
    fn par_scan_all_matches_serial(
        rows in prop::collection::vec((0i64..20, 0i64..20, 0u8..3), 1..300),
        a_lo in 0i64..20,
        b_lo in 0i64..20,
        merge in any::<bool>(),
    ) {
        let mut t = ColumnTable::new(
            "p",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
        );
        for (i, &(a, b, action)) in rows.iter().enumerate() {
            t.insert(&[Value::Int(a), Value::Int(b)], 1).unwrap();
            if action == 2 {
                t.delete(i, 2).unwrap();
            }
        }
        if merge {
            t.merge_delta();
        }
        let preds = vec![
            (0, ColumnPredicate::Between(Value::Int(a_lo), Value::Int(a_lo + 6))),
            (1, ColumnPredicate::Between(Value::Int(b_lo), Value::Int(b_lo + 6))),
        ];
        let serial = t.scan_all(&preds, 5).unwrap();
        let exec = ExecContext::new(
            ExecConfig::default().with_workers(3).with_morsel_rows(64),
        );
        let parallel = t.par_scan_all(&exec, &preds, 5).unwrap();
        prop_assert_eq!(parallel, serial);
    }

    /// MainColumn::build + materialize is the identity (nulls included).
    #[test]
    fn main_column_identity(values in prop::collection::vec(
        prop_oneof![
            Just(Value::Null),
            (0i64..50).prop_map(Value::Int),
            "[a-c]{0,3}".prop_map(Value::from),
        ],
        0..200,
    )) {
        let m = MainColumn::build(&values);
        prop_assert_eq!(m.materialize(), values);
    }
}

/// With a single worker every morsel runs on the same thread in queue
/// order, so repeated parallel scans must be bit-identical — and equal
/// to the serial scan.
#[test]
fn single_worker_par_scan_is_deterministic() {
    let mut t = ColumnTable::new("p", Schema::of(&[("v", DataType::Int)]));
    for i in 0..1_000i64 {
        t.insert(&[Value::Int(i % 97)], 1).unwrap();
    }
    t.merge_delta();
    for i in 1_000..1_300i64 {
        t.insert(&[Value::Int(i % 97)], 1).unwrap();
    }
    let pred = ColumnPredicate::Between(Value::Int(10), Value::Int(40));
    let serial = t.scan(0, &pred, 5).unwrap();
    let exec = ExecContext::new(ExecConfig::default().with_workers(1).with_morsel_rows(64));
    let first = t.par_scan(&exec, 0, &pred, 5).unwrap();
    assert_eq!(first, serial);
    for _ in 0..10 {
        assert_eq!(t.par_scan(&exec, 0, &pred, 5).unwrap(), first);
    }
}
