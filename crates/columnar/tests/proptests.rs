//! Property-based tests for the column-store invariants.

use hana_columnar::{
    BitPackedVec, ColumnPredicate, ColumnTable, CompressedDoubles, MainColumn, MatchKind,
    RowIdBitmap, VidCodec, VidMatch, BLOCK_ROWS,
};
use hana_exec::{ExecConfig, ExecContext};
use hana_types::{DataType, Schema, Value};
use proptest::prelude::*;

proptest! {
    /// Bit packing is lossless for any width/value combination.
    #[test]
    fn bitpack_round_trip(values in prop::collection::vec(0u64..1_000_000, 0..300)) {
        let packed = BitPackedVec::from_slice(&values);
        prop_assert_eq!(packed.iter().collect::<Vec<_>>(), values);
    }

    /// Every codec decodes to exactly the value IDs it was given.
    #[test]
    fn codec_round_trip(vids in prop::collection::vec(0u32..64, 0..500)) {
        let c = VidCodec::encode(&vids);
        prop_assert_eq!(c.len(), vids.len());
        for (i, &v) in vids.iter().enumerate() {
            prop_assert_eq!(c.get(i), v);
        }
    }

    /// A codec scan equals a scalar scan of the decoded values.
    #[test]
    fn codec_scan_matches_naive(
        vids in prop::collection::vec(0u32..16, 1..400),
        lo in 0u32..16,
        span in 0u32..16,
    ) {
        let hi = lo.saturating_add(span);
        let m = hana_columnar::VidMatch::range(lo.max(1), hi);
        let c = VidCodec::encode(&vids);
        let mut out = RowIdBitmap::new(vids.len());
        c.scan_into(&m, &mut out, 0);
        let expected: Vec<usize> = vids.iter().enumerate()
            .filter(|&(_, &v)| v >= lo.max(1) && v <= hi)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(out.iter().collect::<Vec<_>>(), expected);
    }

    /// XOR compression of doubles is lossless, including specials.
    #[test]
    fn gorilla_round_trip(values in prop::collection::vec(
        prop_oneof![
            any::<f64>().prop_filter("no NaN (NaN != NaN)", |v| !v.is_nan()),
            (-1000i64..1000).prop_map(|i| i as f64 / 4.0),
        ],
        0..200,
    )) {
        let mut c = CompressedDoubles::new();
        for &v in &values {
            c.push(v);
        }
        let out: Vec<f64> = c.iter().collect();
        prop_assert_eq!(out.len(), values.len());
        for (a, b) in out.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Table scans return exactly the visible rows whose value matches,
    /// before and after a delta merge.
    #[test]
    fn table_scan_matches_naive(
        rows in prop::collection::vec((0i64..40, 0u8..3), 1..200),
        lo in 0i64..40,
        span in 0i64..10,
        merge in any::<bool>(),
    ) {
        let mut t = ColumnTable::new("p", Schema::of(&[("v", DataType::Int)]));
        let mut deleted = Vec::new();
        for (i, &(v, action)) in rows.iter().enumerate() {
            t.insert(&[Value::Int(v)], 1).unwrap();
            if action == 2 {
                t.delete(i, 2).unwrap();
                deleted.push(i);
            }
        }
        if merge {
            t.merge_delta();
        }
        let hi = lo + span;
        let pred = ColumnPredicate::Between(Value::Int(lo), Value::Int(hi));
        let got = t.scan(0, &pred, 5).unwrap();
        let expected: Vec<usize> = rows.iter().enumerate()
            .filter(|&(i, &(v, _))| !deleted.contains(&i) && v >= lo && v <= hi)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got.iter().collect::<Vec<_>>(), expected);
    }

    /// Delta merge never changes query results or stored values.
    #[test]
    fn merge_is_transparent(values in prop::collection::vec(0i64..100, 1..300)) {
        let mut t = ColumnTable::new("p", Schema::of(&[("v", DataType::Int)]));
        for &v in &values {
            t.insert(&[Value::Int(v)], 1).unwrap();
        }
        let before: Vec<Value> = (0..values.len()).map(|r| t.value(r, 0)).collect();
        t.merge_delta();
        let after: Vec<Value> = (0..values.len()).map(|r| t.value(r, 0)).collect();
        prop_assert_eq!(before, after);
    }

    /// Morsel-parallel scans return the exact bitmap of the serial scan
    /// for any table shape: delta-only, merged main, deletions, and any
    /// worker count. Tiny morsels force multi-morsel coverage.
    #[test]
    fn par_scan_matches_serial(
        rows in prop::collection::vec((0i64..40, 0u8..3), 1..400),
        lo in 0i64..40,
        span in 0i64..10,
        merge in any::<bool>(),
        workers in 1usize..5,
    ) {
        let mut t = ColumnTable::new("p", Schema::of(&[("v", DataType::Int)]));
        for (i, &(v, action)) in rows.iter().enumerate() {
            t.insert(&[Value::Int(v)], 1).unwrap();
            if action == 2 {
                t.delete(i, 2).unwrap();
            }
        }
        if merge {
            t.merge_delta();
        }
        let pred = ColumnPredicate::Between(Value::Int(lo), Value::Int(lo + span));
        let serial = t.scan(0, &pred, 5).unwrap();
        let exec = ExecContext::new(
            ExecConfig::default().with_workers(workers).with_morsel_rows(64),
        );
        let parallel = t.par_scan(&exec, 0, &pred, 5).unwrap();
        prop_assert_eq!(parallel, serial);
    }

    /// Conjunctive parallel scans match the serial intersection scan.
    #[test]
    fn par_scan_all_matches_serial(
        rows in prop::collection::vec((0i64..20, 0i64..20, 0u8..3), 1..300),
        a_lo in 0i64..20,
        b_lo in 0i64..20,
        merge in any::<bool>(),
    ) {
        let mut t = ColumnTable::new(
            "p",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
        );
        for (i, &(a, b, action)) in rows.iter().enumerate() {
            t.insert(&[Value::Int(a), Value::Int(b)], 1).unwrap();
            if action == 2 {
                t.delete(i, 2).unwrap();
            }
        }
        if merge {
            t.merge_delta();
        }
        let preds = vec![
            (0, ColumnPredicate::Between(Value::Int(a_lo), Value::Int(a_lo + 6))),
            (1, ColumnPredicate::Between(Value::Int(b_lo), Value::Int(b_lo + 6))),
        ];
        let serial = t.scan_all(&preds, 5).unwrap();
        let exec = ExecContext::new(
            ExecConfig::default().with_workers(3).with_morsel_rows(64),
        );
        let parallel = t.par_scan_all(&exec, &preds, 5).unwrap();
        prop_assert_eq!(parallel, serial);
    }

    /// Bulk bit-unpacking reproduces per-element `get` for every bit
    /// width (the mask varies the packed width from 0 to 64 bits) and
    /// straddling every block boundary: lengths one short of, exactly
    /// at, and one past [`BLOCK_ROWS`].
    #[test]
    fn unpack_range_matches_get(
        seed in prop::collection::vec(any::<u64>(), 1..64),
        width in 0u32..65,
        len_sel in 0usize..4,
        start_frac in 0usize..1000,
    ) {
        let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
        let len = [BLOCK_ROWS - 1, BLOCK_ROWS, BLOCK_ROWS + 1, 777][len_sel];
        let values: Vec<u64> = (0..len).map(|i| seed[i % seed.len()] & mask).collect();
        let packed = BitPackedVec::from_slice(&values);
        prop_assert_eq!(packed.get_range(0, len), values.clone());
        let start = start_frac * len / 1000;
        prop_assert_eq!(&packed.get_range(start, len)[..], &values[start..]);
    }

    /// Blockwise vid decoding agrees with per-element `get` for every
    /// codec representation (the three data shapes steer `encode`
    /// toward Plain, RLE, and Sparse respectively).
    #[test]
    fn unpack_block_matches_get(
        shape in 0u8..3,
        seed in prop::collection::vec(0u32..40, 1..32),
        len_sel in 0usize..4,
    ) {
        let len = [BLOCK_ROWS - 1, BLOCK_ROWS, BLOCK_ROWS + 1, 2300][len_sel];
        let vids: Vec<u32> = (0..len)
            .map(|i| match shape {
                0 => seed[i % seed.len()],
                1 => seed[(i / 113) % seed.len()],
                _ if i % 59 == 0 => seed[i % seed.len()],
                _ => 3,
            })
            .collect();
        let c = VidCodec::encode(&vids);
        let mut buf = [0u32; BLOCK_ROWS];
        for b in 0..len.div_ceil(BLOCK_ROWS) {
            let n = c.unpack_block(b, &mut buf);
            let base = b * BLOCK_ROWS;
            prop_assert_eq!(n, (len - base).min(BLOCK_ROWS));
            for (i, &v) in buf[..n].iter().enumerate() {
                prop_assert_eq!(v, vids[base + i]);
            }
        }
    }

    /// The vectorized skip-scan (synopsis pruning + bulk unpacking) is
    /// bit-identical to the scalar reference scan for every codec
    /// representation, every match shape (Empty / Range / Mask, with
    /// and without NULL matching), full scans, and arbitrary
    /// morsel-style subranges.
    #[test]
    fn vectorized_scan_matches_scalar(
        shape in 0u8..3,
        seed in prop::collection::vec(0u32..40, 1..32),
        len in 1usize..2600,
        match_sel in 0u8..3,
        lo in 1u32..40,
        span in 0u32..12,
        null_matches in any::<bool>(),
        mask_bits in prop::collection::vec(any::<bool>(), 40usize),
        a in 0usize..2600,
        b in 0usize..2600,
    ) {
        let vids: Vec<u32> = (0..len)
            .map(|i| match shape {
                0 => seed[i % seed.len()],
                1 => seed[(i / 113) % seed.len()],
                _ if i % 59 == 0 => seed[i % seed.len()],
                _ => 3,
            })
            .collect();
        let c = VidCodec::encode(&vids);
        let kind = match match_sel {
            0 => MatchKind::Empty,
            1 => MatchKind::Range(lo, lo + span),
            _ => MatchKind::Mask(mask_bits.clone()),
        };
        let m = VidMatch { null_matches, kind };

        let mut fast = RowIdBitmap::new(len);
        let mut slow = RowIdBitmap::new(len);
        c.scan_into(&m, &mut fast, 0);
        c.scan_into_scalar(&m, &mut slow, 0);
        prop_assert_eq!(&fast, &slow);

        let (s, e) = (a % (len + 1), b % (len + 1));
        let (start, end) = (s.min(e), s.max(e));
        let mut fast = RowIdBitmap::new(len);
        let mut slow = RowIdBitmap::new(len);
        c.scan_range_into(&m, &mut fast, 0, start, end);
        c.scan_range_into_scalar(&m, &mut slow, 0, start, end);
        prop_assert_eq!(&fast, &slow);
    }

    /// MainColumn::build + materialize is the identity (nulls included).
    #[test]
    fn main_column_identity(values in prop::collection::vec(
        prop_oneof![
            Just(Value::Null),
            (0i64..50).prop_map(Value::Int),
            "[a-c]{0,3}".prop_map(Value::from),
        ],
        0..200,
    )) {
        let m = MainColumn::build(&values);
        prop_assert_eq!(m.materialize(), values);
    }
}

/// With a single worker every morsel runs on the same thread in queue
/// order, so repeated parallel scans must be bit-identical — and equal
/// to the serial scan.
#[test]
fn single_worker_par_scan_is_deterministic() {
    let mut t = ColumnTable::new("p", Schema::of(&[("v", DataType::Int)]));
    for i in 0..1_000i64 {
        t.insert(&[Value::Int(i % 97)], 1).unwrap();
    }
    t.merge_delta();
    for i in 1_000..1_300i64 {
        t.insert(&[Value::Int(i % 97)], 1).unwrap();
    }
    let pred = ColumnPredicate::Between(Value::Int(10), Value::Int(40));
    let serial = t.scan(0, &pred, 5).unwrap();
    let exec = ExecContext::new(ExecConfig::default().with_workers(1).with_morsel_rows(64));
    let first = t.par_scan(&exec, 0, &pred, 5).unwrap();
    assert_eq!(first, serial);
    for _ in 0..10 {
        assert_eq!(t.par_scan(&exec, 0, &pred, 5).unwrap(), first);
    }
}

/// Seek/scan equivalence helper: compare an `index_seek` against the
/// full-scan answer for the equivalent predicate set.
fn assert_seek_matches_scan(
    t: &ColumnTable,
    prefix: &[Value],
    range: Option<&ColumnPredicate>,
    cid: u64,
) {
    let seek: Vec<usize> = t
        .index_seek("ix", prefix, range, cid)
        .unwrap()
        .iter()
        .collect();
    let mut preds: Vec<(usize, ColumnPredicate)> = prefix
        .iter()
        .enumerate()
        .map(|(i, v)| (i, ColumnPredicate::Eq(v.clone())))
        .collect();
    if let Some(p) = range {
        preds.push((prefix.len(), p.clone()));
    }
    let scan: Vec<usize> = t.scan_all(&preds, cid).unwrap().iter().collect();
    assert_eq!(seek, scan, "prefix {prefix:?} range {range:?} cid {cid}");
}

proptest! {
    /// An index seek returns exactly the rows the equivalent full scan
    /// returns — across delta-resident rows, a mid-stream merge,
    /// post-index DML (inserts and deletes), null keys, point and range
    /// probes, and every snapshot cid.
    #[test]
    fn index_seek_matches_scan(
        keys in prop::collection::vec(
            (prop_oneof![Just(-1i64), 0i64..6], 0u8..3),
            1..80,
        ),
        deletes in prop::collection::vec(0usize..1_000, 0..12),
        merge_pct in 0usize..100,
        probe_a in prop_oneof![Just(-1i64), 0i64..6],
        probe_b in 0u8..3,
        range_sel in 0usize..6,
        lo in 0i64..6,
        span in 0i64..3,
    ) {
        let schema = Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Varchar),
            ("v", DataType::Int),
        ]);
        let mut t = ColumnTable::new("t", schema);
        // Index created up front: inserts must maintain the delta side,
        // and the mid-stream merge must rebuild the main side.
        t.create_index("ix", &["a".into(), "b".into()]).unwrap();
        let n = keys.len();
        let merge_at = n * merge_pct / 100;
        // The sentinel -1 stands in for a NULL key.
        let int_or_null = |v: i64| if v < 0 { Value::Null } else { Value::Int(v) };
        for (i, (a, b)) in keys.iter().enumerate() {
            t.insert(
                &[int_or_null(*a), Value::from(format!("g{b}")), Value::Int(i as i64)],
                (i + 1) as u64,
            )
            .unwrap();
            if i + 1 == merge_at {
                t.merge_delta();
            }
        }
        let del_cid = (n + 1) as u64;
        for d in &deletes {
            // Repeated indices double-delete; that error is irrelevant
            // here.
            let _ = t.delete(d % n, del_cid);
        }

        let pa = int_or_null(probe_a);
        let pb = Value::from(format!("g{probe_b}"));
        let glo = Value::from(format!("g{lo}"));
        let ghi = Value::from(format!("g{}", (lo + span).min(5)));
        let range: Option<ColumnPredicate> = match range_sel {
            0 => None,
            1 => Some(ColumnPredicate::Lt(ghi.clone())),
            2 => Some(ColumnPredicate::Le(ghi.clone())),
            3 => Some(ColumnPredicate::Gt(glo.clone())),
            4 => Some(ColumnPredicate::Ge(glo.clone())),
            _ => Some(ColumnPredicate::Between(glo.clone(), ghi.clone())),
        };
        // Snapshots: mid-insert, fully inserted, and post-delete.
        for cid in [(n as u64).div_ceil(2), n as u64, del_cid] {
            // Point probe on the full key.
            assert_seek_matches_scan(&t, &[pa.clone(), pb.clone()], None, cid);
            // Eq prefix plus optional range on the next key column.
            assert_seek_matches_scan(&t, std::slice::from_ref(&pa), range.as_ref(), cid);
            // Pure range on the leading key column (empty prefix).
            let arange = ColumnPredicate::Between(Value::Int(lo), Value::Int(lo + span));
            assert_seek_matches_scan(&t, &[], Some(&arange), cid);
        }
        // Post-delete merge: visibility survives the rebuild.
        t.merge_delta();
        assert_seek_matches_scan(&t, &[pa, pb], None, del_cid);
    }
}
