//! Integration tests for the extended-storage engine: scans, pushdown,
//! transactions and failure injection.

use std::sync::Arc;

use hana_columnar::ColumnPredicate;
use hana_iq::{IqEngine, IqPlan};
use hana_txn::{TransactionManager, TwoPhaseParticipant};
use hana_types::{AggFunc, DataType, Row, Schema, Value};

fn orders_schema() -> Schema {
    Schema::of(&[
        ("o_id", DataType::Int),
        ("o_status", DataType::Varchar),
        ("o_total", DataType::Double),
    ])
}

fn order_rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::from_values([
                Value::Int(i as i64),
                Value::from(if i % 3 == 0 { "OPEN" } else { "DONE" }),
                Value::Double(i as f64 * 1.5),
            ])
        })
        .collect()
}

fn engine_with_data(n: usize) -> IqEngine {
    let iq = IqEngine::new("iq-test", 256).unwrap();
    iq.create_table("orders", orders_schema()).unwrap();
    iq.direct_load("orders", &order_rows(n), 1).unwrap();
    iq
}

#[test]
fn scan_with_predicates_and_projection() {
    let iq = engine_with_data(10_000);
    let rs = iq
        .scan(
            "orders",
            &[
                ("o_status".into(), ColumnPredicate::Eq(Value::from("OPEN"))),
                ("o_total".into(), ColumnPredicate::Lt(Value::Double(15.0))),
            ],
            Some(&["o_id".to_string()]),
            1,
        )
        .unwrap();
    // OPEN rows are multiples of 3; o_total < 15 means id < 10.
    let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(ids, vec![0, 3, 6, 9]);
    assert_eq!(rs.schema.len(), 1);
}

#[test]
fn zone_maps_prune_chunks() {
    let iq = engine_with_data(20_000); // 5 chunks of 4096
    iq.scan(
        "orders",
        &[(
            "o_id".into(),
            ColumnPredicate::Between(Value::Int(0), Value::Int(100)),
        )],
        None,
        1,
    )
    .unwrap();
    let pruned = iq
        .stats
        .chunks_pruned
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        pruned >= 4,
        "expected at least 4 pruned chunks, got {pruned}"
    );
}

#[test]
fn bitmap_index_answers_equality() {
    let iq = engine_with_data(4000);
    iq.scan(
        "orders",
        &[("o_status".into(), ColumnPredicate::Eq(Value::from("OPEN")))],
        Some(&["o_status".to_string()]),
        1,
    )
    .unwrap();
    let hits = iq
        .stats
        .bitmap_index_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(hits >= 1, "status equality should use the bitmap index");
}

#[test]
fn pushed_down_group_by_matches_manual() {
    let iq = engine_with_data(5000);
    let plan = IqPlan::Aggregate {
        input: Box::new(IqPlan::scan("orders")),
        group_by: vec!["o_status".into()],
        aggregates: vec![
            (AggFunc::CountStar, None),
            (AggFunc::Sum, Some("o_total".into())),
        ],
    };
    let rs = iq.execute(&plan, 1).unwrap();
    assert_eq!(rs.len(), 2);
    let done = rs
        .rows
        .iter()
        .find(|r| r[0] == Value::from("DONE"))
        .unwrap();
    // 5000 rows, every 3rd is OPEN -> 1667 OPEN, 3333 DONE.
    assert_eq!(done[1], Value::Int(3333));
}

#[test]
fn join_and_sort_and_limit_pushdown() {
    let iq = engine_with_data(100);
    iq.create_table(
        "status_names",
        Schema::of(&[("code", DataType::Varchar), ("label", DataType::Varchar)]),
    )
    .unwrap();
    iq.direct_load(
        "status_names",
        &[
            Row::from_values([Value::from("OPEN"), Value::from("In progress")]),
            Row::from_values([Value::from("DONE"), Value::from("Completed")]),
        ],
        1,
    )
    .unwrap();
    let plan = IqPlan::Limit {
        input: Box::new(IqPlan::Sort {
            input: Box::new(IqPlan::Join {
                left: Box::new(IqPlan::scan("status_names")),
                right: Box::new(IqPlan::scan_where(
                    "orders",
                    vec![("o_id".into(), ColumnPredicate::Lt(Value::Int(10)))],
                )),
                left_col: "code".into(),
                right_col: "o_status".into(),
            }),
            keys: vec![("o_total".into(), false)],
        }),
        n: 3,
    };
    let rs = iq.execute(&plan, 1).unwrap();
    assert_eq!(rs.len(), 3);
    // Highest totals among ids 0..9: 9, 8, 7.
    assert_eq!(rs.rows[0].values().last().unwrap(), &Value::Double(13.5));
    assert!(rs.schema.index_of("label").is_some());
}

#[test]
fn transactional_insert_via_2pc() {
    let tm = TransactionManager::new();
    let iq = Arc::new(engine_with_data(10));
    // Advance the TM past the direct load's cid (1) so snapshots align.
    tm.commit(tm.begin(), &[]).unwrap();
    let txn = tm.begin();
    iq.buffer_insert(txn.tid, "orders", order_rows(5)).unwrap();
    let before = tm.current_snapshot().cid();
    assert_eq!(before, 1);
    assert_eq!(
        iq.row_count("orders", before).unwrap(),
        10,
        "not visible yet"
    );
    let participants: Vec<Arc<dyn TwoPhaseParticipant>> = vec![iq.clone()];
    let receipt = tm.commit(txn, &participants).unwrap();
    assert_eq!(iq.row_count("orders", receipt.cid).unwrap(), 15);
    assert_eq!(
        iq.row_count("orders", before).unwrap(),
        10,
        "old snapshot stable"
    );
}

#[test]
fn aborted_transaction_leaves_no_trace() {
    let tm = TransactionManager::new();
    let iq = Arc::new(engine_with_data(10));
    let txn = tm.begin();
    iq.buffer_insert(txn.tid, "orders", order_rows(5)).unwrap();
    let participants: Vec<Arc<dyn TwoPhaseParticipant>> = vec![iq.clone()];
    tm.abort(txn, &participants).unwrap();
    assert_eq!(iq.row_count("orders", u64::MAX - 1).unwrap(), 10);
}

#[test]
fn transactional_delete() {
    let tm = TransactionManager::new();
    let iq = Arc::new(engine_with_data(30));
    let txn = tm.begin();
    let n = iq
        .buffer_delete(
            txn.tid,
            "orders",
            &[("o_status".into(), ColumnPredicate::Eq(Value::from("OPEN")))],
            txn.snapshot.cid().max(1),
        )
        .unwrap();
    assert_eq!(n, 10);
    let participants: Vec<Arc<dyn TwoPhaseParticipant>> = vec![iq.clone()];
    let receipt = tm.commit(txn, &participants).unwrap();
    assert_eq!(iq.row_count("orders", receipt.cid).unwrap(), 20);
}

#[test]
fn failure_injection_aborts_access_and_transactions() {
    let tm = TransactionManager::new();
    let iq = Arc::new(engine_with_data(10));
    iq.set_failing(true);
    // Every access to the extended store throws (§3.1).
    assert_eq!(
        iq.scan("orders", &[], None, 1).unwrap_err().kind(),
        "remote_unavailable"
    );
    // A transaction touching the failed store aborts entirely.
    let txn = tm.begin();
    let participants: Vec<Arc<dyn TwoPhaseParticipant>> = vec![iq.clone()];
    // Buffering fails fast too; but even a txn with earlier buffered work
    // fails at prepare.
    assert!(iq.buffer_insert(txn.tid, "orders", order_rows(1)).is_err());
    iq.set_failing(false);
    iq.buffer_insert(txn.tid, "orders", order_rows(1)).unwrap();
    iq.set_failing(true);
    assert!(tm.commit(txn, &participants).is_err());
    iq.set_failing(false);
    assert_eq!(iq.row_count("orders", u64::MAX - 1).unwrap(), 10);
}

#[test]
fn temp_tables_for_semijoin_shipping() {
    let iq = engine_with_data(100);
    let schema = Schema::of(&[("key", DataType::Int)]);
    let shipped = vec![Row::from_values([Value::Int(7)])];
    let tmp = iq.create_temp_table(schema, &shipped, 1).unwrap();
    // Semijoin: filter the big table through the shipped keys.
    let plan = IqPlan::Join {
        left: Box::new(IqPlan::scan(&tmp)),
        right: Box::new(IqPlan::scan("orders")),
        left_col: "key".into(),
        right_col: "o_id".into(),
    };
    let rs = iq.execute(&plan, 1).unwrap();
    assert_eq!(rs.len(), 1);
    iq.drop_table(&tmp).unwrap();
    assert!(!iq.has_table(&tmp));
}

#[test]
fn catalog_errors() {
    let iq = IqEngine::new("iq", 16).unwrap();
    assert!(iq.scan("missing", &[], None, 1).is_err());
    iq.create_table("t", orders_schema()).unwrap();
    assert!(
        iq.create_table("T", orders_schema()).is_err(),
        "case-insensitive"
    );
    assert!(iq.drop_table("nope").is_err());
    // Bad rows rejected on direct load.
    assert!(iq
        .direct_load("t", &[Row::from_values([Value::Int(1)])], 1)
        .is_err());
}
