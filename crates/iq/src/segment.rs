//! Binary serialization of column segments.
//!
//! A segment is the on-disk representation of one column of one row-group
//! (chunk): a small header plus tagged values. Segments larger than a
//! page are split across a page chain by the store layer.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use hana_types::{Date, HanaError, Result, Value};

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_DOUBLE: u8 = 3;
const TAG_VARCHAR: u8 = 4;
const TAG_DATE: u8 = 5;
const TAG_TIMESTAMP: u8 = 6;

/// Serialize a column segment.
pub fn encode_segment(values: &[Value]) -> Bytes {
    let mut buf = BytesMut::with_capacity(values.len() * 8 + 8);
    buf.put_u32_le(values.len() as u32);
    for v in values {
        match v {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Bool(b) => {
                buf.put_u8(TAG_BOOL);
                buf.put_u8(*b as u8);
            }
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*i);
            }
            Value::Double(d) => {
                buf.put_u8(TAG_DOUBLE);
                buf.put_f64_le(*d);
            }
            Value::Varchar(s) => {
                buf.put_u8(TAG_VARCHAR);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Value::Date(d) => {
                buf.put_u8(TAG_DATE);
                buf.put_i32_le(d.0);
            }
            Value::Timestamp(t) => {
                buf.put_u8(TAG_TIMESTAMP);
                buf.put_i64_le(*t);
            }
        }
    }
    buf.freeze()
}

/// Deserialize a column segment.
pub fn decode_segment(mut data: &[u8]) -> Result<Vec<Value>> {
    let corrupt = || HanaError::Io("corrupt column segment".into());
    if data.len() < 4 {
        return Err(corrupt());
    }
    let count = data.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if data.is_empty() {
            return Err(corrupt());
        }
        let tag = data.get_u8();
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_BOOL => {
                if data.is_empty() {
                    return Err(corrupt());
                }
                Value::Bool(data.get_u8() != 0)
            }
            TAG_INT => {
                if data.len() < 8 {
                    return Err(corrupt());
                }
                Value::Int(data.get_i64_le())
            }
            TAG_DOUBLE => {
                if data.len() < 8 {
                    return Err(corrupt());
                }
                Value::Double(data.get_f64_le())
            }
            TAG_VARCHAR => {
                if data.len() < 4 {
                    return Err(corrupt());
                }
                let len = data.get_u32_le() as usize;
                if data.len() < len {
                    return Err(corrupt());
                }
                let s = std::str::from_utf8(&data[..len])
                    .map_err(|_| corrupt())?
                    .to_string();
                data.advance(len);
                Value::Varchar(s)
            }
            TAG_DATE => {
                if data.len() < 4 {
                    return Err(corrupt());
                }
                Value::Date(Date(data.get_i32_le()))
            }
            TAG_TIMESTAMP => {
                if data.len() < 8 {
                    return Err(corrupt());
                }
                Value::Timestamp(data.get_i64_le())
            }
            _ => return Err(corrupt()),
        };
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Double(3.5),
            Value::Varchar("héllo".into()),
            Value::Date(Date::parse("1995-06-17").unwrap()),
            Value::Timestamp(1_234_567),
            Value::Varchar(String::new()),
        ];
        let bytes = encode_segment(&values);
        assert_eq!(decode_segment(&bytes).unwrap(), values);
    }

    #[test]
    fn empty_segment() {
        let bytes = encode_segment(&[]);
        assert_eq!(decode_segment(&bytes).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn corrupt_data_is_an_error() {
        assert!(decode_segment(&[]).is_err());
        assert!(
            decode_segment(&[1, 0, 0, 0]).is_err(),
            "count=1 but no value"
        );
        let mut bytes = encode_segment(&[Value::Int(1)]).to_vec();
        bytes.truncate(bytes.len() - 2);
        assert!(decode_segment(&bytes).is_err());
        // Unknown tag.
        assert!(decode_segment(&[1, 0, 0, 0, 99]).is_err());
    }
}
