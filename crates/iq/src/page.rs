//! The paged disk file underneath the extended storage.
//!
//! Sybase IQ is a disk-based column store (§3.1); this module provides the
//! disk substrate: a single file of fixed-size pages with allocation, a
//! free list, and I/O counters that the benchmarks read to show where the
//! disk cost goes.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use hana_types::{HanaError, Result};

/// Fixed page size of the extended store (16 KiB, IQ-ish).
pub const PAGE_SIZE: usize = 16 * 1024;

/// Identifier of a page within a [`PageFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Cumulative I/O statistics.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages read from disk.
    pub reads: AtomicU64,
    /// Pages written to disk.
    pub writes: AtomicU64,
}

impl IoStats {
    /// Snapshot `(reads, writes)`.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }
}

/// An append-allocated file of [`PAGE_SIZE`] pages with a free list.
pub struct PageFile {
    file: Mutex<File>,
    path: PathBuf,
    next_page: AtomicU64,
    free: Mutex<Vec<PageId>>,
    /// Disk I/O counters (reads here are *actual* disk reads; the buffer
    /// cache counts its hits separately).
    pub stats: IoStats,
}

impl PageFile {
    /// Create (or truncate) a page file at `path`.
    pub fn create(path: &Path) -> Result<PageFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(PageFile {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            next_page: AtomicU64::new(0),
            free: Mutex::new(Vec::new()),
            stats: IoStats::default(),
        })
    }

    /// A page file in a fresh temporary location (tests, default engine).
    pub fn temp(label: &str) -> Result<PageFile> {
        let dir = std::env::temp_dir().join("hana-iq");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!(
            "{label}-{}-{:x}.pages",
            std::process::id(),
            // Distinguish files created in the same process.
            &PageFile::temp as *const _ as usize ^ rand_seed()
        ));
        PageFile::create(&path)
    }

    /// The file's location on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Allocate a page (reusing freed pages first).
    pub fn allocate(&self) -> PageId {
        if let Some(id) = self.free.lock().pop() {
            return id;
        }
        PageId(self.next_page.fetch_add(1, Ordering::Relaxed))
    }

    /// Return a page to the free list.
    pub fn free(&self, id: PageId) {
        self.free.lock().push(id);
    }

    /// Number of pages ever allocated (high-water mark).
    pub fn allocated_pages(&self) -> u64 {
        self.next_page.load(Ordering::Relaxed)
    }

    /// Write `data` (at most [`PAGE_SIZE`] bytes) to `page`.
    pub fn write_page(&self, page: PageId, data: &[u8]) -> Result<()> {
        if data.len() > PAGE_SIZE {
            return Err(HanaError::Io(format!(
                "page payload of {} bytes exceeds page size {PAGE_SIZE}",
                data.len()
            )));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[..data.len()].copy_from_slice(data);
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(page.0 * PAGE_SIZE as u64))?;
        f.write_all(&buf)?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Read the raw bytes of `page`.
    pub fn read_page(&self, page: PageId) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(page.0 * PAGE_SIZE as u64))?;
        f.read_exact(&mut buf)?;
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        Ok(buf)
    }
}

/// Cheap per-call entropy for temp file names without `rand`.
fn rand_seed() -> usize {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as usize)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let pf = PageFile::temp("rt").unwrap();
        let a = pf.allocate();
        let b = pf.allocate();
        assert_ne!(a, b);
        pf.write_page(a, b"hello").unwrap();
        pf.write_page(b, &[7u8; PAGE_SIZE]).unwrap();
        let ra = pf.read_page(a).unwrap();
        assert_eq!(&ra[..5], b"hello");
        assert_eq!(ra[5], 0, "padding is zeroed");
        assert_eq!(pf.read_page(b).unwrap(), vec![7u8; PAGE_SIZE]);
        assert_eq!(pf.stats.snapshot(), (2, 2));
        std::fs::remove_file(pf.path()).ok();
    }

    #[test]
    fn oversized_write_rejected() {
        let pf = PageFile::temp("big").unwrap();
        let p = pf.allocate();
        assert!(pf.write_page(p, &vec![0u8; PAGE_SIZE + 1]).is_err());
        std::fs::remove_file(pf.path()).ok();
    }

    #[test]
    fn free_list_reuses_pages() {
        let pf = PageFile::temp("free").unwrap();
        let a = pf.allocate();
        let _b = pf.allocate();
        pf.free(a);
        assert_eq!(pf.allocate(), a);
        assert_eq!(pf.allocated_pages(), 2);
        std::fs::remove_file(pf.path()).ok();
    }
}
