//! Chunked, page-backed column storage of the extended store.
//!
//! Tables are stored as row-groups ("chunks") of up to
//! [`ROWS_PER_CHUNK`] rows; each chunk stores every column as a page
//! chain plus two acceleration structures:
//!
//! * a **zone map** (min/max/has-null) for chunk pruning, and
//! * an **FP-style bitmap index** for low-cardinality columns, which
//!   answers equality predicates without touching the data pages —
//!   the hallmark of Sybase IQ's access paths (paper reference [15]).

use std::collections::HashMap;

use hana_columnar::{ColumnPredicate, RowIdBitmap, BLOCK_ROWS};
use hana_types::{Result, Row, Schema, Value};

use crate::cache::BufferCache;
use crate::page::{PageId, PAGE_SIZE};
use crate::segment::{decode_segment, encode_segment};

/// Maximum rows per chunk.
pub const ROWS_PER_CHUNK: usize = 4096;

/// Build a bitmap index when a chunk column has at most this many
/// distinct values.
pub const BITMAP_INDEX_MAX_DISTINCT: usize = 32;

/// A chain of pages holding one serialized column segment.
#[derive(Debug, Clone)]
pub struct PageChain {
    pages: Vec<PageId>,
    byte_len: usize,
}

/// Write `data` across freshly allocated pages.
pub fn write_chain(cache: &BufferCache, data: &[u8]) -> Result<PageChain> {
    let mut pages = Vec::with_capacity(data.len().div_ceil(PAGE_SIZE));
    for piece in data.chunks(PAGE_SIZE).collect::<Vec<_>>() {
        let id = cache.file().allocate();
        cache.put(id, piece)?;
        pages.push(id);
    }
    // Zero-length segments still need a marker page chain of length 0.
    Ok(PageChain {
        pages,
        byte_len: data.len(),
    })
}

/// Read a page chain back into contiguous bytes.
pub fn read_chain(cache: &BufferCache, chain: &PageChain) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(chain.byte_len);
    for &page in &chain.pages {
        let data = cache.get(page)?;
        let take = (chain.byte_len - out.len()).min(PAGE_SIZE);
        out.extend_from_slice(&data[..take]);
    }
    Ok(out)
}

/// Free a chain's pages.
pub fn free_chain(cache: &BufferCache, chain: &PageChain) {
    for &page in &chain.pages {
        cache.file().free(page);
        cache.evict(page);
    }
}

/// Min/max/null summary of one chunk column.
#[derive(Debug, Clone, Default)]
pub struct ZoneMap {
    /// Smallest non-null value in the chunk.
    pub min: Option<Value>,
    /// Largest non-null value in the chunk.
    pub max: Option<Value>,
    /// Whether the chunk contains NULLs.
    pub has_null: bool,
}

impl ZoneMap {
    fn build(values: &[Value]) -> ZoneMap {
        let mut z = ZoneMap::default();
        for v in values {
            if v.is_null() {
                z.has_null = true;
                continue;
            }
            if z.min.as_ref().is_none_or(|m| v < m) {
                z.min = Some(v.clone());
            }
            if z.max.as_ref().is_none_or(|m| v > m) {
                z.max = Some(v.clone());
            }
        }
        z
    }

    /// Conservative test: can any row of the chunk match `pred`?
    pub fn may_match(&self, pred: &ColumnPredicate) -> bool {
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            // All-null or empty chunk: only IS NULL can match.
            return matches!(pred, ColumnPredicate::IsNull) && self.has_null;
        };
        match pred {
            ColumnPredicate::Eq(v) => v >= min && v <= max,
            ColumnPredicate::Lt(v) => min < v,
            ColumnPredicate::Le(v) => min <= v,
            ColumnPredicate::Gt(v) => max > v,
            ColumnPredicate::Ge(v) => max >= v,
            ColumnPredicate::Between(lo, hi) => hi >= min && lo <= max,
            ColumnPredicate::InList(list) => list.iter().any(|v| v >= min && v <= max),
            ColumnPredicate::IsNull => self.has_null,
            // Ne / Like / IsNotNull cannot be excluded by min/max.
            _ => true,
        }
    }
}

/// One immutable row-group of a table.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Row ID of the chunk's first row.
    pub base_row: usize,
    /// Number of rows in the chunk.
    pub rows: usize,
    /// Commit ID under which the chunk became visible.
    pub created_cid: u64,
    /// One page chain per column.
    pub columns: Vec<PageChain>,
    /// One zone map per column.
    pub zones: Vec<ZoneMap>,
    /// Per-column block synopses: one [`ZoneMap`] per
    /// [`BLOCK_ROWS`]-row block, for sub-chunk skip-scans.
    pub block_zones: Vec<Vec<ZoneMap>>,
    /// Optional bitmap index per column (chunk-local row positions).
    pub bitmap_index: Vec<Option<HashMap<Value, RowIdBitmap>>>,
}

impl Chunk {
    /// Serialize `rows` into a new chunk starting at `base_row`.
    pub fn build(
        cache: &BufferCache,
        schema: &Schema,
        rows: &[Row],
        base_row: usize,
        created_cid: u64,
    ) -> Result<Chunk> {
        let ncols = schema.len();
        let mut columns = Vec::with_capacity(ncols);
        let mut zones = Vec::with_capacity(ncols);
        let mut block_zones = Vec::with_capacity(ncols);
        let mut bitmap_index = Vec::with_capacity(ncols);
        for col in 0..ncols {
            let values: Vec<Value> = rows.iter().map(|r| r[col].clone()).collect();
            zones.push(ZoneMap::build(&values));
            block_zones.push(values.chunks(BLOCK_ROWS).map(ZoneMap::build).collect());
            bitmap_index.push(build_bitmap_index(&values));
            columns.push(write_chain(cache, &encode_segment(&values))?);
        }
        Ok(Chunk {
            base_row,
            rows: rows.len(),
            created_cid,
            columns,
            zones,
            block_zones,
            bitmap_index,
        })
    }

    /// Read one column of the chunk back from its pages.
    pub fn read_column(&self, cache: &BufferCache, col: usize) -> Result<Vec<Value>> {
        decode_segment(&read_chain(cache, &self.columns[col])?)
    }

    /// Free all of the chunk's pages.
    pub fn free(&self, cache: &BufferCache) {
        for chain in &self.columns {
            free_chain(cache, chain);
        }
    }
}

fn build_bitmap_index(values: &[Value]) -> Option<HashMap<Value, RowIdBitmap>> {
    let mut distinct: HashMap<&Value, Vec<usize>> = HashMap::new();
    for (i, v) in values.iter().enumerate() {
        distinct.entry(v).or_default().push(i);
        if distinct.len() > BITMAP_INDEX_MAX_DISTINCT {
            return None;
        }
    }
    let mut index = HashMap::with_capacity(distinct.len());
    for (v, positions) in distinct {
        let mut b = RowIdBitmap::new(values.len());
        for p in positions {
            b.set(p);
        }
        index.insert(v.clone(), b);
    }
    Some(index)
}

/// A disk-backed table: schema + chunks + deletion map.
#[derive(Debug, Clone)]
pub struct IqTable {
    /// Table name (unique within the engine).
    pub name: String,
    /// Table schema.
    pub schema: Schema,
    /// Immutable row groups in row-ID order.
    pub chunks: Vec<Chunk>,
    /// Deleted rows: row ID -> deletion commit ID.
    pub deleted: HashMap<usize, u64>,
    /// Total rows across chunks (including deleted).
    pub total_rows: usize,
}

impl IqTable {
    /// An empty table.
    pub fn new(name: &str, schema: Schema) -> IqTable {
        IqTable {
            name: name.to_string(),
            schema,
            chunks: Vec::new(),
            deleted: HashMap::new(),
            total_rows: 0,
        }
    }

    /// Append rows as new chunk(s) visible from `cid`.
    pub fn append_rows(&mut self, cache: &BufferCache, rows: &[Row], cid: u64) -> Result<()> {
        for group in rows.chunks(ROWS_PER_CHUNK) {
            let chunk = Chunk::build(cache, &self.schema, group, self.total_rows, cid)?;
            self.total_rows += group.len();
            self.chunks.push(chunk);
        }
        Ok(())
    }

    /// Attach pre-built (staged) chunks, fixing up their row IDs and CID.
    pub fn attach_chunks(&mut self, mut staged: Vec<Chunk>, cid: u64) {
        for chunk in &mut staged {
            chunk.base_row = self.total_rows;
            chunk.created_cid = cid;
            self.total_rows += chunk.rows;
        }
        self.chunks.append(&mut staged);
    }

    /// Whether `row` is visible under snapshot `cid`.
    pub fn row_visible(&self, row: usize, chunk: &Chunk, cid: u64) -> bool {
        chunk.created_cid <= cid && self.deleted.get(&row).is_none_or(|&d| d > cid)
    }

    /// Rows visible under `cid`.
    pub fn visible_rows(&self, cid: u64) -> usize {
        self.chunks
            .iter()
            .map(|c| {
                if c.created_cid > cid {
                    return 0;
                }
                (c.base_row..c.base_row + c.rows)
                    .filter(|r| self.deleted.get(r).is_none_or(|&d| d > cid))
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageFile;
    use hana_types::DataType;
    use std::sync::Arc;

    fn cache() -> BufferCache {
        BufferCache::new(Arc::new(PageFile::temp("store").unwrap()), 64)
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::from_values([Value::Int(i as i64), Value::from(format!("cat-{}", i % 4))])
            })
            .collect()
    }

    fn schema() -> Schema {
        Schema::of(&[("id", DataType::Int), ("cat", DataType::Varchar)])
    }

    #[test]
    fn chunk_round_trip_across_pages() {
        let c = cache();
        // Enough rows that the varchar column spans multiple pages.
        let data = rows(3000);
        let chunk = Chunk::build(&c, &schema(), &data, 0, 1).unwrap();
        assert!(chunk.columns[1].pages.len() > 1, "must span pages");
        let col0 = chunk.read_column(&c, 0).unwrap();
        assert_eq!(col0.len(), 3000);
        assert_eq!(col0[2999], Value::Int(2999));
        let col1 = chunk.read_column(&c, 1).unwrap();
        assert_eq!(col1[5], Value::from("cat-1"));
        std::fs::remove_file(c.file().path()).ok();
    }

    #[test]
    fn zone_maps_prune() {
        let z = ZoneMap::build(&[Value::Int(10), Value::Int(20), Value::Null]);
        assert!(z.may_match(&ColumnPredicate::Eq(Value::Int(15))));
        assert!(!z.may_match(&ColumnPredicate::Eq(Value::Int(25))));
        assert!(!z.may_match(&ColumnPredicate::Gt(Value::Int(20))));
        assert!(z.may_match(&ColumnPredicate::Ge(Value::Int(20))));
        assert!(!z.may_match(&ColumnPredicate::Between(Value::Int(21), Value::Int(30))));
        assert!(z.may_match(&ColumnPredicate::IsNull));
        assert!(z.may_match(&ColumnPredicate::Like("%".into())));
        let empty = ZoneMap::build(&[Value::Null]);
        assert!(empty.may_match(&ColumnPredicate::IsNull));
        assert!(!empty.may_match(&ColumnPredicate::Eq(Value::Int(1))));
    }

    #[test]
    fn bitmap_index_on_low_cardinality() {
        let c = cache();
        let chunk = Chunk::build(&c, &schema(), &rows(100), 0, 1).unwrap();
        assert!(
            chunk.bitmap_index[0].is_none(),
            "id has 100 distinct values"
        );
        let idx = chunk.bitmap_index[1].as_ref().expect("cat has 4 values");
        let b = idx.get(&Value::from("cat-0")).unwrap();
        assert_eq!(b.count(), 25);
        assert!(b.get(0) && b.get(4) && !b.get(1));
        std::fs::remove_file(c.file().path()).ok();
    }

    #[test]
    fn table_append_and_visibility() {
        let c = cache();
        let mut t = IqTable::new("t", schema());
        t.append_rows(&c, &rows(10), 5).unwrap();
        t.append_rows(&c, &rows(10), 9).unwrap();
        assert_eq!(t.chunks.len(), 2);
        assert_eq!(t.visible_rows(5), 10);
        assert_eq!(t.visible_rows(9), 20);
        t.deleted.insert(3, 7);
        assert_eq!(t.visible_rows(6), 10);
        assert_eq!(t.visible_rows(7), 9);
        std::fs::remove_file(c.file().path()).ok();
    }

    #[test]
    fn chunking_splits_large_loads() {
        let c = cache();
        let mut t = IqTable::new("t", schema());
        t.append_rows(&c, &rows(ROWS_PER_CHUNK + 10), 1).unwrap();
        assert_eq!(t.chunks.len(), 2);
        assert_eq!(t.chunks[1].base_row, ROWS_PER_CHUNK);
        assert_eq!(t.total_rows, ROWS_PER_CHUNK + 10);
        std::fs::remove_file(c.file().path()).ok();
    }
}
