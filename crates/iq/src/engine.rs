//! The extended-storage engine ("HANA IQ").
//!
//! The engine is "completely shielded by the SAP HANA environment" (§3.1):
//! the only callers are the platform's federated query processor (via
//! [`IqEngine::execute`]), the transaction coordinator (via the
//! [`TwoPhaseParticipant`] impl) and the direct-load path. It supports
//! failure injection so the integration tests can reproduce the paper's
//! error semantics — "in case of an error of the extended system, every
//! access … will be aborted".

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use hana_columnar::{ColumnPredicate, BLOCK_ROWS};
use hana_txn::{TwoPhaseParticipant, Vote};
use hana_types::{AggFunc, ColumnDef, DataType, HanaError, Result, ResultSet, Row, Schema, Value};

use crate::cache::BufferCache;
use crate::page::PageFile;
use crate::plan::IqPlan;
use crate::store::{Chunk, IqTable};

/// Buffered (pre-prepare) writes of one transaction.
enum PendingOp {
    Insert { table: String, rows: Vec<Row> },
    Delete { table: String, rows: Vec<usize> },
}

/// Prepared-but-uncommitted state of one transaction.
enum StagedOp {
    Insert { table: String, chunks: Vec<Chunk> },
    Delete { table: String, rows: Vec<usize> },
}

/// Scan/prune statistics (read by tests and the ablation benches).
#[derive(Debug, Default)]
pub struct ScanStats {
    /// Chunks whose pages were actually visited.
    pub chunks_scanned: AtomicU64,
    /// Chunks skipped by zone maps.
    pub chunks_pruned: AtomicU64,
    /// Equality predicates answered from a bitmap index.
    pub bitmap_index_hits: AtomicU64,
    /// Sub-chunk blocks whose values were predicate-evaluated.
    pub blocks_scanned: AtomicU64,
    /// Sub-chunk blocks skipped by block-level zone maps.
    pub blocks_skipped: AtomicU64,
}

/// The disk-based extended storage engine.
pub struct IqEngine {
    name: String,
    cache: Arc<BufferCache>,
    tables: RwLock<HashMap<String, IqTable>>,
    pending: Mutex<HashMap<u64, Vec<PendingOp>>>,
    staged: Mutex<HashMap<u64, Vec<StagedOp>>>,
    failing: AtomicBool,
    temp_counter: AtomicU64,
    /// Scan statistics.
    pub stats: ScanStats,
}

impl IqEngine {
    /// Create an engine backed by a fresh temporary page file with a
    /// buffer cache of `cache_pages` pages.
    pub fn new(name: &str, cache_pages: usize) -> Result<IqEngine> {
        let file = Arc::new(PageFile::temp(name)?);
        Ok(IqEngine {
            name: name.to_string(),
            cache: Arc::new(BufferCache::new(file, cache_pages)),
            tables: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            staged: Mutex::new(HashMap::new()),
            failing: AtomicBool::new(false),
            temp_counter: AtomicU64::new(0),
            stats: ScanStats::default(),
        })
    }

    /// The engine's participant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The buffer cache (exposed for I/O accounting in benches).
    pub fn cache(&self) -> &Arc<BufferCache> {
        &self.cache
    }

    /// Inject or clear a simulated outage of the extended store.
    pub fn set_failing(&self, failing: bool) {
        self.failing.store(failing, Ordering::SeqCst);
    }

    fn check_up(&self) -> Result<()> {
        if self.failing.load(Ordering::SeqCst) {
            // Retryable: an extended-store outage is transient by
            // definition — the federation layer may retry or degrade.
            Err(HanaError::remote_unavailable(format!(
                "extended storage '{}' is unavailable",
                self.name
            )))
        } else {
            Ok(())
        }
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Create a table.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        self.check_up()?;
        let mut tables = self.tables.write();
        let key = Self::key(name);
        if tables.contains_key(&key) {
            return Err(HanaError::Catalog(format!(
                "extended table '{name}' already exists"
            )));
        }
        tables.insert(key.clone(), IqTable::new(&key, schema));
        Ok(())
    }

    /// Drop a table, freeing its pages.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.check_up()?;
        let table = self
            .tables
            .write()
            .remove(&Self::key(name))
            .ok_or_else(|| HanaError::Catalog(format!("unknown extended table '{name}'")))?;
        for chunk in &table.chunks {
            chunk.free(&self.cache);
        }
        Ok(())
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&Self::key(name))
    }

    /// Schema of a table.
    pub fn table_schema(&self, name: &str) -> Result<Schema> {
        self.tables
            .read()
            .get(&Self::key(name))
            .map(|t| t.schema.clone())
            .ok_or_else(|| HanaError::Catalog(format!("unknown extended table '{name}'")))
    }

    /// Rows visible in `name` under snapshot `cid`.
    pub fn row_count(&self, name: &str, cid: u64) -> Result<usize> {
        self.check_up()?;
        self.tables
            .read()
            .get(&Self::key(name))
            .map(|t| t.visible_rows(cid))
            .ok_or_else(|| HanaError::Catalog(format!("unknown extended table '{name}'")))
    }

    /// **Direct load**: bulk-load rows straight into the extended store
    /// "without taking a detour via the in-memory store" (§3.1), visible
    /// from `cid`.
    pub fn direct_load(&self, name: &str, rows: &[Row], cid: u64) -> Result<()> {
        self.check_up()?;
        let mut tables = self.tables.write();
        let table = tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| HanaError::Catalog(format!("unknown extended table '{name}'")))?;
        for row in rows {
            table.schema.check_row(row.values())?;
        }
        table.append_rows(&self.cache, rows, cid)
    }

    /// Create a temporary table from materialized rows (semijoin /
    /// table-relocation support). Returns its generated name.
    pub fn create_temp_table(&self, schema: Schema, rows: &[Row], cid: u64) -> Result<String> {
        self.check_up()?;
        let name = format!("#tmp_{}", self.temp_counter.fetch_add(1, Ordering::Relaxed));
        self.create_table(&name, schema)?;
        self.direct_load(&name, rows, cid)?;
        Ok(name)
    }

    // ---- transactional writes (buffered until 2PC) ----

    /// Buffer inserts for transaction `tid`.
    pub fn buffer_insert(&self, tid: u64, table: &str, rows: Vec<Row>) -> Result<()> {
        self.check_up()?;
        let schema = self.table_schema(table)?;
        for row in &rows {
            schema.check_row(row.values())?;
        }
        self.pending
            .lock()
            .entry(tid)
            .or_default()
            .push(PendingOp::Insert {
                table: Self::key(table),
                rows,
            });
        Ok(())
    }

    /// Buffer deletions (resolved row IDs) for transaction `tid`.
    pub fn buffer_delete(
        &self,
        tid: u64,
        table: &str,
        predicates: &[(String, ColumnPredicate)],
        snapshot_cid: u64,
    ) -> Result<usize> {
        self.check_up()?;
        let rows = self.matching_rows(table, predicates, snapshot_cid)?;
        let n = rows.len();
        self.pending
            .lock()
            .entry(tid)
            .or_default()
            .push(PendingOp::Delete {
                table: Self::key(table),
                rows,
            });
        Ok(n)
    }

    fn matching_rows(
        &self,
        table: &str,
        predicates: &[(String, ColumnPredicate)],
        cid: u64,
    ) -> Result<Vec<usize>> {
        let tables = self.tables.read();
        let t = tables
            .get(&Self::key(table))
            .ok_or_else(|| HanaError::Catalog(format!("unknown extended table '{table}'")))?;
        let preds = resolve_predicates(&t.schema, predicates)?;
        let mut out = Vec::new();
        for chunk in &t.chunks {
            if chunk.created_cid > cid {
                continue;
            }
            let hits = self.scan_chunk(t, chunk, &preds, cid)?;
            out.extend(hits.into_iter().map(|local| chunk.base_row + local));
        }
        Ok(out)
    }

    /// Chunk-local matching row positions (visibility included).
    fn scan_chunk(
        &self,
        table: &IqTable,
        chunk: &Chunk,
        preds: &[(usize, ColumnPredicate)],
        cid: u64,
    ) -> Result<Vec<usize>> {
        // Zone-map pruning.
        for (col, pred) in preds {
            if !chunk.zones[*col].may_match(pred) {
                self.stats.chunks_pruned.fetch_add(1, Ordering::Relaxed);
                return Ok(Vec::new());
            }
        }
        self.stats.chunks_scanned.fetch_add(1, Ordering::Relaxed);

        // Block-level pruning: a chunk that survives its zone map may
        // still have whole [`BLOCK_ROWS`]-row blocks no predicate can
        // match; those blocks skip predicate evaluation, and if none
        // survive the chunk's data pages are never read.
        let nblocks = chunk.rows.div_ceil(BLOCK_ROWS).max(1);
        let mut block_ok = vec![true; nblocks];
        for (col, pred) in preds {
            for (b, ok) in block_ok.iter_mut().enumerate() {
                if *ok && !chunk.block_zones[*col][b].may_match(pred) {
                    *ok = false;
                }
            }
        }
        let live = block_ok.iter().filter(|&&ok| ok).count() as u64;
        self.stats.blocks_scanned.fetch_add(live, Ordering::Relaxed);
        self.stats
            .blocks_skipped
            .fetch_add(nblocks as u64 - live, Ordering::Relaxed);
        let obs = hana_obs::registry();
        if live > 0 {
            obs.counter("hana_iq_blocks_scanned_total").add(live);
        }
        if nblocks as u64 > live {
            obs.counter("hana_iq_blocks_skipped_total")
                .add(nblocks as u64 - live);
        }
        if live == 0 {
            return Ok(Vec::new());
        }

        let mut candidates: Option<Vec<bool>> = None;
        for (col, pred) in preds {
            // Equality over an indexed column: use the bitmap index and
            // skip the data pages for this predicate.
            let from_index = match (pred, &chunk.bitmap_index[*col]) {
                (ColumnPredicate::Eq(v), Some(index)) => {
                    self.stats.bitmap_index_hits.fetch_add(1, Ordering::Relaxed);
                    let mut mask = vec![false; chunk.rows];
                    if let Some(b) = index.get(v) {
                        for r in b.iter() {
                            mask[r] = true;
                        }
                    }
                    Some(mask)
                }
                _ => None,
            };
            let mask = match from_index {
                Some(m) => m,
                None => {
                    let values = chunk.read_column(&self.cache, *col)?;
                    let mut mask = vec![false; chunk.rows];
                    for (b, &ok) in block_ok.iter().enumerate() {
                        if !ok {
                            continue;
                        }
                        let start = b * BLOCK_ROWS;
                        let end = ((b + 1) * BLOCK_ROWS).min(chunk.rows);
                        for (m, v) in mask[start..end].iter_mut().zip(&values[start..end]) {
                            *m = pred.matches(v);
                        }
                    }
                    mask
                }
            };
            candidates = Some(match candidates {
                None => mask,
                Some(prev) => prev.into_iter().zip(mask).map(|(a, b)| a && b).collect(),
            });
        }
        let mask = candidates.unwrap_or_else(|| vec![true; chunk.rows]);
        Ok(mask
            .into_iter()
            .enumerate()
            .filter(|&(local, m)| m && table.row_visible(chunk.base_row + local, chunk, cid))
            .map(|(local, _)| local)
            .collect())
    }

    /// Scan and project one chunk (filter + visibility + row build).
    fn scan_chunk_rows(
        &self,
        table: &IqTable,
        chunk: &Chunk,
        preds: &[(usize, ColumnPredicate)],
        proj_cols: &[usize],
        cid: u64,
    ) -> Result<Vec<Row>> {
        let hits = self.scan_chunk(table, chunk, preds, cid)?;
        if hits.is_empty() {
            return Ok(Vec::new());
        }
        let cols: Vec<Vec<Value>> = proj_cols
            .iter()
            .map(|&c| chunk.read_column(&self.cache, c))
            .collect::<Result<_>>()?;
        Ok(hits
            .into_iter()
            .map(|local| Row::from_values(cols.iter().map(|c| c[local].clone())))
            .collect())
    }

    /// Scan a table, returning the projected schema and rows.
    ///
    /// Multi-chunk tables scan their chunks concurrently on the global
    /// execution pool (the buffer cache is internally synchronized);
    /// results are concatenated in chunk order, so the output is
    /// identical to the serial scan.
    pub fn scan(
        &self,
        table: &str,
        predicates: &[(String, ColumnPredicate)],
        projection: Option<&[String]>,
        cid: u64,
    ) -> Result<ResultSet> {
        self.check_up()?;
        let span = hana_obs::span("iq_scan");
        let (hits_before, misses_before) = self.cache.stats();
        let tables = self.tables.read();
        let t = tables
            .get(&Self::key(table))
            .ok_or_else(|| HanaError::Catalog(format!("unknown extended table '{table}'")))?;
        let preds = resolve_predicates(&t.schema, predicates)?;
        let proj_cols: Vec<usize> = match projection {
            None => (0..t.schema.len()).collect(),
            Some(names) => names
                .iter()
                .map(|n| t.schema.require(n))
                .collect::<Result<_>>()?,
        };
        let out_schema = Schema::new(
            proj_cols
                .iter()
                .map(|&c| t.schema.column(c).clone())
                .collect(),
        )?;
        let visible_chunks: Vec<&Chunk> =
            t.chunks.iter().filter(|c| c.created_cid <= cid).collect();
        let per_chunk: Vec<Result<Vec<Row>>> = if visible_chunks.len() > 1 {
            let exec = hana_exec::ExecContext::global();
            if let Some(q) = hana_exec::current_query_metrics() {
                q.add_tasks(visible_chunks.len() as u64);
            }
            exec.scatter(visible_chunks, |chunk| {
                self.scan_chunk_rows(t, chunk, &preds, &proj_cols, cid)
            })
        } else {
            visible_chunks
                .into_iter()
                .map(|chunk| self.scan_chunk_rows(t, chunk, &preds, &proj_cols, cid))
                .collect()
        };
        let mut rows = Vec::new();
        for chunk_rows in per_chunk {
            rows.extend(chunk_rows?);
        }
        let (hits_after, misses_after) = self.cache.stats();
        span.set_rows(rows.len() as u64);
        span.attr("cache_hits", hits_after - hits_before);
        span.attr("pages_read", misses_after - misses_before);
        Ok(ResultSet::new(out_schema, rows))
    }

    /// Execute a shipped sub-plan (§3.1 "function shipping to the
    /// extended storage").
    pub fn execute(&self, plan: &IqPlan, cid: u64) -> Result<ResultSet> {
        self.check_up()?;
        match plan {
            IqPlan::Scan {
                table,
                predicates,
                projection,
            } => self.scan(table, predicates, projection.as_deref(), cid),
            IqPlan::Join {
                left,
                right,
                left_col,
                right_col,
            } => {
                let l = self.execute(left, cid)?;
                let r = self.execute(right, cid)?;
                let lc = l.schema.require(left_col)?;
                let rc = r.schema.require(right_col)?;
                let mut build: HashMap<Value, Vec<usize>> = HashMap::new();
                for (i, row) in l.rows.iter().enumerate() {
                    if !row[lc].is_null() {
                        build.entry(row[lc].clone()).or_default().push(i);
                    }
                }
                let schema = l
                    .schema
                    .join(&r.schema)
                    .or_else(|_| l.schema.qualified("l").join(&r.schema.qualified("r")))?;
                let mut rows = Vec::new();
                for rrow in &r.rows {
                    if let Some(matches) = build.get(&rrow[rc]) {
                        for &i in matches {
                            rows.push(l.rows[i].clone().concat(rrow.clone()));
                        }
                    }
                }
                Ok(ResultSet::new(schema, rows))
            }
            IqPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let inp = self.execute(input, cid)?;
                aggregate_rows(&inp, group_by, aggregates)
            }
            IqPlan::Sort { input, keys } => {
                let mut inp = self.execute(input, cid)?;
                let key_idx: Vec<(usize, bool)> = keys
                    .iter()
                    .map(|(k, asc)| inp.schema.require(k).map(|i| (i, *asc)))
                    .collect::<Result<_>>()?;
                inp.rows.sort_by(|a, b| {
                    for &(i, asc) in &key_idx {
                        let ord = a[i].cmp(&b[i]);
                        if !ord.is_eq() {
                            return if asc { ord } else { ord.reverse() };
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(inp)
            }
            IqPlan::Limit { input, n } => {
                let mut inp = self.execute(input, cid)?;
                inp.rows.truncate(*n);
                Ok(inp)
            }
        }
    }

    /// Column `(distinct_estimate, min, max)` over visible chunks —
    /// feeds the federated optimizer's cost model.
    pub fn column_range(
        &self,
        table: &str,
        column: &str,
    ) -> Result<(Option<Value>, Option<Value>)> {
        let tables = self.tables.read();
        let t = tables
            .get(&Self::key(table))
            .ok_or_else(|| HanaError::Catalog(format!("unknown extended table '{table}'")))?;
        let col = t.schema.require(column)?;
        let mut min = None;
        let mut max = None;
        for chunk in &t.chunks {
            let z = &chunk.zones[col];
            if let Some(m) = &z.min {
                if min.as_ref().is_none_or(|x| m < x) {
                    min = Some(m.clone());
                }
            }
            if let Some(m) = &z.max {
                if max.as_ref().is_none_or(|x| m > x) {
                    max = Some(m.clone());
                }
            }
        }
        Ok((min, max))
    }

    /// Exact distinct-count of a column over all chunks (deleted rows
    /// included — the count is an optimizer synopsis, not a result).
    pub fn column_distinct(&self, table: &str, column: &str) -> Result<u64> {
        let tables = self.tables.read();
        let t = tables
            .get(&Self::key(table))
            .ok_or_else(|| HanaError::Catalog(format!("unknown extended table '{table}'")))?;
        let col = t.schema.require(column)?;
        let mut seen = std::collections::BTreeSet::new();
        for chunk in &t.chunks {
            for v in chunk.read_column(&self.cache, col)? {
                if !v.is_null() {
                    seen.insert(v);
                }
            }
        }
        Ok(seen.len() as u64)
    }
}

/// Resolve predicate column names to indices.
fn resolve_predicates(
    schema: &Schema,
    predicates: &[(String, ColumnPredicate)],
) -> Result<Vec<(usize, ColumnPredicate)>> {
    predicates
        .iter()
        .map(|(name, p)| schema.require(name).map(|i| (i, p.clone())))
        .collect()
}

/// Hash aggregation shared with the plan executor.
pub fn aggregate_rows(
    input: &ResultSet,
    group_by: &[String],
    aggregates: &[(AggFunc, Option<String>)],
) -> Result<ResultSet> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|g| input.schema.require(g))
        .collect::<Result<_>>()?;
    let agg_idx: Vec<(AggFunc, Option<usize>)> = aggregates
        .iter()
        .map(|(f, col)| {
            Ok((
                *f,
                match col {
                    Some(c) => Some(input.schema.require(c)?),
                    None => None,
                },
            ))
        })
        .collect::<Result<_>>()?;

    let mut out_cols: Vec<ColumnDef> = group_idx
        .iter()
        .map(|&i| input.schema.column(i).clone())
        .collect();
    for (i, (f, col)) in aggregates.iter().enumerate() {
        let name = match col {
            Some(c) => format!("{}_{}", f.sql_name().to_ascii_lowercase(), c),
            None => format!("count_star_{i}"),
        };
        let dt = match f {
            AggFunc::Count | AggFunc::CountStar => DataType::BigInt,
            AggFunc::Avg => DataType::Double,
            _ => DataType::Double,
        };
        out_cols.push(ColumnDef::new(&name, dt));
    }
    let out_schema = Schema::new(out_cols)?;

    let mut groups: HashMap<Vec<Value>, Vec<hana_types::Accumulator>> = HashMap::new();
    for row in &input.rows {
        let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
        let accs = groups
            .entry(key)
            .or_insert_with(|| agg_idx.iter().map(|(f, _)| f.accumulator()).collect());
        for (acc, (_, col)) in accs.iter_mut().zip(&agg_idx) {
            match col {
                Some(c) => acc.add(&row[*c]),
                None => acc.add(&Value::Null), // CountStar ignores input
            }
        }
    }
    // Global aggregation over empty input still yields one row.
    if groups.is_empty() && group_idx.is_empty() {
        groups.insert(
            Vec::new(),
            agg_idx.iter().map(|(f, _)| f.accumulator()).collect(),
        );
    }
    let mut rows: Vec<Row> = groups
        .into_iter()
        .map(|(mut key, accs)| {
            key.extend(accs.iter().map(|a| a.finish()));
            Row::from_values(key)
        })
        .collect();
    // Deterministic output order for tests.
    rows.sort();
    Ok(ResultSet::new(out_schema, rows))
}

impl TwoPhaseParticipant for IqEngine {
    fn name(&self) -> &str {
        &self.name
    }

    /// Phase 1: serialize buffered inserts to disk pages (durable but
    /// invisible) and move the transaction to the staged state.
    fn prepare(&self, tid: u64) -> Result<Vote> {
        self.check_up()?;
        let Some(ops) = self.pending.lock().remove(&tid) else {
            return Ok(Vote::ReadOnly);
        };
        if ops.is_empty() {
            return Ok(Vote::ReadOnly);
        }
        let mut staged = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                PendingOp::Insert { table, rows } => {
                    let schema = self.table_schema(&table)?;
                    let mut chunks = Vec::new();
                    for group in rows.chunks(crate::store::ROWS_PER_CHUNK) {
                        chunks.push(Chunk::build(&self.cache, &schema, group, 0, u64::MAX)?);
                    }
                    staged.push(StagedOp::Insert { table, chunks });
                }
                PendingOp::Delete { table, rows } => {
                    staged.push(StagedOp::Delete { table, rows });
                }
            }
        }
        self.staged.lock().insert(tid, staged);
        Ok(Vote::Prepared)
    }

    /// Phase 2: publish staged chunks/deletes under `cid`.
    fn commit(&self, tid: u64, cid: u64) -> Result<()> {
        self.check_up()?;
        let Some(ops) = self.staged.lock().remove(&tid) else {
            return Ok(());
        };
        let mut tables = self.tables.write();
        for op in ops {
            match op {
                StagedOp::Insert { table, chunks } => {
                    if let Some(t) = tables.get_mut(&table) {
                        t.attach_chunks(chunks, cid);
                    }
                }
                StagedOp::Delete { table, rows } => {
                    if let Some(t) = tables.get_mut(&table) {
                        for r in rows {
                            t.deleted.entry(r).or_insert(cid);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Roll back: drop buffered ops and free staged pages.
    fn abort(&self, tid: u64) -> Result<()> {
        self.pending.lock().remove(&tid);
        if let Some(ops) = self.staged.lock().remove(&tid) {
            for op in ops {
                if let StagedOp::Insert { chunks, .. } = op {
                    for chunk in chunks {
                        chunk.free(&self.cache);
                    }
                }
            }
        }
        Ok(())
    }
}
