//! LRU buffer cache over the page file.
//!
//! The extended storage "may rely on a more powerful I/O subsystem …
//! and usually requires less main memory" (§3.1): its working set lives
//! on disk and only a bounded number of pages are cached. The cache
//! counts hits and misses so experiments can attribute cost to disk I/O.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use hana_types::Result;

use crate::page::{PageFile, PageId};

/// A read-through, write-through LRU page cache.
///
/// Hit/miss totals are mirrored into the global observability
/// registry (`hana_iq_cache_hits_total`, `hana_iq_cache_misses_total`,
/// `hana_iq_pages_read_total`) so the platform snapshot can derive the
/// buffer-cache hit ratio without reaching into each engine.
pub struct BufferCache {
    file: Arc<PageFile>,
    capacity: usize,
    inner: Mutex<Lru>,
    hits: AtomicU64,
    misses: AtomicU64,
    obs_hits: Arc<hana_obs::Counter>,
    obs_misses: Arc<hana_obs::Counter>,
    obs_pages_read: Arc<hana_obs::Counter>,
}

#[derive(Default)]
struct Lru {
    /// page -> (data, last-use tick)
    map: HashMap<PageId, (Arc<Vec<u8>>, u64)>,
    tick: u64,
}

impl BufferCache {
    /// A cache of `capacity` pages over `file`.
    pub fn new(file: Arc<PageFile>, capacity: usize) -> BufferCache {
        let obs = hana_obs::registry();
        BufferCache {
            file,
            capacity: capacity.max(1),
            inner: Mutex::new(Lru::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            obs_hits: obs.counter("hana_iq_cache_hits_total"),
            obs_misses: obs.counter("hana_iq_cache_misses_total"),
            obs_pages_read: obs.counter("hana_iq_pages_read_total"),
        }
    }

    /// The underlying page file.
    pub fn file(&self) -> &Arc<PageFile> {
        &self.file
    }

    /// Fetch a page, reading from disk on a miss.
    pub fn get(&self, page: PageId) -> Result<Arc<Vec<u8>>> {
        {
            let mut lru = self.inner.lock();
            lru.tick += 1;
            let tick = lru.tick;
            if let Some((data, last)) = lru.map.get_mut(&page) {
                *last = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs_hits.inc();
                return Ok(Arc::clone(data));
            }
        }
        // Miss: read outside the lock, then insert.
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs_misses.inc();
        self.obs_pages_read.inc();
        let data = Arc::new(self.file.read_page(page)?);
        self.insert(page, Arc::clone(&data));
        Ok(data)
    }

    /// Write a page through the cache to disk.
    pub fn put(&self, page: PageId, data: &[u8]) -> Result<()> {
        self.file.write_page(page, data)?;
        let mut padded = data.to_vec();
        padded.resize(crate::page::PAGE_SIZE, 0);
        self.insert(page, Arc::new(padded));
        Ok(())
    }

    /// Drop a page from the cache (e.g. after freeing it on disk).
    pub fn evict(&self, page: PageId) {
        self.inner.lock().map.remove(&page);
    }

    /// Drop every resident page, forcing the next reads back to disk
    /// (cold-start drills and cache-metric tests).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    fn insert(&self, page: PageId, data: Arc<Vec<u8>>) {
        let mut lru = self.inner.lock();
        lru.tick += 1;
        let tick = lru.tick;
        lru.map.insert(page, (data, tick));
        while lru.map.len() > self.capacity {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = lru.map.iter().min_by_key(|(_, (_, t))| *t) {
                lru.map.remove(&victim);
            } else {
                break;
            }
        }
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Reset the hit/miss counters (benchmark harness).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Number of cached pages.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(capacity: usize) -> BufferCache {
        let file = Arc::new(PageFile::temp("cache").unwrap());
        BufferCache::new(file, capacity)
    }

    #[test]
    fn read_through_and_hit() {
        let c = setup(4);
        let p = c.file().allocate();
        c.file().write_page(p, b"abc").unwrap();
        let d1 = c.get(p).unwrap();
        let d2 = c.get(p).unwrap();
        assert_eq!(&d1[..3], b"abc");
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(c.stats(), (1, 1));
        std::fs::remove_file(c.file().path()).ok();
    }

    #[test]
    fn lru_evicts_oldest() {
        let c = setup(2);
        let pages: Vec<PageId> = (0..3).map(|_| c.file().allocate()).collect();
        for (i, &p) in pages.iter().enumerate() {
            c.file().write_page(p, &[i as u8]).unwrap();
        }
        c.get(pages[0]).unwrap();
        c.get(pages[1]).unwrap();
        c.get(pages[2]).unwrap(); // evicts pages[0]
        assert_eq!(c.resident_pages(), 2);
        c.get(pages[0]).unwrap(); // miss again
        assert_eq!(c.stats(), (0, 4));
        std::fs::remove_file(c.file().path()).ok();
    }

    #[test]
    fn write_through_populates_cache() {
        let c = setup(4);
        let p = c.file().allocate();
        c.put(p, b"xyz").unwrap();
        let d = c.get(p).unwrap();
        assert_eq!(&d[..3], b"xyz");
        assert_eq!(c.stats(), (1, 0), "write-through avoids the read miss");
        std::fs::remove_file(c.file().path()).ok();
    }
}
