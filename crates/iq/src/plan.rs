//! Remote plans executed inside the extended storage.
//!
//! Per §3.1, SAP HANA pushes whole sub-plans below the distributed
//! exchange operator to the IQ query processor: scans with predicates,
//! group-bys, order-bys, joins and nested sub-plans. [`IqPlan`] is the
//! shape of those shipped sub-plans.

use hana_columnar::ColumnPredicate;
use hana_types::AggFunc;

/// A sub-plan shipped to the extended storage for local execution.
#[derive(Debug, Clone)]
pub enum IqPlan {
    /// Scan a table with conjunctive column predicates and an optional
    /// projection (column names; `None` = all columns).
    Scan {
        /// Table to scan.
        table: String,
        /// Conjunctive predicates by column name.
        predicates: Vec<(String, ColumnPredicate)>,
        /// Output columns, or `None` for all.
        projection: Option<Vec<String>>,
    },
    /// Hash equi-join of two sub-plans.
    Join {
        /// Build side.
        left: Box<IqPlan>,
        /// Probe side.
        right: Box<IqPlan>,
        /// Join column in the left output.
        left_col: String,
        /// Join column in the right output.
        right_col: String,
    },
    /// Hash aggregation. With an empty `group_by`, produces one row.
    Aggregate {
        /// Input plan.
        input: Box<IqPlan>,
        /// Grouping columns (by name in the input's output).
        group_by: Vec<String>,
        /// Aggregates: function + input column (`None` for `COUNT(*)`).
        aggregates: Vec<(AggFunc, Option<String>)>,
    },
    /// Sort by `(column, ascending)` keys.
    Sort {
        /// Input plan.
        input: Box<IqPlan>,
        /// Sort keys.
        keys: Vec<(String, bool)>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<IqPlan>,
        /// Row budget.
        n: usize,
    },
}

impl IqPlan {
    /// Convenience: a full scan of `table`.
    pub fn scan(table: &str) -> IqPlan {
        IqPlan::Scan {
            table: table.to_string(),
            predicates: Vec::new(),
            projection: None,
        }
    }

    /// Convenience: a filtered scan.
    pub fn scan_where(table: &str, predicates: Vec<(String, ColumnPredicate)>) -> IqPlan {
        IqPlan::Scan {
            table: table.to_string(),
            predicates,
            projection: None,
        }
    }

    /// One-line plan rendering for EXPLAIN output and tests.
    pub fn describe(&self) -> String {
        match self {
            IqPlan::Scan {
                table, predicates, ..
            } => {
                if predicates.is_empty() {
                    format!("IQ Scan({table})")
                } else {
                    format!("IQ Scan({table}, {} preds)", predicates.len())
                }
            }
            IqPlan::Join {
                left,
                right,
                left_col,
                right_col,
            } => format!(
                "IQ Join({} = {})[{}, {}]",
                left_col,
                right_col,
                left.describe(),
                right.describe()
            ),
            IqPlan::Aggregate {
                input, group_by, ..
            } => format!("IQ GroupBy({:?})[{}]", group_by, input.describe()),
            IqPlan::Sort { input, .. } => format!("IQ Sort[{}]", input.describe()),
            IqPlan::Limit { input, n } => format!("IQ Limit({n})[{}]", input.describe()),
        }
    }
}
