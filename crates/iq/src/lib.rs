//! # hana-iq
//!
//! The **extended storage** of the platform — the tightly integrated,
//! disk-based column store modeled on the Sybase IQ storage manager
//! (§3.1 of the paper): fixed-size page files with an LRU buffer cache,
//! chunked column segments with zone maps and FP-style bitmap indexes,
//! a local executor that accepts shipped sub-plans (scans, joins,
//! group-bys, sorts), **direct load** for high-ingestion scenarios, and
//! full participation in the platform's improved two-phase commit.
//!
//! ```
//! use hana_iq::{IqEngine, IqPlan};
//! use hana_types::{Schema, DataType, Row, Value};
//!
//! let iq = IqEngine::new("iq", 128).unwrap();
//! iq.create_table("cold_orders", Schema::of(&[
//!     ("o_id", DataType::Int),
//!     ("o_total", DataType::Double),
//! ])).unwrap();
//! let rows: Vec<Row> = (0..100)
//!     .map(|i| Row::from_values([Value::Int(i), Value::Double(i as f64)]))
//!     .collect();
//! iq.direct_load("cold_orders", &rows, 1).unwrap();
//! let rs = iq.execute(&IqPlan::scan("cold_orders"), 1).unwrap();
//! assert_eq!(rs.len(), 100);
//! ```

mod cache;
mod engine;
mod page;
mod plan;
mod segment;
mod store;

pub use cache::BufferCache;
pub use engine::{aggregate_rows, IqEngine, ScanStats};
pub use page::{IoStats, PageFile, PageId, PAGE_SIZE};
pub use plan::IqPlan;
pub use segment::{decode_segment, encode_segment};
pub use store::{Chunk, IqTable, PageChain, ZoneMap, BITMAP_INDEX_MAX_DISTINCT, ROWS_PER_CHUNK};
