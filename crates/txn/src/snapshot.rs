//! MVCC snapshots.

/// A consistent read view: everything committed with `cid <= self.cid`
/// is visible.
///
/// The column/row stores tag each row version with creation and deletion
/// commit IDs; [`Snapshot::visible`] is the single visibility rule shared
/// by every engine in the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Snapshot {
    cid: u64,
}

impl Snapshot {
    /// Snapshot as of commit ID `cid`.
    pub fn at(cid: u64) -> Snapshot {
        Snapshot { cid }
    }

    /// The snapshot's commit ID.
    pub fn cid(&self) -> u64 {
        self.cid
    }

    /// Whether a commit with `cid` is included in this snapshot.
    pub fn sees(&self, cid: u64) -> bool {
        cid <= self.cid
    }

    /// Visibility of a row version `(created_cid, deleted_cid)`.
    pub fn visible(&self, created: u64, deleted: u64) -> bool {
        self.sees(created) && !self.sees(deleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_rule() {
        let s = Snapshot::at(10);
        assert!(s.sees(10));
        assert!(!s.sees(11));
        assert!(s.visible(5, u64::MAX));
        assert!(s.visible(10, 11));
        assert!(!s.visible(5, 10), "deleted at 10 is gone at snapshot 10");
        assert!(!s.visible(11, u64::MAX));
    }

    #[test]
    fn snapshots_order_by_cid() {
        assert!(Snapshot::at(1) < Snapshot::at(2));
    }
}
