//! The transaction manager / two-phase-commit coordinator.
//!
//! SAP HANA "coordinates the transaction, e.g. generating the transaction
//! IDs and commit IDs to integrate extended storage", and uses "the
//! improved two-phase commit protocol described in \[14\]" (§3.1). The
//! improvements modelled here, following Lee et al. (ICDE 2013):
//!
//! * **early commit acknowledgment** — the client is acknowledged as soon
//!   as the coordinator's commit record is durable; participant
//!   notifications happen after the ack (observable via
//!   [`CommitReceipt::post_ack_notifications`]);
//! * **read-only optimization** — participants voting
//!   [`Vote::ReadOnly`](crate::Vote::ReadOnly) skip phase 2 entirely;
//! * **in-doubt handling** — transactions that prepared but whose
//!   coordinator outcome is unknown after a crash are listed as in-doubt
//!   and can be manually aborted, exactly as the paper describes for a
//!   failed extended store.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use hana_types::{HanaError, Result};

use crate::participant::{TwoPhaseParticipant, Vote};
use crate::snapshot::Snapshot;
use crate::wal::{LogRecord, RecoveryReport, Wal};

/// A handle to a running transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnHandle {
    /// Transaction ID.
    pub tid: u64,
    /// The snapshot the transaction reads under.
    pub snapshot: Snapshot,
}

/// What [`TransactionManager::commit`] returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The commit ID assigned to the transaction.
    pub cid: u64,
    /// Participants notified *after* the commit point (phase 2) — with the
    /// early-ack optimization these run after the client could already
    /// have been acknowledged.
    pub post_ack_notifications: Vec<String>,
    /// Participants that skipped phase 2 thanks to the read-only vote.
    pub read_only_skipped: Vec<String>,
}

/// Central coordinator: allocates TIDs and CIDs, drives 2PC, owns the WAL.
pub struct TransactionManager {
    next_tid: AtomicU64,
    last_cid: AtomicU64,
    wal: Arc<Wal>,
    /// Serializes the commit point: CID assignment and the enqueue of
    /// the commit record happen under this lock, so commit records land
    /// in the log in CID order and any log prefix recovers to a
    /// contiguous committed prefix. The fsync wait happens *outside*
    /// the lock — that is what lets group commit batch concurrent
    /// committers into one fsync.
    commit_order: Mutex<()>,
    active: Mutex<HashMap<u64, Snapshot>>,
    in_doubt: Mutex<Vec<(u64, Vec<String>)>>,
}

impl TransactionManager {
    /// A manager with a volatile WAL.
    pub fn new() -> TransactionManager {
        TransactionManager::with_shared_wal(Arc::new(Wal::in_memory()))
    }

    /// A manager whose WAL is appended to the single file `path`.
    pub fn with_log_file(path: &Path) -> Result<TransactionManager> {
        Ok(TransactionManager::with_shared_wal(Arc::new(
            Wal::with_file(path)?,
        )))
    }

    /// A manager over a segmented log directory.
    pub fn with_log_dir(dir: &Path) -> Result<TransactionManager> {
        Ok(TransactionManager::with_shared_wal(Arc::new(
            Wal::open_dir(dir)?,
        )))
    }

    /// A manager sharing `wal` with other components (the platform holds
    /// a handle for data logging and checkpoints).
    pub fn with_shared_wal(wal: Arc<Wal>) -> TransactionManager {
        // Resume CIDs after the highest committed CID (checkpoint
        // included) and TIDs after the highest TID ever allocated — a
        // reused TID would merge two distinct transactions at replay.
        let report = wal.recover();
        let max_cid = report.max_committed_cid();
        let ckpt_tid = wal.latest_checkpoint().map(|c| c.max_tid).unwrap_or(0);
        let max_tid = report.max_tid().max(ckpt_tid);
        TransactionManager {
            next_tid: AtomicU64::new(max_tid + 1),
            last_cid: AtomicU64::new(max_cid),
            wal,
            commit_order: Mutex::new(()),
            active: Mutex::new(HashMap::new()),
            in_doubt: Mutex::new(Vec::new()),
        }
    }

    /// The shared write-ahead log.
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// Begin a transaction; its snapshot sees everything committed so far.
    pub fn begin(&self) -> TxnHandle {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        let snapshot = Snapshot::at(self.last_cid.load(Ordering::SeqCst));
        // A Begin record is bookkeeping, not a commit point: losing it
        // only costs diagnostics, so a failed log is surfaced as a
        // warning here and as a hard error at the commit point.
        if let Err(e) = self.wal.append(LogRecord::Begin { tid }) {
            hana_obs::warn(format!("WAL Begin append failed for txn {tid}: {e}"));
        }
        self.active.lock().insert(tid, snapshot);
        TxnHandle { tid, snapshot }
    }

    /// The snapshot an auto-commit read should use right now.
    pub fn current_snapshot(&self) -> Snapshot {
        Snapshot::at(self.last_cid.load(Ordering::SeqCst))
    }

    /// The most recently assigned commit ID.
    pub fn last_commit_id(&self) -> u64 {
        self.last_cid.load(Ordering::SeqCst)
    }

    /// Append a logical redo record for `tid`. The record is not
    /// individually fsynced — it becomes durable with (and strictly
    /// before) the transaction's commit record, which is all redo needs.
    pub fn log_data(&self, tid: u64, engine: &str, payload: &str) -> Result<()> {
        self.wal.append(LogRecord::Data {
            tid,
            engine: engine.to_string(),
            payload: payload.to_string(),
        })
    }

    /// Durably checkpoint `payload`, an opaque engine snapshot covering
    /// every commit up to and including `cid` (which must not exceed
    /// [`last_commit_id`](Self::last_commit_id) — the caller captured
    /// the snapshot, so the caller knows the cid it is consistent at).
    /// Sealed log segments are pruned only when no transaction is
    /// active.
    pub fn checkpoint(&self, cid: u64, payload: &[u8]) -> Result<()> {
        let max_tid = self.next_tid.load(Ordering::SeqCst).saturating_sub(1);
        let prune = self.active.lock().is_empty();
        self.wal.checkpoint(cid, max_tid, payload, prune)
    }

    /// Commit `txn` across `participants` with the improved 2PC.
    ///
    /// On any prepare failure every participant is rolled back and the
    /// whole transaction aborts — matching §3.1: "if that access is part
    /// of a transaction that also touches in-memory column tables in SAP
    /// HANA, the entire transaction will be aborted."
    pub fn commit(
        &self,
        txn: TxnHandle,
        participants: &[Arc<dyn TwoPhaseParticipant>],
    ) -> Result<CommitReceipt> {
        if self.active.lock().remove(&txn.tid).is_none() {
            return Err(HanaError::Transaction(format!(
                "transaction {} is not active",
                txn.tid
            )));
        }

        // Phase 1: prepare everyone, logging each yes-vote.
        let mut votes: Vec<(String, Vote)> = Vec::with_capacity(participants.len());
        for p in participants {
            match p.prepare(txn.tid) {
                Ok(vote) => {
                    if vote == Vote::Prepared {
                        self.wal.append(LogRecord::Prepare {
                            tid: txn.tid,
                            participant: p.name().to_string(),
                        })?;
                    }
                    votes.push((p.name().to_string(), vote));
                }
                Err(e) => {
                    // A no-vote aborts every participant (including the
                    // one that failed, to release its resources).
                    for q in participants {
                        let _ = q.abort(txn.tid);
                    }
                    self.wal.append(LogRecord::Abort { tid: txn.tid })?;
                    return Err(HanaError::Transaction(format!(
                        "participant '{}' failed to prepare: {e}",
                        p.name()
                    )));
                }
            }
        }

        // Commit point: assign the CID and enqueue the commit record
        // under the ordering lock (so records hit the log in CID order),
        // then wait for durability *outside* it — concurrent committers
        // pile into one group-commit fsync here.
        let (cid, ticket) = {
            let _order = self.commit_order.lock();
            let cid = self.last_cid.fetch_add(1, Ordering::SeqCst) + 1;
            let ticket = self
                .wal
                .submit_durable(LogRecord::Commit { tid: txn.tid, cid });
            (cid, ticket)
        };
        if let Err(e) = ticket.wait() {
            // The commit record never became durable: the transaction
            // did not happen. Roll everyone back.
            for q in participants {
                let _ = q.abort(txn.tid);
            }
            let _ = self.wal.append(LogRecord::Abort { tid: txn.tid });
            return Err(HanaError::Transaction(format!(
                "commit record for transaction {} was not durable: {e}",
                txn.tid
            )));
        }

        // ---- client acknowledgment happens here (early ack) ----

        // Phase 2 (post-ack): notify writers; read-only voters skip it.
        let mut notified = Vec::new();
        let mut skipped = Vec::new();
        for p in participants {
            let vote = votes
                .iter()
                .find(|(n, _)| n == p.name())
                .map(|&(_, v)| v)
                .unwrap_or(Vote::Prepared);
            if vote == Vote::ReadOnly {
                skipped.push(p.name().to_string());
                continue;
            }
            // The decision is durable: a notification failure leaves the
            // participant in-doubt rather than undoing the commit.
            match p.commit(txn.tid, cid) {
                Ok(()) => notified.push(p.name().to_string()),
                Err(_) => self
                    .in_doubt
                    .lock()
                    .push((txn.tid, vec![p.name().to_string()])),
            }
        }

        Ok(CommitReceipt {
            cid,
            post_ack_notifications: notified,
            read_only_skipped: skipped,
        })
    }

    /// Roll back `txn` on every participant.
    pub fn abort(
        &self,
        txn: TxnHandle,
        participants: &[Arc<dyn TwoPhaseParticipant>],
    ) -> Result<()> {
        if self.active.lock().remove(&txn.tid).is_none() {
            return Err(HanaError::Transaction(format!(
                "transaction {} is not active",
                txn.tid
            )));
        }
        for p in participants {
            let _ = p.abort(txn.tid);
        }
        self.wal.append(LogRecord::Abort { tid: txn.tid })
    }

    /// Replay the WAL and surface in-doubt transactions (crash recovery
    /// is "recovered jointly" for HANA and the extended store, §3.1).
    pub fn recover(&self) -> RecoveryReport {
        let report = self.wal.recover();
        *self.in_doubt.lock() = report.in_doubt.clone();
        report
    }

    /// Point-in-time variant of [`TransactionManager::recover`].
    pub fn recover_to(&self, cid: u64) -> RecoveryReport {
        self.wal.recover_to(cid)
    }

    /// Currently known in-doubt transactions.
    pub fn in_doubt(&self) -> Vec<(u64, Vec<String>)> {
        self.in_doubt.lock().clone()
    }

    /// Manually abort an in-doubt transaction ("clients will have the
    /// ability to manually abort these in-doubt transactions").
    pub fn abort_in_doubt(
        &self,
        tid: u64,
        participants: &[Arc<dyn TwoPhaseParticipant>],
    ) -> Result<()> {
        let mut in_doubt = self.in_doubt.lock();
        let pos = in_doubt
            .iter()
            .position(|(t, _)| *t == tid)
            .ok_or_else(|| HanaError::Transaction(format!("transaction {tid} is not in-doubt")))?;
        in_doubt.remove(pos);
        drop(in_doubt);
        for p in participants {
            let _ = p.abort(tid);
        }
        self.wal.append(LogRecord::Abort { tid })
    }

    /// Number of active (begun, not yet finished) transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }
}

impl Default for TransactionManager {
    fn default() -> Self {
        TransactionManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// Scriptable participant for failure injection.
    #[derive(Default)]
    struct Mock {
        name: String,
        fail_prepare: AtomicBool,
        fail_commit: AtomicBool,
        read_only: AtomicBool,
        prepared: Mutex<Vec<u64>>,
        committed: Mutex<Vec<(u64, u64)>>,
        aborted: Mutex<Vec<u64>>,
    }

    impl Mock {
        fn named(name: &str) -> Arc<Mock> {
            Arc::new(Mock {
                name: name.to_string(),
                ..Mock::default()
            })
        }
    }

    impl TwoPhaseParticipant for Mock {
        fn name(&self) -> &str {
            &self.name
        }
        fn prepare(&self, tid: u64) -> Result<Vote> {
            if self.fail_prepare.load(Ordering::SeqCst) {
                return Err(HanaError::remote_unavailable("extended store down"));
            }
            self.prepared.lock().push(tid);
            Ok(if self.read_only.load(Ordering::SeqCst) {
                Vote::ReadOnly
            } else {
                Vote::Prepared
            })
        }
        fn commit(&self, tid: u64, cid: u64) -> Result<()> {
            if self.fail_commit.load(Ordering::SeqCst) {
                return Err(HanaError::remote_unavailable("lost connection"));
            }
            self.committed.lock().push((tid, cid));
            Ok(())
        }
        fn abort(&self, tid: u64) -> Result<()> {
            self.aborted.lock().push(tid);
            Ok(())
        }
    }

    fn parts(ms: &[&Arc<Mock>]) -> Vec<Arc<dyn TwoPhaseParticipant>> {
        ms.iter()
            .map(|m| Arc::clone(*m) as Arc<dyn TwoPhaseParticipant>)
            .collect()
    }

    #[test]
    fn successful_commit_assigns_increasing_cids() {
        let tm = TransactionManager::new();
        let hana = Mock::named("hana");
        let iq = Mock::named("iq");
        let t1 = tm.begin();
        let r1 = tm.commit(t1, &parts(&[&hana, &iq])).unwrap();
        let t2 = tm.begin();
        let r2 = tm.commit(t2, &parts(&[&hana])).unwrap();
        assert!(r2.cid > r1.cid);
        assert_eq!(hana.committed.lock().len(), 2);
        assert_eq!(iq.committed.lock().len(), 1);
        assert_eq!(tm.active_count(), 0);
        assert_eq!(tm.last_commit_id(), r2.cid);
    }

    #[test]
    fn snapshot_excludes_later_commits() {
        let tm = TransactionManager::new();
        let hana = Mock::named("hana");
        let t1 = tm.begin();
        let reader = tm.begin(); // starts before t1 commits
        let r1 = tm.commit(t1, &parts(&[&hana])).unwrap();
        assert!(!reader.snapshot.sees(r1.cid));
        let later = tm.begin();
        assert!(later.snapshot.sees(r1.cid));
    }

    #[test]
    fn prepare_failure_aborts_everything() {
        let tm = TransactionManager::new();
        let hana = Mock::named("hana");
        let iq = Mock::named("iq");
        iq.fail_prepare.store(true, Ordering::SeqCst);
        let t = tm.begin();
        let err = tm.commit(t, &parts(&[&hana, &iq])).unwrap_err();
        assert_eq!(err.kind(), "transaction");
        // Both participants were rolled back, nobody committed.
        assert_eq!(hana.aborted.lock().len(), 1);
        assert_eq!(iq.aborted.lock().len(), 1);
        assert!(hana.committed.lock().is_empty());
        // The CID was never consumed.
        assert_eq!(tm.last_commit_id(), 0);
    }

    #[test]
    fn read_only_participants_skip_phase_two() {
        let tm = TransactionManager::new();
        let writer = Mock::named("hana");
        let reader = Mock::named("iq");
        reader.read_only.store(true, Ordering::SeqCst);
        let t = tm.begin();
        let receipt = tm.commit(t, &parts(&[&writer, &reader])).unwrap();
        assert_eq!(receipt.read_only_skipped, vec!["iq".to_string()]);
        assert_eq!(receipt.post_ack_notifications, vec!["hana".to_string()]);
        assert!(reader.committed.lock().is_empty());
    }

    #[test]
    fn commit_notification_failure_leaves_in_doubt_not_undone() {
        let tm = TransactionManager::new();
        let hana = Mock::named("hana");
        let iq = Mock::named("iq");
        iq.fail_commit.store(true, Ordering::SeqCst);
        let t = tm.begin();
        let tid = t.tid;
        // The decision was durable, so commit still succeeds (early ack).
        let receipt = tm.commit(t, &parts(&[&hana, &iq])).unwrap();
        assert_eq!(receipt.post_ack_notifications, vec!["hana".to_string()]);
        let in_doubt = tm.in_doubt();
        assert_eq!(in_doubt.len(), 1);
        assert_eq!(in_doubt[0].0, tid);
        // Manual resolution clears the list.
        tm.abort_in_doubt(tid, &parts(&[&iq])).unwrap();
        assert!(tm.in_doubt().is_empty());
        assert_eq!(iq.aborted.lock().as_slice(), &[tid]);
        assert!(tm.abort_in_doubt(tid, &[]).is_err());
    }

    #[test]
    fn explicit_abort_rolls_back() {
        let tm = TransactionManager::new();
        let hana = Mock::named("hana");
        let t = tm.begin();
        tm.abort(t, &parts(&[&hana])).unwrap();
        assert_eq!(hana.aborted.lock().len(), 1);
        assert!(tm.commit(t, &parts(&[&hana])).is_err(), "already finished");
    }

    #[test]
    fn crash_recovery_surfaces_in_doubt() {
        // Simulate a crash between prepare and commit by building the WAL
        // by hand, then recovering a fresh manager over it.
        let dir = std::env::temp_dir().join(format!("hana-txn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recovery.log");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append(LogRecord::Begin { tid: 1 }).unwrap();
            wal.append(LogRecord::Prepare {
                tid: 1,
                participant: "iq".into(),
            })
            .unwrap();
            wal.append(LogRecord::Begin { tid: 2 }).unwrap();
            wal.append(LogRecord::Commit { tid: 2, cid: 7 }).unwrap();
        }
        let tm = TransactionManager::with_log_file(&path).unwrap();
        let report = tm.recover();
        assert_eq!(report.committed, vec![(2, 7)]);
        assert_eq!(tm.in_doubt(), vec![(1, vec!["iq".to_string()])]);
        // New CIDs continue after the recovered maximum, and TIDs resume
        // past every TID in the log (a reused TID would merge two
        // distinct transactions at replay).
        let t = tm.begin();
        assert!(t.tid > 2);
        let r = tm.commit(t, &[]).unwrap();
        assert!(r.cid > 7);
        std::fs::remove_file(&path).ok();
    }
}
