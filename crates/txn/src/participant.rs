//! Two-phase-commit participants.

use hana_types::Result;

/// A participant's phase-1 vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vote {
    /// The participant wrote data and is prepared to commit.
    Prepared,
    /// The participant only read — the improved protocol of the paper's
    /// reference \[14\] skips phase 2 for read-only participants.
    ReadOnly,
}

/// An engine taking part in a distributed transaction coordinated by
/// SAP HANA (§3.1 "Transactions"): the in-memory store, an extended
/// (IQ) store, or — in tests — a failure-injecting mock.
pub trait TwoPhaseParticipant: Send + Sync {
    /// Stable participant name (appears in WAL prepare records and
    /// in-doubt listings).
    fn name(&self) -> &str;

    /// Phase 1: make the transaction's effects durable enough to survive
    /// a crash, then vote. An `Err` vote aborts the whole transaction.
    fn prepare(&self, tid: u64) -> Result<Vote>;

    /// Phase 2: make the effects visible under commit ID `cid`.
    /// Called only after the coordinator's commit record is durable, and
    /// never for `ReadOnly` voters.
    fn commit(&self, tid: u64, cid: u64) -> Result<()>;

    /// Roll the transaction's effects back (any phase).
    fn abort(&self, tid: u64) -> Result<()>;
}
