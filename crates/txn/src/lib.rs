//! # hana-txn
//!
//! Transaction, snapshot and distributed-commit management — the §3.1
//! "Transactions" machinery of the paper: the coordinator generates
//! transaction IDs and commit IDs, drives an improved two-phase commit
//! across the in-memory store and extended (IQ) stores, recovers jointly
//! from a shared write-ahead log (including point-in-time recovery), and
//! surfaces **in-doubt** transactions for manual abortion after a crash
//! of the extended store.
//!
//! ```
//! use hana_txn::TransactionManager;
//!
//! let tm = TransactionManager::new();
//! let txn = tm.begin();
//! // ... buffer writes, then commit across participants ...
//! let receipt = tm.commit(txn, &[]).unwrap();
//! assert!(tm.current_snapshot().sees(receipt.cid));
//! ```

mod manager;
mod participant;
mod snapshot;
mod wal;

pub use manager::{CommitReceipt, TransactionManager, TxnHandle};
pub use participant::{TwoPhaseParticipant, Vote};
pub use snapshot::Snapshot;
pub use wal::{DurableTicket, LogRecord, RecoveryReport, Wal, WalCheckpoint, WalConfig};
