//! Group commit: a committer thread batches concurrent durable-append
//! requests into one write + one fsync.
//!
//! Appenders enqueue framed bytes under the queue lock (preserving
//! append order); callers that need durability also enqueue a waiter
//! and block on it. The committer drains the queue, sleeps out the
//! configurable batching window (`HANA_WAL_GROUP_COMMIT_US`) so
//! stragglers can join, writes the whole batch once and fsyncs once —
//! then wakes every waiter in the batch. A write/fsync failure fails
//! the whole batch and poisons the log: no later append can succeed,
//! because its ordering prefix was lost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hana_types::{HanaError, Result};

use super::segment::LogWriter;

/// One blocked durable append.
pub(crate) struct Waiter {
    done: Mutex<Option<std::result::Result<(), String>>>,
    cond: Condvar,
}

impl Waiter {
    fn new() -> Arc<Waiter> {
        Arc::new(Waiter {
            done: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    fn complete(&self, result: std::result::Result<(), String>) {
        *self.done.lock().expect("waiter lock") = Some(result);
        self.cond.notify_all();
    }

    fn wait(&self) -> Result<()> {
        let mut done = self.done.lock().expect("waiter lock");
        while done.is_none() {
            done = self.cond.wait(done).expect("waiter lock");
        }
        done.take().expect("checked above").map_err(HanaError::Io)
    }
}

/// A handle to one durable append: created at enqueue time (fixing the
/// record's position in the log), redeemed with [`DurableTicket::wait`]
/// once the caller is ready to block for the fsync.
pub struct DurableTicket(pub(crate) TicketInner);

pub(crate) enum TicketInner {
    /// Already decided (in-memory logs, per-commit mode, poisoned log).
    Ready(std::result::Result<(), String>),
    /// Waiting on the group committer.
    Pending(Arc<Waiter>),
}

impl DurableTicket {
    /// Block until the record is durable (or the log failed).
    pub fn wait(self) -> Result<()> {
        match self.0 {
            TicketInner::Ready(r) => r.map_err(HanaError::Io),
            TicketInner::Pending(w) => w.wait(),
        }
    }
}

struct QueueState {
    buf: Vec<u8>,
    waiters: Vec<Arc<Waiter>>,
    closed: bool,
    poisoned: Option<String>,
}

struct Shared {
    state: Mutex<QueueState>,
    cond: Condvar,
}

/// The group-commit engine: shared queue + committer thread.
pub(crate) struct GroupCommitter {
    shared: Arc<Shared>,
    seq: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl GroupCommitter {
    /// Spawn the committer thread over `writer`.
    pub(crate) fn spawn(mut writer: LogWriter, window: Duration) -> GroupCommitter {
        let seq = writer.seq_handle();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                buf: Vec::new(),
                waiters: Vec::new(),
                closed: false,
                poisoned: None,
            }),
            cond: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("hana-wal-committer".into())
            .spawn(move || committer_loop(&thread_shared, &mut writer, window))
            .expect("spawn WAL committer");
        GroupCommitter {
            shared,
            seq,
            handle: Some(handle),
        }
    }

    /// Sequence number of the writer's active segment.
    pub(crate) fn active_seq(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Enqueue framed bytes; `durable` also enqueues a waiter whose
    /// ticket resolves when the batch containing these bytes is synced.
    pub(crate) fn enqueue(&self, bytes: &[u8], durable: bool) -> DurableTicket {
        let mut st = self.shared.state.lock().expect("WAL queue lock");
        if let Some(why) = &st.poisoned {
            return DurableTicket(TicketInner::Ready(Err(why.clone())));
        }
        st.buf.extend_from_slice(bytes);
        let ticket = if durable {
            let w = Waiter::new();
            st.waiters.push(Arc::clone(&w));
            DurableTicket(TicketInner::Pending(w))
        } else {
            DurableTicket(TicketInner::Ready(Ok(())))
        };
        drop(st);
        self.shared.cond.notify_all();
        ticket
    }

    /// Durable barrier: everything enqueued before this call is on disk
    /// when it returns.
    pub(crate) fn sync(&self) -> Result<()> {
        self.enqueue(&[], true).wait()
    }

    /// Whether the log failed a write/fsync and refuses new appends.
    pub(crate) fn poisoned(&self) -> Option<String> {
        self.shared
            .state
            .lock()
            .expect("WAL queue lock")
            .poisoned
            .clone()
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("WAL queue lock");
            st.closed = true;
        }
        self.shared.cond.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn committer_loop(shared: &Shared, writer: &mut LogWriter, window: Duration) {
    let reg = hana_obs::registry();
    loop {
        // Wait for work (or shutdown).
        {
            let mut st = shared.state.lock().expect("WAL queue lock");
            while st.buf.is_empty() && st.waiters.is_empty() && !st.closed {
                st = shared.cond.wait(st).expect("WAL queue lock");
            }
            if st.buf.is_empty() && st.waiters.is_empty() && st.closed {
                return;
            }
        }
        // Batching window: let concurrent committers pile into this
        // batch before paying for the fsync. The lock is *not* held.
        if !window.is_zero() {
            std::thread::sleep(window);
        }
        // Drain the batch.
        let (bytes, waiters) = {
            let mut st = shared.state.lock().expect("WAL queue lock");
            (std::mem::take(&mut st.buf), std::mem::take(&mut st.waiters))
        };
        // One write, one fsync for the whole batch; durability is only
        // needed when someone is waiting on it.
        let result = writer.write_batch(&bytes).and_then(|()| {
            if waiters.is_empty() {
                Ok(())
            } else {
                writer.sync()
            }
        });
        match result {
            Ok(()) => {
                if !waiters.is_empty() {
                    reg.counter("hana_wal_group_commits_total").inc();
                    reg.histogram("hana_wal_group_commit_txns")
                        .record(waiters.len() as u64);
                }
                for w in waiters {
                    w.complete(Ok(()));
                }
            }
            Err(e) => {
                // The batch is lost: fail its waiters and poison the
                // log — later records would be durable without their
                // prefix, breaking committed-prefix recovery.
                let why = format!("WAL append lost: {e}");
                {
                    let mut st = shared.state.lock().expect("WAL queue lock");
                    st.poisoned = Some(why.clone());
                    st.buf.clear();
                    for w in st.waiters.drain(..) {
                        w.complete(Err(why.clone()));
                    }
                }
                hana_obs::warn(why.clone());
                for w in waiters {
                    w.complete(Err(why.clone()));
                }
            }
        }
    }
}
