//! Write-ahead log with group commit, checkpoints and point-in-time
//! recovery.
//!
//! The log records transaction lifecycle events as CRC-framed records in
//! rolling segment files (see [`frame`] and [`segment`]). Durable
//! appends go through a group committer ([`group`]) that batches
//! concurrent commit points into one fsync. Checkpoints ([`checkpoint`])
//! snapshot engine state so recovery replays only the log suffix.
//!
//! Replaying a (possibly torn) log classifies every transaction as
//! committed, aborted or **in-doubt** — the state §3.1 of the paper
//! describes for transactions that had touched the extended store when a
//! crash hit between prepare and commit. The reader tolerates a torn
//! tail (crash mid-append) on the last segment by truncating it; damage
//! anywhere else is corruption and fails the open.

mod checkpoint;
mod frame;
mod group;
mod segment;

pub use group::DurableTicket;

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use hana_types::{HanaError, Result};

use self::frame::encode_frame;
use self::group::{GroupCommitter, TicketInner};
use self::segment::{LogWriter, Storage, DEFAULT_SEGMENT_BYTES};

/// One log record. `cid` values order commits for point-in-time recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction `tid` started.
    Begin { tid: u64 },
    /// A logical redo record (engine, table, operation payload).
    Data {
        /// Transaction writing the data.
        tid: u64,
        /// Target engine ("hana" or an extended-storage name).
        engine: String,
        /// Serialized logical operation.
        payload: String,
    },
    /// Participant `participant` voted yes for `tid` (phase 1).
    Prepare { tid: u64, participant: String },
    /// Coordinator committed `tid` with commit ID `cid`. This record is
    /// the commit point: once durable, the transaction wins any crash.
    Commit { tid: u64, cid: u64 },
    /// Transaction `tid` rolled back.
    Abort { tid: u64 },
    /// A checkpoint snapshot covering every commit `<= cid` was made
    /// durable; recovery restores it and replays only later commits.
    Checkpoint { cid: u64 },
}

impl LogRecord {
    /// The transaction this record belongs to (0 for checkpoints).
    pub fn tid(&self) -> u64 {
        match self {
            LogRecord::Begin { tid }
            | LogRecord::Data { tid, .. }
            | LogRecord::Prepare { tid, .. }
            | LogRecord::Commit { tid, .. }
            | LogRecord::Abort { tid } => *tid,
            LogRecord::Checkpoint { .. } => 0,
        }
    }

    fn serialize(&self) -> String {
        match self {
            LogRecord::Begin { tid } => format!("B\t{tid}"),
            LogRecord::Data {
                tid,
                engine,
                payload,
            } => format!("D\t{tid}\t{engine}\t{}", payload.replace('\n', "\\n")),
            LogRecord::Prepare { tid, participant } => format!("P\t{tid}\t{participant}"),
            LogRecord::Commit { tid, cid } => format!("C\t{tid}\t{cid}"),
            LogRecord::Abort { tid } => format!("A\t{tid}"),
            LogRecord::Checkpoint { cid } => format!("K\t0\t{cid}"),
        }
    }

    fn deserialize(line: &str) -> Result<LogRecord> {
        let mut parts = line.splitn(4, '\t');
        let bad = || HanaError::Io(format!("corrupt WAL record: '{line}'"));
        let kind = parts.next().ok_or_else(bad)?;
        let tid: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Ok(match kind {
            "B" => LogRecord::Begin { tid },
            "D" => LogRecord::Data {
                tid,
                engine: parts.next().ok_or_else(bad)?.to_string(),
                payload: parts.next().ok_or_else(bad)?.replace("\\n", "\n"),
            },
            "P" => LogRecord::Prepare {
                tid,
                participant: parts.next().ok_or_else(bad)?.to_string(),
            },
            "C" => LogRecord::Commit {
                tid,
                cid: parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?,
            },
            "A" => LogRecord::Abort { tid },
            "K" => LogRecord::Checkpoint {
                cid: parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?,
            },
            _ => return Err(bad()),
        })
    }
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.serialize())
    }
}

/// Durability knobs, read from the environment by default.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Group-commit batching window. Zero disables the committer thread:
    /// every durable append pays its own write + fsync (the baseline the
    /// `wal_commit` bench compares against).
    pub group_commit_window: Duration,
    /// Size at which the active segment rolls over (directory mode).
    pub segment_bytes: u64,
    /// Injected failure point for crash testing: after this many
    /// successful fsyncs the writer fails permanently, dropping the
    /// in-flight batch. `None` in production.
    pub fsyncs_until_fail: Option<u64>,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            group_commit_window: Duration::from_micros(200),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fsyncs_until_fail: None,
        }
    }
}

impl WalConfig {
    /// Read `HANA_WAL_GROUP_COMMIT_US` (batching window in microseconds,
    /// 0 = per-commit fsync) and `HANA_WAL_SEGMENT_BYTES` from the
    /// environment, defaulting sensibly.
    pub fn from_env() -> WalConfig {
        let mut cfg = WalConfig::default();
        if let Some(us) = std::env::var("HANA_WAL_GROUP_COMMIT_US")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            cfg.group_commit_window = Duration::from_micros(us);
        }
        if let Some(bytes) = std::env::var("HANA_WAL_SEGMENT_BYTES")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            cfg.segment_bytes = bytes.max(1);
        }
        cfg
    }
}

/// A loaded checkpoint snapshot, as handed back to the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalCheckpoint {
    /// Every commit `<= cid` is covered by the snapshot.
    pub cid: u64,
    /// Highest transaction ID allocated when the snapshot was taken.
    pub max_tid: u64,
    /// Opaque engine snapshot bytes.
    pub payload: Vec<u8>,
}

enum Backend {
    /// No file: records live only in memory (unit tests).
    Volatile,
    /// Committer thread batching appends into shared fsyncs.
    Grouped(GroupCommitter),
    /// Per-commit fsync: each durable append pays its own sync.
    Direct(Mutex<DirectState>),
}

struct DirectState {
    writer: LogWriter,
    poisoned: Option<String>,
}

struct AppendState {
    records: Vec<LogRecord>,
    /// Cumulative end offset (across segments) of each record's frame,
    /// parallel to `records` — the crash-point harness keys truncation
    /// points on these.
    end_offsets: Vec<u64>,
    next_offset: u64,
}

/// The write-ahead log. Shared by reference: all methods take `&self`.
pub struct Wal {
    state: Mutex<AppendState>,
    backend: Backend,
    storage: Option<Storage>,
    checkpoint_dir: Option<PathBuf>,
    latest_checkpoint: Mutex<Option<WalCheckpoint>>,
    truncated_bytes: u64,
    config: WalConfig,
    /// Passive mode: appends become no-ops. Engaged only while recovery
    /// replays already-logged statements through the normal write path,
    /// so replay does not re-log (and thus double-apply on the *next*
    /// recovery) what the log already contains.
    passive: std::sync::atomic::AtomicBool,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("records", &self.state.lock().records.len())
            .field("truncated_bytes", &self.truncated_bytes)
            .finish()
    }
}

impl Default for Wal {
    fn default() -> Wal {
        Wal::in_memory()
    }
}

impl Wal {
    /// A volatile, in-memory log (unit tests, throwaway instances).
    pub fn in_memory() -> Wal {
        Wal {
            state: Mutex::new(AppendState {
                records: Vec::new(),
                end_offsets: Vec::new(),
                next_offset: 0,
            }),
            backend: Backend::Volatile,
            storage: None,
            checkpoint_dir: None,
            latest_checkpoint: Mutex::new(None),
            truncated_bytes: 0,
            config: WalConfig::default(),
            passive: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// A durable log appended to the single file `path` (created if
    /// missing, never rolled). Existing records are loaded so recovery
    /// can run over them; a torn final record is truncated away with a
    /// warning rather than failing the open.
    pub fn with_file(path: &Path) -> Result<Wal> {
        Wal::open_storage(
            Storage::SingleFile(path.to_path_buf()),
            WalConfig::from_env(),
        )
    }

    /// A durable segmented log in directory `dir`, with environment
    /// configuration.
    pub fn open_dir(dir: &Path) -> Result<Wal> {
        Wal::open_dir_with(dir, WalConfig::from_env())
    }

    /// A durable segmented log in directory `dir` with explicit config.
    pub fn open_dir_with(dir: &Path, config: WalConfig) -> Result<Wal> {
        Wal::open_storage(Storage::Dir(dir.to_path_buf()), config)
    }

    fn open_storage(storage: Storage, config: WalConfig) -> Result<Wal> {
        if let Storage::Dir(dir) = &storage {
            std::fs::create_dir_all(dir)?;
        }
        let loaded = segment::load(&storage, true)?;
        let mut records = Vec::with_capacity(loaded.payloads.len());
        let mut end_offsets = Vec::with_capacity(loaded.payloads.len());
        let mut next_offset = 0u64;
        for p in &loaded.payloads {
            let text = std::str::from_utf8(&p.payload)
                .map_err(|_| HanaError::Io("non-UTF-8 WAL record".into()))?;
            records.push(LogRecord::deserialize(text)?);
            end_offsets.push(p.end_offset);
            next_offset = p.end_offset;
        }
        // A checkpoint sidecar is only trusted once the log itself shows
        // commits (or a checkpoint record) reaching its CID — guards a
        // sidecar that outlived a truncated log tail.
        let cid_limit = records
            .iter()
            .filter_map(|r| match r {
                LogRecord::Commit { cid, .. } | LogRecord::Checkpoint { cid } => Some(*cid),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let (checkpoint_dir, latest) = match &storage {
            Storage::Dir(dir) => (
                Some(dir.clone()),
                checkpoint::load_latest(dir, cid_limit).map(|c| WalCheckpoint {
                    cid: c.cid,
                    max_tid: c.max_tid,
                    payload: c.payload,
                }),
            ),
            Storage::SingleFile(_) => (None, None),
        };
        let writer = LogWriter::open(
            storage.clone(),
            loaded.last_seq,
            config.segment_bytes,
            config.fsyncs_until_fail,
        )?;
        let backend = if config.group_commit_window.is_zero() {
            Backend::Direct(Mutex::new(DirectState {
                writer,
                poisoned: None,
            }))
        } else {
            Backend::Grouped(GroupCommitter::spawn(writer, config.group_commit_window))
        };
        Ok(Wal {
            state: Mutex::new(AppendState {
                records,
                end_offsets,
                next_offset,
            }),
            backend,
            storage: Some(storage),
            checkpoint_dir,
            latest_checkpoint: Mutex::new(latest),
            truncated_bytes: loaded.truncated_bytes,
            config,
            passive: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Engage/disengage passive mode (recovery replay only): while
    /// passive, every append is dropped. See the field docs.
    pub fn set_passive(&self, on: bool) {
        self.passive.store(on, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether the log is in passive (recovery replay) mode.
    pub fn passive(&self) -> bool {
        self.passive.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// The segment directory for directory-backed logs.
    pub fn dir(&self) -> Option<PathBuf> {
        match &self.storage {
            Some(Storage::Dir(d)) => Some(d.clone()),
            _ => None,
        }
    }

    /// Whether this log persists to a segment directory (and therefore
    /// supports checkpoint sidecars and segment pruning).
    pub fn is_durable_dir(&self) -> bool {
        self.checkpoint_dir.is_some()
    }

    /// Bytes dropped from a torn tail at open time (0 for a clean log).
    pub fn truncated_bytes(&self) -> u64 {
        self.truncated_bytes
    }

    /// The active configuration.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// Segment files in replay order (empty for in-memory logs).
    pub fn segment_paths(&self) -> Vec<PathBuf> {
        self.storage
            .as_ref()
            .and_then(|s| s.segment_paths().ok())
            .unwrap_or_default()
    }

    /// Cumulative end offset of each record's frame, parallel to
    /// [`Wal::records`] — crash harnesses truncate copies of the log at
    /// these (and every other) byte positions.
    pub fn record_end_offsets(&self) -> Vec<u64> {
        self.state.lock().end_offsets.clone()
    }

    /// Why the log refuses appends, if a write/fsync failed.
    pub fn poisoned(&self) -> Option<String> {
        match &self.backend {
            Backend::Volatile => None,
            Backend::Grouped(g) => g.poisoned(),
            Backend::Direct(d) => d.lock().poisoned.clone(),
        }
    }

    /// Enqueue `rec` for append without waiting for durability. The
    /// record is durable no later than the next synced batch.
    pub fn append(&self, rec: LogRecord) -> Result<()> {
        self.submit(rec, false).wait()
    }

    /// Enqueue `rec` and return a ticket that resolves once the record
    /// is on disk. The record's position in the log is fixed *now* (by
    /// append order); the caller blocks on the ticket when ready —
    /// that split is what lets the group committer share fsyncs.
    pub fn submit_durable(&self, rec: LogRecord) -> DurableTicket {
        self.submit(rec, true)
    }

    /// Append `rec` and wait for it to be durable.
    pub fn append_durable(&self, rec: LogRecord) -> Result<()> {
        self.submit(rec, true).wait()
    }

    fn submit(&self, rec: LogRecord, durable: bool) -> DurableTicket {
        if self.passive() {
            return DurableTicket(TicketInner::Ready(Ok(())));
        }
        hana_obs::registry().counter("hana_wal_appends_total").inc();
        // The state lock spans mirror push + backend enqueue so the
        // in-memory record order always matches the on-disk byte order.
        let mut st = self.state.lock();
        let ticket = match &self.backend {
            Backend::Volatile => DurableTicket(TicketInner::Ready(Ok(()))),
            Backend::Grouped(g) => {
                let mut framed = Vec::new();
                encode_frame(rec.serialize().as_bytes(), &mut framed);
                let t = g.enqueue(&framed, durable);
                if matches!(&t.0, TicketInner::Ready(Err(_))) {
                    return t; // poisoned: nothing was enqueued
                }
                st.next_offset += framed.len() as u64;
                let off = st.next_offset;
                st.end_offsets.push(off);
                t
            }
            Backend::Direct(d) => {
                let mut framed = Vec::new();
                encode_frame(rec.serialize().as_bytes(), &mut framed);
                let mut ds = d.lock();
                if let Some(why) = &ds.poisoned {
                    return DurableTicket(TicketInner::Ready(Err(why.clone())));
                }
                let result = ds.writer.write_batch(&framed).and_then(|()| {
                    if durable {
                        ds.writer.sync()
                    } else {
                        Ok(())
                    }
                });
                match result {
                    Ok(()) => {
                        st.next_offset += framed.len() as u64;
                        let off = st.next_offset;
                        st.end_offsets.push(off);
                        DurableTicket(TicketInner::Ready(Ok(())))
                    }
                    Err(e) => {
                        let why = format!("WAL append lost: {e}");
                        ds.poisoned = Some(why.clone());
                        hana_obs::warn(why.clone());
                        return DurableTicket(TicketInner::Ready(Err(why)));
                    }
                }
            }
        };
        st.records.push(rec);
        ticket
    }

    /// Durable barrier: every record appended before this call is on
    /// disk when it returns.
    pub fn sync(&self) -> Result<()> {
        match &self.backend {
            Backend::Volatile => Ok(()),
            Backend::Grouped(g) => g.sync(),
            Backend::Direct(d) => {
                let mut ds = d.lock();
                if let Some(why) = &ds.poisoned {
                    return Err(HanaError::Io(why.clone()));
                }
                ds.writer.sync()
            }
        }
    }

    /// All records, oldest first (after a pruning checkpoint: the
    /// surviving suffix).
    pub fn records(&self) -> Vec<LogRecord> {
        self.state.lock().records.clone()
    }

    /// Classify every transaction seen in the log.
    pub fn recover(&self) -> RecoveryReport {
        self.recover_to(u64::MAX)
    }

    /// Point-in-time recovery: only commits with `cid <= upto_cid` count
    /// as committed; later commits are rolled back (treated as aborted).
    pub fn recover_to(&self, upto_cid: u64) -> RecoveryReport {
        let start = Instant::now();
        let mut report = RecoveryReport::from_records(&self.state.lock().records, upto_cid);
        if let Some(ckpt) = self.latest_checkpoint.lock().as_ref() {
            if ckpt.cid <= upto_cid {
                report.checkpoint_cid = ckpt.cid;
            }
        }
        let reg = hana_obs::registry();
        reg.counter("hana_wal_recoveries_total").inc();
        reg.histogram("hana_wal_recovery_replay_ns")
            .record(start.elapsed().as_nanos() as u64);
        report
    }

    /// The newest usable checkpoint snapshot, if any.
    pub fn latest_checkpoint(&self) -> Option<WalCheckpoint> {
        self.latest_checkpoint.lock().clone()
    }

    /// Durably record a checkpoint: `payload` (an opaque engine
    /// snapshot covering every commit `<= cid`) is written to a sidecar
    /// file, then a [`LogRecord::Checkpoint`] marks the log. With
    /// `prune`, sealed segments older than the active one are deleted —
    /// callers must only ask for that when no transaction is active, as
    /// pruned records are gone from [`Wal::records`] too.
    pub fn checkpoint(&self, cid: u64, max_tid: u64, payload: &[u8], prune: bool) -> Result<()> {
        if let Some(dir) = &self.checkpoint_dir {
            let seq = checkpoint::max_seq(dir) + 1;
            checkpoint::write(dir, seq, cid, max_tid, payload)?;
        }
        self.append_durable(LogRecord::Checkpoint { cid })?;
        *self.latest_checkpoint.lock() = Some(WalCheckpoint {
            cid,
            max_tid,
            payload: payload.to_vec(),
        });
        if prune {
            self.prune_to_active_segment(cid);
        }
        Ok(())
    }

    /// Delete sealed segments (everything but the active one) and drop
    /// the in-memory mirror of records the checkpoint covers.
    fn prune_to_active_segment(&self, ckpt_cid: u64) {
        let Some(Storage::Dir(dir)) = &self.storage else {
            return;
        };
        let active_seq = match &self.backend {
            Backend::Grouped(g) => g.active_seq(),
            Backend::Direct(d) => d.lock().writer.active_seq(),
            Backend::Volatile => return,
        };
        let mut pruned = 0u64;
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy().to_string();
                if let Some(seq) = name
                    .strip_prefix("wal-")
                    .and_then(|s| s.strip_suffix(".seg"))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    if seq < active_seq && std::fs::remove_file(entry.path()).is_ok() {
                        pruned += 1;
                    }
                }
            }
        }
        if pruned > 0 {
            segment::sync_dir(dir);
            hana_obs::registry()
                .counter("hana_wal_segments_pruned_total")
                .add(pruned);
        }
        // Keep only records the checkpoint does not cover: finished
        // transactions at or below the checkpoint CID are snapshot state.
        let mut st = self.state.lock();
        let report = RecoveryReport::from_records(&st.records, u64::MAX);
        let covered: std::collections::HashSet<u64> = report
            .committed
            .iter()
            .filter(|&&(_, cid)| cid <= ckpt_cid)
            .map(|&(tid, _)| tid)
            .collect();
        let keep: Vec<LogRecord> = st
            .records
            .iter()
            .filter(|r| match r {
                LogRecord::Checkpoint { cid } => *cid >= ckpt_cid,
                rec => !covered.contains(&rec.tid()),
            })
            .cloned()
            .collect();
        st.records = keep;
        st.end_offsets.clear();
    }
}

/// The outcome of replaying the log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions with a durable commit record, `(tid, cid)`,
    /// ascending by commit ID.
    pub committed: Vec<(u64, u64)>,
    /// Transactions aborted explicitly, or implicitly because they never
    /// reached prepare, or rolled back by point-in-time recovery.
    pub aborted: Vec<u64>,
    /// Transactions that prepared (at least one participant voted yes)
    /// but have neither commit nor abort record — §3.1's "in-doubt"
    /// transactions, with the participants that prepared.
    pub in_doubt: Vec<(u64, Vec<String>)>,
    /// CID of the checkpoint snapshot recovery starts from (0 = none):
    /// commits at or below it are already in the snapshot; only later
    /// commits in `committed` need replaying.
    pub checkpoint_cid: u64,
}

impl RecoveryReport {
    fn from_records(records: &[LogRecord], upto_cid: u64) -> RecoveryReport {
        use std::collections::BTreeMap;
        #[derive(Default)]
        struct St {
            prepared: Vec<String>,
            committed: Option<u64>,
            aborted: bool,
        }
        let mut txns: BTreeMap<u64, St> = BTreeMap::new();
        for rec in records {
            if let LogRecord::Checkpoint { .. } = rec {
                continue;
            }
            let st = txns.entry(rec.tid()).or_default();
            match rec {
                LogRecord::Prepare { participant, .. } => {
                    st.prepared.push(participant.clone());
                }
                LogRecord::Commit { cid, .. } => st.committed = Some(*cid),
                LogRecord::Abort { .. } => st.aborted = true,
                LogRecord::Begin { .. } | LogRecord::Data { .. } | LogRecord::Checkpoint { .. } => {
                }
            }
        }
        let mut report = RecoveryReport::default();
        for (tid, st) in txns {
            match (st.committed, st.aborted) {
                (Some(cid), _) if cid <= upto_cid => report.committed.push((tid, cid)),
                (Some(_), _) => report.aborted.push(tid), // past the PIT target
                (None, true) => report.aborted.push(tid),
                (None, false) if !st.prepared.is_empty() => {
                    report.in_doubt.push((tid, st.prepared));
                }
                (None, false) => report.aborted.push(tid),
            }
        }
        report.committed.sort_by_key(|&(_, cid)| cid);
        report
    }

    /// Highest committed CID visible to this recovery (checkpoint
    /// included).
    pub fn max_committed_cid(&self) -> u64 {
        self.committed
            .last()
            .map(|&(_, cid)| cid)
            .unwrap_or(0)
            .max(self.checkpoint_cid)
    }

    /// Highest transaction ID seen in the log records.
    pub(crate) fn max_tid(&self) -> u64 {
        self.committed
            .iter()
            .map(|&(tid, _)| tid)
            .chain(self.aborted.iter().copied())
            .chain(self.in_doubt.iter().map(|&(tid, _)| tid))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hana-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_text_round_trips() {
        let recs = [
            LogRecord::Begin { tid: 3 },
            LogRecord::Data {
                tid: 3,
                engine: "hana".into(),
                payload: "INSERT\nWITH NEWLINE".into(),
            },
            LogRecord::Prepare {
                tid: 3,
                participant: "iq".into(),
            },
            LogRecord::Commit { tid: 3, cid: 9 },
            LogRecord::Abort { tid: 4 },
            LogRecord::Checkpoint { cid: 9 },
        ];
        for rec in recs {
            assert_eq!(LogRecord::deserialize(&rec.serialize()).unwrap(), rec);
        }
    }

    #[test]
    fn dir_log_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let wal = Wal::open_dir(&dir).unwrap();
            wal.append(LogRecord::Begin { tid: 1 }).unwrap();
            wal.append_durable(LogRecord::Commit { tid: 1, cid: 1 })
                .unwrap();
        }
        let wal = Wal::open_dir(&dir).unwrap();
        assert_eq!(wal.records().len(), 2);
        assert_eq!(wal.recover().committed, vec![(1, 1)]);
        assert_eq!(wal.truncated_bytes(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_commit_mode_works_too() {
        let dir = tmp_dir("direct");
        let cfg = WalConfig {
            group_commit_window: Duration::ZERO,
            ..WalConfig::default()
        };
        {
            let wal = Wal::open_dir_with(&dir, cfg.clone()).unwrap();
            wal.append(LogRecord::Begin { tid: 1 }).unwrap();
            wal.append_durable(LogRecord::Commit { tid: 1, cid: 1 })
                .unwrap();
        }
        let wal = Wal::open_dir_with(&dir, cfg).unwrap();
        assert_eq!(wal.recover().committed, vec![(1, 1)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_roll_at_threshold() {
        let dir = tmp_dir("roll");
        let cfg = WalConfig {
            segment_bytes: 64,
            ..WalConfig::default()
        };
        {
            let wal = Wal::open_dir_with(&dir, cfg.clone()).unwrap();
            for tid in 1..=20 {
                wal.append(LogRecord::Begin { tid }).unwrap();
                wal.append_durable(LogRecord::Commit { tid, cid: tid })
                    .unwrap();
            }
        }
        let wal = Wal::open_dir_with(&dir, cfg).unwrap();
        assert!(wal.segment_paths().len() > 1, "log should have rolled");
        assert_eq!(wal.recover().committed.len(), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_restores_and_prunes() {
        let dir = tmp_dir("ckpt");
        let cfg = WalConfig {
            segment_bytes: 64,
            ..WalConfig::default()
        };
        {
            let wal = Wal::open_dir_with(&dir, cfg.clone()).unwrap();
            for tid in 1..=10 {
                wal.append(LogRecord::Begin { tid }).unwrap();
                wal.append_durable(LogRecord::Commit { tid, cid: tid })
                    .unwrap();
            }
            wal.checkpoint(10, 10, b"engine snapshot", true).unwrap();
            assert!(wal.segment_paths().len() <= 1, "pruned to active segment");
            wal.append(LogRecord::Begin { tid: 11 }).unwrap();
            wal.append_durable(LogRecord::Commit { tid: 11, cid: 11 })
                .unwrap();
        }
        let wal = Wal::open_dir_with(&dir, cfg).unwrap();
        let ckpt = wal.latest_checkpoint().expect("checkpoint survives reopen");
        assert_eq!(ckpt.cid, 10);
        assert_eq!(ckpt.payload, b"engine snapshot");
        let report = wal.recover();
        assert_eq!(report.checkpoint_cid, 10);
        // Replay needs only the suffix past the checkpoint; commits the
        // snapshot covers are filtered out by CID, whether or not their
        // records survived in the (unpruned) active segment.
        let to_replay: Vec<_> = report
            .committed
            .iter()
            .filter(|&&(_, cid)| cid > report.checkpoint_cid)
            .collect();
        assert_eq!(to_replay, vec![&(11, 11)]);
        assert_eq!(report.max_committed_cid(), 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_ahead_of_log_is_rejected() {
        let dir = tmp_dir("ckpt-ahead");
        {
            let wal = Wal::open_dir(&dir).unwrap();
            wal.append_durable(LogRecord::Commit { tid: 1, cid: 1 })
                .unwrap();
        }
        // A sidecar claiming CID 99 with no log evidence must be ignored.
        checkpoint::write(&dir, 7, 99, 99, b"from the future").unwrap();
        let wal = Wal::open_dir(&dir).unwrap();
        assert!(wal.latest_checkpoint().is_none());
        assert_eq!(wal.recover().checkpoint_cid, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_fsync_failure_poisons_the_log() {
        let dir = tmp_dir("poison");
        let cfg = WalConfig {
            group_commit_window: Duration::ZERO,
            fsyncs_until_fail: Some(1),
            ..WalConfig::default()
        };
        let wal = Wal::open_dir_with(&dir, cfg).unwrap();
        wal.append_durable(LogRecord::Commit { tid: 1, cid: 1 })
            .unwrap();
        let err = wal
            .append_durable(LogRecord::Commit { tid: 2, cid: 2 })
            .unwrap_err();
        assert_eq!(err.kind(), "io");
        assert!(wal.poisoned().is_some());
        // Every later append fails fast: the prefix is gone.
        assert!(wal.append(LogRecord::Begin { tid: 3 }).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
