//! The on-disk record frame: `[len: u32 LE][crc32: u32 LE][payload]`.
//!
//! Every log record is wrapped in one frame so the reader can tell a
//! cleanly ended log from a torn tail (a crash mid-write) without
//! trusting file lengths: a frame is only accepted when the whole
//! payload is present *and* its checksum matches.

/// Frame header size: 4 bytes length + 4 bytes CRC-32.
pub(crate) const FRAME_HEADER: usize = 8;

/// Upper bound on one frame's payload; anything larger in a length
/// field is treated as corruption, not as a gigantic allocation.
pub(crate) const MAX_FRAME: usize = 1 << 26;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data`.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append one framed payload to `out`.
pub(crate) fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_FRAME);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// What the reader found at the head of `buf`.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum FrameOutcome<'a> {
    /// A complete, checksum-valid frame occupying `consumed` bytes.
    Complete {
        /// The frame's payload.
        payload: &'a [u8],
        /// Total bytes of the frame (header + payload).
        consumed: usize,
    },
    /// The buffer ends mid-frame: a torn tail if this is the end of the
    /// last segment, corruption anywhere else.
    Torn,
    /// The frame is structurally present but damaged (checksum mismatch
    /// or an impossible length field).
    Corrupt,
}

/// Decode the frame at the head of `buf`.
pub(crate) fn decode_frame(buf: &[u8]) -> FrameOutcome<'_> {
    if buf.len() < FRAME_HEADER {
        return FrameOutcome::Torn;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return FrameOutcome::Corrupt;
    }
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if buf.len() < FRAME_HEADER + len {
        return FrameOutcome::Torn;
    }
    let payload = &buf[FRAME_HEADER..FRAME_HEADER + len];
    if crc32(payload) != crc {
        return FrameOutcome::Corrupt;
    }
    FrameOutcome::Complete {
        payload,
        consumed: FRAME_HEADER + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        encode_frame(b"hello", &mut buf);
        encode_frame(b"", &mut buf);
        match decode_frame(&buf) {
            FrameOutcome::Complete { payload, consumed } => {
                assert_eq!(payload, b"hello");
                let rest = &buf[consumed..];
                assert!(matches!(
                    decode_frame(rest),
                    FrameOutcome::Complete { payload: b"", .. }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_torn_never_corrupt() {
        let mut buf = Vec::new();
        encode_frame(b"some payload bytes", &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                decode_frame(&buf[..cut]),
                FrameOutcome::Torn,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bit_flips_are_corrupt() {
        let mut buf = Vec::new();
        encode_frame(b"payload", &mut buf);
        for i in FRAME_HEADER..buf.len() {
            let mut copy = buf.clone();
            copy[i] ^= 0x40;
            assert_eq!(decode_frame(&copy), FrameOutcome::Corrupt, "flip at {i}");
        }
        // A damaged CRC field is also caught.
        let mut copy = buf.clone();
        copy[5] ^= 0x01;
        assert_eq!(decode_frame(&copy), FrameOutcome::Corrupt);
        // An absurd length field is corruption, not an allocation.
        let mut copy = buf;
        copy[3] = 0xFF;
        assert_eq!(decode_frame(&copy), FrameOutcome::Corrupt);
    }
}
