//! Segmented log storage: `wal-NNNNNN.seg` files in a directory (or a
//! single fixed file in legacy mode), a torn-tail-tolerant loader and
//! the append/fsync writer the group committer drives.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hana_types::{HanaError, Result};

use super::frame::{decode_frame, FrameOutcome};

/// Default size at which the active segment rolls over.
pub(crate) const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

/// File name of segment `seq`.
pub(crate) fn segment_name(seq: u64) -> String {
    format!("wal-{seq:06}.seg")
}

/// Where the log's bytes live.
#[derive(Debug, Clone)]
pub(crate) enum Storage {
    /// One fixed file, never rolled (the legacy `Wal::with_file` shape).
    SingleFile(PathBuf),
    /// A directory of rolling segments.
    Dir(PathBuf),
}

impl Storage {
    /// Segment files in replay order.
    pub(crate) fn segment_paths(&self) -> Result<Vec<PathBuf>> {
        match self {
            Storage::SingleFile(p) => Ok(if p.exists() {
                vec![p.clone()]
            } else {
                Vec::new()
            }),
            Storage::Dir(dir) => {
                let mut seqs: Vec<u64> = Vec::new();
                if dir.exists() {
                    for entry in fs::read_dir(dir)? {
                        let name = entry?.file_name();
                        let name = name.to_string_lossy();
                        if let Some(seq) = name
                            .strip_prefix("wal-")
                            .and_then(|s| s.strip_suffix(".seg"))
                            .and_then(|s| s.parse::<u64>().ok())
                        {
                            seqs.push(seq);
                        }
                    }
                }
                seqs.sort_unstable();
                Ok(seqs.iter().map(|&s| dir.join(segment_name(s))).collect())
            }
        }
    }
}

/// One decoded payload and where its frame ends (cumulative byte offset
/// across all segments, in replay order) — the crash-point harness keys
/// its committed-prefix assertions on these offsets.
pub(crate) struct LoadedPayload {
    /// The frame's payload bytes.
    pub payload: Vec<u8>,
    /// Cumulative end offset of the frame across the whole log.
    pub end_offset: u64,
}

/// The result of loading a log from disk.
pub(crate) struct LoadedLog {
    /// Every checksum-valid payload, in append order.
    pub payloads: Vec<LoadedPayload>,
    /// Bytes dropped from a torn tail (0 for a cleanly ended log).
    pub truncated_bytes: u64,
    /// Highest segment sequence number present (0 when empty).
    pub last_seq: u64,
}

/// Load all segments, tolerating a torn tail on the *last* one: the
/// damaged suffix is truncated away (crash mid-append) and reported via
/// `obs::warn`. Damage anywhere else is real corruption and errors.
pub(crate) fn load(storage: &Storage, repair: bool) -> Result<LoadedLog> {
    let paths = storage.segment_paths()?;
    let mut payloads = Vec::new();
    let mut truncated = 0u64;
    let mut base = 0u64;
    let last = paths.len().saturating_sub(1);
    for (i, path) in paths.iter().enumerate() {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let mut off = 0usize;
        loop {
            if off == bytes.len() {
                break;
            }
            match decode_frame(&bytes[off..]) {
                FrameOutcome::Complete { payload, consumed } => {
                    payloads.push(LoadedPayload {
                        payload: payload.to_vec(),
                        end_offset: base + (off + consumed) as u64,
                    });
                    off += consumed;
                }
                FrameOutcome::Torn | FrameOutcome::Corrupt if i == last => {
                    // A crash can only tear the tail of the active
                    // segment: drop the damaged suffix and carry on.
                    let lost = (bytes.len() - off) as u64;
                    truncated += lost;
                    hana_obs::warn(format!(
                        "WAL torn tail: truncating {lost} trailing byte(s) of {} \
                         (crash mid-append); committed prefix is intact",
                        path.display()
                    ));
                    if repair {
                        let f = OpenOptions::new().write(true).open(path)?;
                        f.set_len(off as u64)?;
                        f.sync_data()?;
                    }
                    break;
                }
                _ => {
                    return Err(HanaError::Io(format!(
                        "corrupt WAL frame at byte {off} of non-final segment {}",
                        path.display()
                    )));
                }
            }
        }
        base += off as u64;
    }
    let last_seq = match storage {
        Storage::SingleFile(_) => 0,
        Storage::Dir(dir) => paths
            .iter()
            .filter_map(|p| {
                p.strip_prefix(dir)
                    .ok()
                    .and_then(|n| n.to_str())
                    .and_then(|n| n.strip_prefix("wal-"))
                    .and_then(|n| n.strip_suffix(".seg"))
                    .and_then(|n| n.parse::<u64>().ok())
            })
            .max()
            .unwrap_or(0),
    };
    Ok(LoadedLog {
        payloads,
        truncated_bytes: truncated,
        last_seq,
    })
}

/// The append side: owns the active segment file, rolls it at the size
/// threshold (directory mode), fsyncs on demand and hosts the injected
/// fsync-failure point the crash harness drives.
pub(crate) struct LogWriter {
    storage: Storage,
    active: File,
    /// Shared so callers can observe the active segment even while the
    /// writer lives inside the group-committer thread.
    active_seq: Arc<AtomicU64>,
    active_len: u64,
    segment_bytes: u64,
    /// Injected failure: after this many successful syncs, every write
    /// and sync fails (the batch is dropped, modelling a lost fsync).
    fsyncs_until_fail: Option<u64>,
}

impl LogWriter {
    /// Open (append mode) the active segment of `storage`, creating the
    /// first one if the log is empty.
    pub(crate) fn open(
        storage: Storage,
        last_seq: u64,
        segment_bytes: u64,
        fsyncs_until_fail: Option<u64>,
    ) -> Result<LogWriter> {
        let path = match &storage {
            Storage::SingleFile(p) => p.clone(),
            Storage::Dir(dir) => {
                fs::create_dir_all(dir)?;
                dir.join(segment_name(last_seq.max(1)))
            }
        };
        let mut active = OpenOptions::new().create(true).append(true).open(&path)?;
        let active_len = active.seek(SeekFrom::End(0))?;
        Ok(LogWriter {
            active_seq: Arc::new(AtomicU64::new(match &storage {
                Storage::SingleFile(_) => 0,
                Storage::Dir(_) => last_seq.max(1),
            })),
            storage,
            active,
            active_len,
            segment_bytes,
            fsyncs_until_fail,
        })
    }

    /// Shared handle to the active segment's sequence number.
    pub(crate) fn seq_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.active_seq)
    }

    /// Sequence number of the active segment.
    pub(crate) fn active_seq(&self) -> u64 {
        self.active_seq.load(Ordering::SeqCst)
    }

    /// Append one batch of already-framed bytes. Rolls to a fresh
    /// segment first when the active one is full (a batch never splits
    /// across segments, so frames never do either).
    pub(crate) fn write_batch(&mut self, bytes: &[u8]) -> Result<()> {
        if self.failed() {
            return Err(HanaError::Io("WAL writer failed (injected)".into()));
        }
        if let Storage::Dir(_) = &self.storage {
            if self.active_len >= self.segment_bytes {
                self.roll()?;
            }
        }
        self.active.write_all(bytes)?;
        self.active_len += bytes.len() as u64;
        Ok(())
    }

    /// Make everything appended so far durable. Records fsync count and
    /// latency in the global registry.
    pub(crate) fn sync(&mut self) -> Result<()> {
        match &mut self.fsyncs_until_fail {
            Some(0) => {
                return Err(HanaError::Io(
                    "WAL fsync failed (injected failure point)".into(),
                ))
            }
            Some(n) => *n -= 1,
            None => {}
        }
        let start = Instant::now();
        self.active.sync_data()?;
        let reg = hana_obs::registry();
        reg.counter("hana_wal_fsyncs_total").inc();
        reg.histogram("hana_wal_fsync_ns")
            .record(start.elapsed().as_nanos() as u64);
        Ok(())
    }

    fn failed(&self) -> bool {
        self.fsyncs_until_fail == Some(0)
    }

    fn roll(&mut self) -> Result<()> {
        let Storage::Dir(dir) = &self.storage else {
            return Ok(());
        };
        // Seal the full segment before switching so no acknowledged
        // bytes live only in its OS cache.
        self.active.sync_data()?;
        let seq = self.active_seq.fetch_add(1, Ordering::SeqCst) + 1;
        let path = dir.join(segment_name(seq));
        self.active = OpenOptions::new().create(true).append(true).open(&path)?;
        self.active_len = 0;
        sync_dir(dir);
        hana_obs::registry()
            .counter("hana_wal_segment_rolls_total")
            .inc();
        Ok(())
    }
}

/// Best-effort directory fsync (makes creates/renames durable on
/// filesystems that need it; ignored where unsupported).
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}
