//! Checkpoint sidecar files: `checkpoint-NNNNNN.ckpt` next to the log
//! segments. A checkpoint captures an opaque engine snapshot (the
//! platform serializes row-store + column-store state) at a commit ID,
//! so recovery restores the snapshot and replays only the log suffix.
//!
//! Write protocol: serialize into a temp file, fsync it, rename into
//! place, fsync the directory — a crash leaves either the old set of
//! checkpoints or the old set plus one complete new file, never a
//! half-written one that validates. The content is one CRC-framed blob,
//! so a damaged file is detected and skipped at load time.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use hana_types::Result;

use super::frame::{decode_frame, encode_frame, FrameOutcome};
use super::segment::sync_dir;

/// One loaded checkpoint.
pub(crate) struct CheckpointData {
    /// Commit ID the snapshot was taken at: every commit `<= cid` is in
    /// the snapshot; recovery replays only commits past it.
    pub cid: u64,
    /// Highest transaction ID allocated when the snapshot was taken
    /// (lets TID allocation resume without rescanning a pruned prefix).
    pub max_tid: u64,
    /// Opaque engine snapshot.
    pub payload: Vec<u8>,
}

fn checkpoint_name(seq: u64) -> String {
    format!("checkpoint-{seq:06}.ckpt")
}

/// List checkpoint files, newest sequence first.
pub(crate) fn list(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = name
                .strip_prefix("checkpoint-")
                .and_then(|s| s.strip_suffix(".ckpt"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                found.push((seq, entry.path()));
            }
        }
    }
    found.sort_unstable_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    found
}

/// Durably write checkpoint `seq`.
pub(crate) fn write(dir: &Path, seq: u64, cid: u64, max_tid: u64, payload: &[u8]) -> Result<()> {
    fs::create_dir_all(dir)?;
    let mut body = Vec::with_capacity(payload.len() + 16);
    body.extend_from_slice(&cid.to_le_bytes());
    body.extend_from_slice(&max_tid.to_le_bytes());
    body.extend_from_slice(payload);
    let mut framed = Vec::with_capacity(body.len() + 8);
    encode_frame(&body, &mut framed);
    let tmp = dir.join(format!(".checkpoint-{seq:06}.tmp"));
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&framed)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, dir.join(checkpoint_name(seq)))?;
    sync_dir(dir);
    hana_obs::registry()
        .counter("hana_wal_checkpoints_total")
        .inc();
    Ok(())
}

/// Load the newest valid checkpoint whose `cid` is at most `cid_limit`.
///
/// The limit makes recovery robust against a sidecar that is *ahead* of
/// the surviving log (possible when a crash or a torture-test
/// truncation removes the log tail after the sidecar was written): a
/// checkpoint is only trusted once the log itself proves commits up to
/// its `cid` were durable. Damaged sidecars are skipped with a warning.
pub(crate) fn load_latest(dir: &Path, cid_limit: u64) -> Option<CheckpointData> {
    for (_seq, path) in list(dir) {
        let mut bytes = Vec::new();
        let Ok(mut f) = File::open(&path) else {
            continue;
        };
        if f.read_to_end(&mut bytes).is_err() {
            continue;
        }
        let FrameOutcome::Complete { payload, .. } = decode_frame(&bytes) else {
            hana_obs::warn(format!(
                "ignoring damaged checkpoint sidecar {}",
                path.display()
            ));
            continue;
        };
        if payload.len() < 16 {
            hana_obs::warn(format!(
                "ignoring short checkpoint sidecar {}",
                path.display()
            ));
            continue;
        }
        let cid = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let max_tid = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
        if cid > cid_limit {
            continue;
        }
        return Some(CheckpointData {
            cid,
            max_tid,
            payload: payload[16..].to_vec(),
        });
    }
    None
}

/// Highest checkpoint sequence on disk (0 when none).
pub(crate) fn max_seq(dir: &Path) -> u64 {
    list(dir).first().map(|&(s, _)| s).unwrap_or(0)
}
