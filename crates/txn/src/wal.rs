//! Write-ahead log with point-in-time recovery.
//!
//! The log records transaction lifecycle events. Replaying a (possibly
//! truncated) log classifies every transaction as committed, aborted or
//! **in-doubt** — the state §3.1 of the paper describes for transactions
//! that had touched the extended store when a crash hit between prepare
//! and commit. In-doubt transactions can then be manually aborted.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use hana_types::{HanaError, Result};

/// One log record. `cid` values order commits for point-in-time recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction `tid` started.
    Begin { tid: u64 },
    /// A logical redo record (engine, table, operation payload).
    Data {
        /// Transaction writing the data.
        tid: u64,
        /// Target engine ("hana" or an extended-storage name).
        engine: String,
        /// Serialized logical operation.
        payload: String,
    },
    /// Participant `participant` voted yes for `tid` (phase 1).
    Prepare { tid: u64, participant: String },
    /// Coordinator committed `tid` with commit ID `cid`. This record is
    /// the commit point: once durable, the transaction wins any crash.
    Commit { tid: u64, cid: u64 },
    /// Transaction `tid` rolled back.
    Abort { tid: u64 },
}

impl LogRecord {
    /// The transaction this record belongs to.
    pub fn tid(&self) -> u64 {
        match self {
            LogRecord::Begin { tid }
            | LogRecord::Data { tid, .. }
            | LogRecord::Prepare { tid, .. }
            | LogRecord::Commit { tid, .. }
            | LogRecord::Abort { tid } => *tid,
        }
    }

    fn serialize(&self) -> String {
        match self {
            LogRecord::Begin { tid } => format!("B\t{tid}"),
            LogRecord::Data {
                tid,
                engine,
                payload,
            } => format!("D\t{tid}\t{engine}\t{}", payload.replace('\n', "\\n")),
            LogRecord::Prepare { tid, participant } => format!("P\t{tid}\t{participant}"),
            LogRecord::Commit { tid, cid } => format!("C\t{tid}\t{cid}"),
            LogRecord::Abort { tid } => format!("A\t{tid}"),
        }
    }

    fn deserialize(line: &str) -> Result<LogRecord> {
        let mut parts = line.splitn(4, '\t');
        let bad = || HanaError::Io(format!("corrupt WAL record: '{line}'"));
        let kind = parts.next().ok_or_else(bad)?;
        let tid: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Ok(match kind {
            "B" => LogRecord::Begin { tid },
            "D" => LogRecord::Data {
                tid,
                engine: parts.next().ok_or_else(bad)?.to_string(),
                payload: parts.next().ok_or_else(bad)?.replace("\\n", "\n"),
            },
            "P" => LogRecord::Prepare {
                tid,
                participant: parts.next().ok_or_else(bad)?.to_string(),
            },
            "C" => LogRecord::Commit {
                tid,
                cid: parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?,
            },
            "A" => LogRecord::Abort { tid },
            _ => return Err(bad()),
        })
    }
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.serialize())
    }
}

/// The write-ahead log: an in-memory record list, optionally mirrored to
/// an append-only file.
#[derive(Debug, Default)]
pub struct Wal {
    records: Vec<LogRecord>,
    file: Option<BufWriter<File>>,
}

impl Wal {
    /// A volatile, in-memory log (unit tests, throwaway instances).
    pub fn in_memory() -> Wal {
        Wal::default()
    }

    /// A durable log appended to `path` (created if missing). Existing
    /// records are loaded so recovery can run over them.
    pub fn with_file(path: &Path) -> Result<Wal> {
        let mut records = Vec::new();
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            for line in reader.lines() {
                let line = line?;
                if !line.is_empty() {
                    records.push(LogRecord::deserialize(&line)?);
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal {
            records,
            file: Some(BufWriter::new(file)),
        })
    }

    /// Append and (if file-backed) flush a record. Flushing on every
    /// record models the synchronous log write at the commit point.
    pub fn append(&mut self, rec: LogRecord) -> Result<()> {
        if let Some(f) = &mut self.file {
            writeln!(f, "{}", rec.serialize())?;
            f.flush()?;
        }
        self.records.push(rec);
        Ok(())
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Classify every transaction seen in the log.
    pub fn recover(&self) -> RecoveryReport {
        RecoveryReport::from_records(&self.records, u64::MAX)
    }

    /// Point-in-time recovery: only commits with `cid <= upto_cid` count
    /// as committed; later commits are rolled back (treated as aborted).
    pub fn recover_to(&self, upto_cid: u64) -> RecoveryReport {
        RecoveryReport::from_records(&self.records, upto_cid)
    }
}

/// The outcome of replaying the log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions with a durable commit record, `(tid, cid)`,
    /// ascending by commit ID.
    pub committed: Vec<(u64, u64)>,
    /// Transactions aborted explicitly, or implicitly because they never
    /// reached prepare, or rolled back by point-in-time recovery.
    pub aborted: Vec<u64>,
    /// Transactions that prepared (at least one participant voted yes)
    /// but have neither commit nor abort record — §3.1's "in-doubt"
    /// transactions, with the participants that prepared.
    pub in_doubt: Vec<(u64, Vec<String>)>,
}

impl RecoveryReport {
    fn from_records(records: &[LogRecord], upto_cid: u64) -> RecoveryReport {
        use std::collections::BTreeMap;
        #[derive(Default)]
        struct St {
            prepared: Vec<String>,
            committed: Option<u64>,
            aborted: bool,
        }
        let mut txns: BTreeMap<u64, St> = BTreeMap::new();
        for rec in records {
            let st = txns.entry(rec.tid()).or_default();
            match rec {
                LogRecord::Prepare { participant, .. } => {
                    st.prepared.push(participant.clone());
                }
                LogRecord::Commit { cid, .. } => st.committed = Some(*cid),
                LogRecord::Abort { .. } => st.aborted = true,
                LogRecord::Begin { .. } | LogRecord::Data { .. } => {}
            }
        }
        let mut report = RecoveryReport::default();
        for (tid, st) in txns {
            match (st.committed, st.aborted) {
                (Some(cid), _) if cid <= upto_cid => report.committed.push((tid, cid)),
                (Some(_), _) => report.aborted.push(tid), // past the PIT target
                (None, true) => report.aborted.push(tid),
                (None, false) if !st.prepared.is_empty() => {
                    report.in_doubt.push((tid, st.prepared));
                }
                (None, false) => report.aborted.push(tid),
            }
        }
        report.committed.sort_by_key(|&(_, cid)| cid);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { tid: 1 },
            LogRecord::Data {
                tid: 1,
                engine: "hana".into(),
                payload: "insert t 1".into(),
            },
            LogRecord::Prepare {
                tid: 1,
                participant: "hana".into(),
            },
            LogRecord::Commit { tid: 1, cid: 100 },
            LogRecord::Begin { tid: 2 },
            LogRecord::Abort { tid: 2 },
            LogRecord::Begin { tid: 3 },
            LogRecord::Prepare {
                tid: 3,
                participant: "iq".into(),
            },
            // Crash: no outcome for tid 3.
            LogRecord::Begin { tid: 4 },
            LogRecord::Commit { tid: 4, cid: 101 },
        ]
    }

    #[test]
    fn recovery_classifies_transactions() {
        let mut wal = Wal::in_memory();
        for r in sample_records() {
            wal.append(r).unwrap();
        }
        let rep = wal.recover();
        assert_eq!(rep.committed, vec![(1, 100), (4, 101)]);
        assert_eq!(rep.aborted, vec![2]);
        assert_eq!(rep.in_doubt, vec![(3, vec!["iq".to_string()])]);
    }

    #[test]
    fn point_in_time_recovery_drops_later_commits() {
        let mut wal = Wal::in_memory();
        for r in sample_records() {
            wal.append(r).unwrap();
        }
        let rep = wal.recover_to(100);
        assert_eq!(rep.committed, vec![(1, 100)]);
        assert!(
            rep.aborted.contains(&4),
            "tid 4 committed after the PIT target"
        );
    }

    #[test]
    fn file_backed_log_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("hana-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::with_file(&path).unwrap();
            for r in sample_records() {
                wal.append(r).unwrap();
            }
        }
        let wal = Wal::with_file(&path).unwrap();
        assert_eq!(wal.records().len(), sample_records().len());
        assert_eq!(wal.recover().committed.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serialization_round_trips_with_escapes() {
        let rec = LogRecord::Data {
            tid: 7,
            engine: "iq".into(),
            payload: "line1\nline2\twith tab".into(),
        };
        let s = rec.serialize();
        assert!(!s.contains('\n'));
        assert_eq!(LogRecord::deserialize(&s).unwrap(), rec);
    }

    #[test]
    fn corrupt_records_are_errors() {
        assert!(LogRecord::deserialize("").is_err());
        assert!(LogRecord::deserialize("X\t1").is_err());
        assert!(LogRecord::deserialize("C\tnotanumber\t5").is_err());
        assert!(LogRecord::deserialize("C\t1").is_err());
    }
}
