//! Torn-tail regression (always-on): a log whose last frame was cut
//! short by a crash must open cleanly — the tail is truncated away with
//! a warning, never surfaced as an open error — and the repaired file
//! must not regrow the damage on the next append.

use std::path::PathBuf;

use hana_txn::{LogRecord, Wal};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hana-walrec-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_three_txns(path: &std::path::Path) -> u64 {
    let wal = Wal::with_file(path).unwrap();
    for tid in 1..=3 {
        wal.append(LogRecord::Begin { tid }).unwrap();
        wal.append(LogRecord::Data {
            tid,
            engine: "hana".into(),
            payload: format!("INSERT INTO t VALUES ({tid})"),
        })
        .unwrap();
        wal.append_durable(LogRecord::Commit { tid, cid: tid })
            .unwrap();
    }
    *wal.record_end_offsets().last().unwrap()
}

#[test]
fn hand_truncated_single_file_log_opens_with_a_repaired_tail() {
    let dir = scratch("torn");
    let path = dir.join("wal.log");
    let full = write_three_txns(&path);

    // Tear the file mid-frame: 5 bytes into the last commit record.
    let mut data = std::fs::read(&path).unwrap();
    assert_eq!(data.len() as u64, full);
    let torn_at = data.len() - 5;
    data.truncate(torn_at);
    std::fs::write(&path, &data).unwrap();

    // Opening must succeed, report the torn bytes, and recover the two
    // fully-framed transactions plus the now-uncommitted third.
    let wal = Wal::with_file(&path).unwrap();
    assert!(wal.truncated_bytes() > 0, "torn tail went unnoticed");
    let report = wal.recover();
    assert_eq!(report.committed, vec![(1, 1), (2, 2)]);
    drop(wal);

    // The repair physically removed the tail: appending now must not
    // interleave new frames with stale half-written bytes.
    let wal = Wal::with_file(&path).unwrap();
    assert_eq!(wal.truncated_bytes(), 0, "repair did not persist");
    wal.append(LogRecord::Begin { tid: 9 }).unwrap();
    wal.append_durable(LogRecord::Commit { tid: 9, cid: 3 })
        .unwrap();
    drop(wal);

    let report = Wal::with_file(&path).unwrap().recover();
    assert_eq!(report.committed, vec![(1, 1), (2, 2), (9, 3)]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corruption_in_a_sealed_segment_is_still_an_error() {
    use hana_txn::WalConfig;

    let dir = scratch("midflip");
    let config = WalConfig {
        group_commit_window: std::time::Duration::ZERO,
        segment_bytes: 128, // force several sealed segments
        ..WalConfig::default()
    };
    {
        let wal = Wal::open_dir_with(&dir, config.clone()).unwrap();
        for tid in 1..=10 {
            wal.append(LogRecord::Begin { tid }).unwrap();
            wal.append_durable(LogRecord::Commit { tid, cid: tid })
                .unwrap();
        }
        assert!(wal.segment_paths().len() > 1);
    }
    // A crash can only tear the *active* segment's tail. A bit flip in a
    // sealed segment is silent data damage — opening must refuse rather
    // than quietly drop history.
    let first = Wal::open_dir_with(&dir, config.clone())
        .unwrap()
        .segment_paths()
        .remove(0);
    let mut data = std::fs::read(&first).unwrap();
    let mid = data.len() / 2;
    data[mid] ^= 0x40;
    std::fs::write(&first, &data).unwrap();

    assert!(Wal::open_dir_with(&dir, config).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
