//! Crash-point torture matrix for the WAL (feature `crash-torture`).
//!
//! The harness never kills a process: a "crash at byte `k`" is a copy of
//! the log directory truncated to its first `k` bytes — exactly the
//! state a power loss leaves on disk when the tail of the last write
//! never made it. Recovery over every such prefix must satisfy, for the
//! committed set `R(k)`:
//!
//! 1. **committed prefix** — `R(k)` is a contiguous CID prefix of the
//!    full history (`cid = 1, 2, …, |R(k)|`),
//! 2. **monotonicity** — `R(k) ⊆ R(k+1)`,
//! 3. **completeness** — `R(total)` is the full committed set, and
//!    every durably-acknowledged commit is in `R(k)` for every `k`
//!    past its frame,
//! 4. **idempotence** — recovering a recovered log changes nothing.
//!
//! The random-workload tests derive their stream from
//! `CRASH_TORTURE_SEED` (printed below so a CI failure is replayable).

#![cfg(feature = "crash-torture")]

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use hana_txn::{LogRecord, RecoveryReport, Wal, WalConfig};
use proptest::test_runner::TestRng;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hana-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Per-commit-fsync config: deterministic on-disk layout, no committer
/// thread per reopened copy.
fn direct_config() -> WalConfig {
    WalConfig {
        group_commit_window: Duration::ZERO,
        ..WalConfig::default()
    }
}

/// The torture seed: `CRASH_TORTURE_SEED` if set, else a fixed default.
/// Printed so the CI job log pins the exact run.
fn torture_rng(test: &str) -> TestRng {
    let seed = std::env::var("CRASH_TORTURE_SEED").unwrap_or_else(|_| "20260808".into());
    eprintln!("CRASH_TORTURE_SEED={seed} (test {test})");
    TestRng::deterministic(&format!("{test}-{seed}"))
}

/// Copy the log at `src` truncated to its first `bytes` bytes (counting
/// across segments in replay order). Segments past the cut simply do
/// not exist in the copy — a crash mid-segment means later segments
/// were never created.
fn truncated_copy(src: &[PathBuf], dst: &Path, mut bytes: u64) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for path in src {
        if bytes == 0 {
            break;
        }
        let data = std::fs::read(path).unwrap();
        let take = (data.len() as u64).min(bytes);
        bytes -= take;
        std::fs::write(dst.join(path.file_name().unwrap()), &data[..take as usize]).unwrap();
    }
}

fn total_bytes(paths: &[PathBuf]) -> u64 {
    paths
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .sum()
}

/// Assert the committed-prefix invariant: CIDs are exactly `1..=n`.
fn assert_contiguous_prefix(report: &RecoveryReport, at: u64) {
    let mut cids: Vec<u64> = report.committed.iter().map(|&(_, cid)| cid).collect();
    cids.sort_unstable();
    let expect: Vec<u64> = (1..=cids.len() as u64).collect();
    assert_eq!(
        cids, expect,
        "truncation at byte {at}: committed CIDs are not a contiguous prefix"
    );
}

/// Write `txns` single-record transactions, each durably committed, and
/// return the log's segment paths in replay order.
fn committed_workload(dir: &Path, config: WalConfig, txns: u64) -> Vec<PathBuf> {
    let wal = Wal::open_dir_with(dir, config).unwrap();
    for tid in 1..=txns {
        wal.append(LogRecord::Begin { tid }).unwrap();
        wal.append(LogRecord::Data {
            tid,
            engine: "hana".into(),
            payload: format!("INSERT INTO t VALUES ({tid})"),
        })
        .unwrap();
        wal.append_durable(LogRecord::Commit { tid, cid: tid })
            .unwrap();
    }
    wal.segment_paths()
}

#[test]
fn every_byte_truncation_recovers_a_committed_prefix() {
    let dir = scratch("matrix");
    let paths = committed_workload(&dir, direct_config(), 40);
    let total = total_bytes(&paths);
    let copy = scratch("matrix-copy");

    let mut prev: Vec<(u64, u64)> = Vec::new();
    for k in 0..=total {
        truncated_copy(&paths, &copy, k);
        let wal = Wal::open_dir_with(&copy, direct_config()).unwrap();
        let report = wal.recover();
        assert!(report.in_doubt.is_empty());
        assert_contiguous_prefix(&report, k);
        // Monotone: everything recovered at k-1 is still there at k.
        assert!(
            prev.iter().all(|c| report.committed.contains(c)),
            "truncation at byte {k} lost a previously recovered commit"
        );
        prev = report.committed;
    }
    // The untruncated log recovers everything.
    assert_eq!(prev.len(), 40);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&copy).ok();
}

#[test]
fn recovery_is_idempotent_at_every_truncation_point() {
    let dir = scratch("idem");
    let paths = committed_workload(&dir, direct_config(), 12);
    let total = total_bytes(&paths);
    let copy = scratch("idem-copy");

    for k in 0..=total {
        truncated_copy(&paths, &copy, k);
        let first = Wal::open_dir_with(&copy, direct_config())
            .unwrap()
            .recover();
        // Reopen the *repaired* copy: the torn tail was truncated away,
        // so the second recovery must see the same history, cleanly.
        let wal = Wal::open_dir_with(&copy, direct_config()).unwrap();
        assert_eq!(
            wal.truncated_bytes(),
            0,
            "byte {k}: repair left a torn tail behind"
        );
        assert_eq!(wal.recover().committed, first.committed, "byte {k}");
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&copy).ok();
}

#[test]
fn truncation_matrix_holds_across_segment_rolls() {
    let dir = scratch("segroll");
    let config = WalConfig {
        group_commit_window: Duration::ZERO,
        segment_bytes: 256, // force frequent rolls
        ..WalConfig::default()
    };
    let paths = committed_workload(&dir, config.clone(), 30);
    assert!(paths.len() > 1, "workload must span several segments");
    let total = total_bytes(&paths);
    let copy = scratch("segroll-copy");

    for k in 0..=total {
        truncated_copy(&paths, &copy, k);
        let wal = Wal::open_dir_with(&copy, config.clone()).unwrap();
        let report = wal.recover();
        assert_contiguous_prefix(&report, k);
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&copy).ok();
}

#[test]
fn seeded_random_workloads_survive_random_crashes() {
    let mut rng = torture_rng("seeded_random_workloads");
    for case in 0..8 {
        let dir = scratch(&format!("rand-{case}"));
        let config = WalConfig {
            group_commit_window: Duration::ZERO,
            segment_bytes: 128 + rng.below(4096),
            ..WalConfig::default()
        };
        // Random mix: committed, aborted, and dangling transactions with
        // random payload sizes.
        let mut committed = Vec::new();
        {
            let wal = Wal::open_dir_with(&dir, config.clone()).unwrap();
            let mut cid = 0;
            for tid in 1..=(5 + rng.below(25)) {
                wal.append(LogRecord::Begin { tid }).unwrap();
                wal.append(LogRecord::Data {
                    tid,
                    engine: "hana".into(),
                    payload: "x".repeat(1 + rng.below(200) as usize),
                })
                .unwrap();
                match rng.below(10) {
                    0..=6 => {
                        cid += 1;
                        wal.append_durable(LogRecord::Commit { tid, cid }).unwrap();
                        committed.push((tid, cid));
                    }
                    7..=8 => wal.append(LogRecord::Abort { tid }).unwrap(),
                    _ => {} // crashed mid-flight: neither committed nor aborted
                }
            }
            wal.sync().unwrap();
        }
        let paths = Wal::open_dir_with(&dir, config.clone())
            .unwrap()
            .segment_paths();
        let total = total_bytes(&paths);
        let copy = scratch(&format!("rand-copy-{case}"));
        for _ in 0..40 {
            let k = rng.below(total + 1);
            truncated_copy(&paths, &copy, k);
            let report = Wal::open_dir_with(&copy, config.clone()).unwrap().recover();
            assert_contiguous_prefix(&report, k);
            // Everything recovered must be a real commit from the run.
            for c in &report.committed {
                assert!(committed.contains(c), "byte {k}: phantom commit {c:?}");
            }
        }
        // The full log recovers every committed transaction.
        let full = Wal::open_dir_with(&dir, config).unwrap().recover();
        assert_eq!(full.committed, committed);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&copy).ok();
    }
}

#[test]
fn fsync_failures_poison_but_never_lose_acked_commits() {
    let mut rng = torture_rng("fsync_failures");
    for case in 0..6 {
        let dir = scratch(&format!("fsync-{case}"));
        let config = WalConfig {
            group_commit_window: Duration::ZERO,
            fsyncs_until_fail: Some(rng.below(12)),
            ..WalConfig::default()
        };
        let mut acked = Vec::new();
        {
            let wal = Wal::open_dir_with(&dir, config).unwrap();
            for tid in 1..=20u64 {
                if wal.append(LogRecord::Begin { tid }).is_err() {
                    break;
                }
                let commit = LogRecord::Commit { tid, cid: tid };
                match wal.append_durable(commit) {
                    Ok(()) => acked.push((tid, tid)),
                    Err(_) => {
                        // Poisoned: every later durable append must also
                        // fail — no record may slip past a lost prefix.
                        assert!(wal.poisoned().is_some());
                        assert!(wal
                            .append_durable(LogRecord::Commit { tid: 99, cid: 99 })
                            .is_err());
                        break;
                    }
                }
            }
        }
        // Reopen without failpoints: every acknowledged commit is there.
        let report = Wal::open_dir(&dir).unwrap().recover();
        for c in &acked {
            assert!(
                report.committed.contains(c),
                "case {case}: acked commit {c:?} lost after fsync failure"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn group_commit_batches_crash_to_a_committed_prefix() {
    let dir = scratch("group");
    let config = WalConfig {
        group_commit_window: Duration::from_micros(300),
        ..WalConfig::default()
    };
    {
        let wal = Arc::new(Wal::open_dir_with(&dir, config.clone()).unwrap());
        // 8 threads × 25 txns race through the group committer; every
        // ticket is awaited, so all 200 commits are durably acked.
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        let tid = t * 25 + i + 1;
                        wal.append(LogRecord::Begin { tid }).unwrap();
                        let ticket = wal.submit_durable(LogRecord::Commit { tid, cid: tid });
                        ticket.wait().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
    let paths = Wal::open_dir_with(&dir, config.clone())
        .unwrap()
        .segment_paths();
    let total = total_bytes(&paths);
    assert_eq!(
        Wal::open_dir_with(&dir, config.clone())
            .unwrap()
            .recover()
            .committed
            .len(),
        200
    );
    // Crash anywhere: recovered commits are always a subset of the
    // acked 200, recovery never errors, and re-recovery is stable.
    let mut rng = torture_rng("group_commit_batches");
    let copy = scratch("group-copy");
    for _ in 0..60 {
        let k = rng.below(total + 1);
        truncated_copy(&paths, &copy, k);
        let report = Wal::open_dir_with(&copy, config.clone()).unwrap().recover();
        for &(tid, cid) in &report.committed {
            assert_eq!(tid, cid);
            assert!(tid >= 1 && tid <= 200);
        }
        let again = Wal::open_dir_with(&copy, config.clone()).unwrap().recover();
        assert_eq!(again.committed, report.committed);
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&copy).ok();
}
