//! End-to-end ESP tests covering the three §3.2 use cases, pattern
//! alerts, the HDFS archive adapter, replay and threaded ingestion.

use std::sync::Arc;

use parking_lot::Mutex;

use hana_esp::{parse_archive_line, EspEngine, Sink};
use hana_hadoop::Hdfs;
use hana_types::{DataType, ResultSet, Row, Schema, Value};

fn telecom_engine() -> EspEngine {
    let esp = EspEngine::new();
    esp.deploy(
        "CREATE INPUT STREAM network_events SCHEMA \
             (cell VARCHAR(10), kind VARCHAR(10), load DOUBLE);\n\
         CREATE OUTPUT WINDOW cell_health AS \
             SELECT cell, AVG(load) AS avg_load, COUNT(*) AS events \
             FROM network_events WHERE kind = 'status' GROUP BY cell \
             KEEP 1000 ROWS;\n\
         CREATE OUTPUT STREAM overload_alerts AS \
             SELECT cell, load FROM network_events WHERE load > 95;",
    )
    .unwrap();
    esp
}

fn ev(cell: &str, kind: &str, load: f64) -> Row {
    Row::from_values([Value::from(cell), Value::from(kind), Value::Double(load)])
}

#[test]
fn use_case_1_prefilter_aggregate_forward() {
    let esp = telecom_engine();
    // A "HANA table" the window forwards into.
    let stored: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    esp.attach_sink("cell_health", Sink::Memory(Arc::clone(&stored)))
        .unwrap();
    for i in 0..100 {
        esp.send(
            "network_events",
            i,
            ev(
                if i % 2 == 0 { "c1" } else { "c2" },
                "status",
                50.0 + (i % 10) as f64,
            ),
        )
        .unwrap();
        // Non-matching kinds are prefiltered out of the window.
        esp.send("network_events", i, ev("c1", "billing", 0.0))
            .unwrap();
    }
    let emitted = esp.flush_window("cell_health").unwrap();
    assert_eq!(emitted.len(), 2, "one aggregate row per cell");
    assert_eq!(stored.lock().len(), 2, "forwarded into the table sink");
    // Tumbled: the next snapshot is empty (global aggregate of nothing).
    let snap = esp.window_snapshot("cell_health").unwrap();
    assert_eq!(snap.len(), 0);
}

#[test]
fn use_case_2_esp_join_enriches_events() {
    let esp = EspEngine::new();
    esp.deploy("CREATE INPUT STREAM gps SCHEMA (cell VARCHAR(10), lat DOUBLE);")
        .unwrap();
    // Reference data pushed from the HANA store: cell -> city.
    esp.register_reference(
        "cells",
        ResultSet::new(
            Schema::of(&[("cell_id", DataType::Varchar), ("city", DataType::Varchar)]),
            vec![
                Row::from_values([Value::from("c1"), Value::from("Walldorf")]),
                Row::from_values([Value::from("c2"), Value::from("Dresden")]),
            ],
        ),
    );
    esp.deploy(
        "CREATE OUTPUT STREAM located AS \
             SELECT g.cell, r.city, g.lat FROM gps g JOIN cells r ON g.cell = r.cell_id",
    )
    .unwrap();
    let out: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    esp.attach_sink("located", Sink::Memory(Arc::clone(&out)))
        .unwrap();
    esp.send(
        "gps",
        0,
        Row::from_values([Value::from("c1"), Value::Double(49.3)]),
    )
    .unwrap();
    esp.send(
        "gps",
        1,
        Row::from_values([Value::from("cX"), Value::Double(0.0)]),
    )
    .unwrap(); // no reference partner -> dropped
    let rows = out.lock();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][1], Value::from("Walldorf"));
}

#[test]
fn use_case_3_hana_join_window_snapshot() {
    let esp = telecom_engine();
    for i in 0..10 {
        esp.send("network_events", i, ev("c7", "status", 80.0))
            .unwrap();
    }
    // The federated query side reads the live window as a relation.
    let snap = esp.window_snapshot("cell_health").unwrap();
    assert_eq!(snap.len(), 1);
    assert_eq!(snap.schema.index_of("avg_load"), Some(1));
    assert_eq!(snap.rows[0][1], Value::Double(80.0));
    assert_eq!(snap.rows[0][2], Value::Int(10));
    assert_eq!(esp.window_schema("cell_health").unwrap().len(), 3);
}

#[test]
fn alerts_stream_and_pattern_detection() {
    let esp = telecom_engine();
    let alerts: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    esp.attach_sink("overload_alerts", Sink::Memory(Arc::clone(&alerts)))
        .unwrap();
    // Outage pattern: overload, then an outage event, within 5s.
    esp.define_pattern(
        "outage",
        "network_events",
        &["load > 95", "kind = 'outage'"],
        5,
    )
    .unwrap();
    esp.send("network_events", 0, ev("c1", "status", 99.0))
        .unwrap();
    esp.send("network_events", 1_000_000, ev("c1", "outage", 0.0))
        .unwrap();
    assert_eq!(alerts.lock().len(), 1, "overload alert forwarded");
    let matches = esp.take_alerts("outage");
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].len(), 2);
    assert!(esp.take_alerts("outage").is_empty(), "drained");
}

#[test]
fn hdfs_archive_and_replay() {
    let esp = telecom_engine();
    let hdfs = Arc::new(Hdfs::new(2));
    esp.attach_sink(
        "network_events",
        Sink::Hdfs {
            hdfs: Arc::clone(&hdfs),
            path: "/archive/network/day1".into(),
        },
    )
    .unwrap();
    for i in 0..50 {
        esp.send("network_events", i, ev("c1", "status", i as f64))
            .unwrap();
    }
    let lines = hdfs.read_lines("/archive/network/day1").unwrap();
    assert_eq!(lines.len(), 50, "raw events archived");

    // Replay the archive into a fresh engine (pattern verification).
    let dev = telecom_engine();
    let schema = Schema::of(&[
        ("cell", DataType::Varchar),
        ("kind", DataType::Varchar),
        ("load", DataType::Double),
    ]);
    let ts = std::cell::Cell::new(0i64);
    let replayed = dev
        .replay_hdfs(&hdfs, "/archive/network/day1", "network_events", |line| {
            ts.set(ts.get() + 1);
            parse_archive_line(line, &schema).map(|r| (ts.get(), r))
        })
        .unwrap();
    assert_eq!(replayed, 50);
    let snap = dev.window_snapshot("cell_health").unwrap();
    assert_eq!(snap.rows[0][2], Value::Int(50));
}

#[test]
fn window_retention_limits_state() {
    let esp = EspEngine::new();
    esp.deploy(
        "CREATE INPUT STREAM s SCHEMA (v DOUBLE);\n\
         CREATE OUTPUT WINDOW recent AS SELECT COUNT(v) FROM s KEEP 10 ROWS;\n\
         CREATE OUTPUT WINDOW last_minute AS SELECT COUNT(v) FROM s KEEP 60 SECONDS;",
    )
    .unwrap();
    for i in 0..100i64 {
        esp.send(
            "s",
            i * 1_000_000,
            Row::from_values([Value::Double(i as f64)]),
        )
        .unwrap();
    }
    let recent = esp.window_snapshot("recent").unwrap();
    assert_eq!(recent.rows[0][0], Value::Int(10));
    let last_minute = esp.window_snapshot("last_minute").unwrap();
    // Events at ts 39..99 seconds are within 60s of t=99.
    assert_eq!(last_minute.rows[0][0], Value::Int(61));
}

#[test]
fn threaded_ingestion() {
    let esp = Arc::new(telecom_engine());
    let (tx, rx) = crossbeam::channel::unbounded::<(i64, Row)>();
    let consumer = {
        let esp = Arc::clone(&esp);
        std::thread::spawn(move || {
            for (ts, row) in rx {
                esp.send("network_events", ts, row).unwrap();
            }
        })
    };
    let producers: Vec<_> = (0..4)
        .map(|p| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..250 {
                    tx.send((i, ev(&format!("c{p}"), "status", 42.0))).unwrap();
                }
            })
        })
        .collect();
    drop(tx);
    for p in producers {
        p.join().unwrap();
    }
    consumer.join().unwrap();
    let (events_in, _) = esp.stats();
    assert_eq!(events_in, 1000);
    let snap = esp.window_snapshot("cell_health").unwrap();
    assert_eq!(snap.len(), 4);
}

#[test]
fn errors_and_validation() {
    let esp = EspEngine::new();
    assert!(esp.send("nope", 0, Row::new()).is_err());
    esp.deploy("CREATE INPUT STREAM s SCHEMA (v INT)").unwrap();
    // Wrong arity.
    assert!(esp.send("s", 0, Row::new()).is_err());
    // Unknown sink target.
    assert!(esp
        .attach_sink("ghost", Sink::Memory(Arc::new(Mutex::new(Vec::new()))))
        .is_err());
    // Window over unknown stream.
    assert!(esp
        .deploy("CREATE OUTPUT WINDOW w AS SELECT v FROM ghost KEEP 1 ROWS")
        .is_err());
    // ESP join without registered reference.
    assert!(esp
        .deploy("CREATE OUTPUT STREAM o AS SELECT s.v FROM s JOIN r ON s.v = r.v")
        .is_err());
    // Duplicate stream.
    assert!(esp.deploy("CREATE INPUT STREAM s SCHEMA (v INT)").is_err());
    assert!(esp.window_snapshot("missing").is_err());
}

#[test]
fn bounded_input_queue_blocks_producers_and_counts_engagements() {
    let esp = Arc::new(EspEngine::new());
    esp.set_input_queue_cap(2);
    esp.deploy("CREATE INPUT STREAM slow SCHEMA (v INT)")
        .unwrap();
    // A sink that holds every event until released: the engine lock stays
    // held inside emit(), so producers queue up at the gate.
    let release: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)> =
        Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let rel = Arc::clone(&release);
    let writer: hana_esp::TableWriter = Arc::new(move |_t: &str, _s: &Schema, _r: &[Row]| {
        let (lock, cv) = &*rel;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cv.wait(open).unwrap();
        }
        Ok(())
    });
    esp.attach_sink(
        "slow",
        Sink::Table {
            table: "t".into(),
            writer,
        },
    )
    .unwrap();

    let before = hana_obs::registry()
        .snapshot()
        .counter("hana_esp_backpressure_engaged_total");
    let producers: Vec<_> = (0..4)
        .map(|i| {
            let esp = Arc::clone(&esp);
            std::thread::spawn(move || esp.send("slow", i, Row::from_values([Value::Int(i)])))
        })
        .collect();
    // Wait until the gate is saturated: 2 admitted, the rest blocked.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while esp.pending_events("slow") < 2 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(esp.pending_events("slow"), 2);
    // Give the remaining producers a moment to hit the full gate.
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert_eq!(esp.pending_events("slow"), 2);

    // Open the sink: everyone drains.
    {
        let (lock, cv) = &*release;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    for p in producers {
        p.join().unwrap().unwrap();
    }
    assert_eq!(esp.pending_events("slow"), 0);
    let after = hana_obs::registry()
        .snapshot()
        .counter("hana_esp_backpressure_engaged_total");
    assert!(
        after > before,
        "backpressure engagement should be counted ({before} -> {after})"
    );
    let (events_in, _) = esp.stats();
    assert_eq!(events_in, 4);
}

#[test]
fn sinks_detach_individually_by_id() {
    let esp = telecom_engine();
    let a: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    let b: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    let id_a = esp
        .attach_sink("overload_alerts", Sink::Memory(Arc::clone(&a)))
        .unwrap();
    let _id_b = esp
        .attach_sink("overload_alerts", Sink::Memory(Arc::clone(&b)))
        .unwrap();
    esp.send("network_events", 0, ev("c1", "status", 99.0))
        .unwrap();
    assert_eq!(a.lock().len(), 1);
    assert_eq!(b.lock().len(), 1);
    assert!(esp.detach_sink("overload_alerts", id_a));
    assert!(!esp.detach_sink("overload_alerts", id_a));
    esp.send("network_events", 1, ev("c1", "status", 99.0))
        .unwrap();
    assert_eq!(a.lock().len(), 1, "detached sink must not receive rows");
    assert_eq!(b.lock().len(), 2);
    assert_eq!(esp.detach_sinks("overload_alerts"), 1);
    use hana_esp::EspTargetKind;
    assert_eq!(
        esp.target_kind("network_events").unwrap(),
        EspTargetKind::Stream
    );
    assert_eq!(
        esp.target_kind("cell_health").unwrap(),
        EspTargetKind::Window
    );
    assert_eq!(
        esp.target_kind("overload_alerts").unwrap(),
        EspTargetKind::OutputStream
    );
    assert!(esp.target_kind("nope").is_err());
}
