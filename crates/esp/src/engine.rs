//! The event-stream-processing engine ("HANA ESP").
//!
//! Implements the three §3.2 use cases (Figure 9):
//!
//! 1. **Prefilter/pre-aggregate and forward** — windows aggregate
//!    filtered events; [`EspEngine::flush_window`] emits the window
//!    content to attached sinks (e.g. a HANA table) and tumbles;
//! 2. **ESP join** — reference data pushed from the HANA store
//!    ([`EspEngine::register_reference`]) enriches events during CCL
//!    execution;
//! 3. **HANA join** — [`EspEngine::window_snapshot`] exposes the live
//!    window as a relation the federated query processor can join with.
//!
//! Raw events can additionally be archived to HDFS through an attached
//! adapter and later **replayed** ([`EspEngine::replay_hdfs`]) "to verify
//! the effectiveness of improved event patterns" — and, per the paper,
//! "no transactional guarantees are provided".

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use hana_hadoop::Hdfs;
use hana_sql::{Expr, JoinKind, Query, TableRef};
use hana_types::{HanaError, Result, ResultSet, Row, Schema, Value};

use crate::ccl::{parse_ccl, CclStatement};
use crate::pattern::PatternMatcher;
use crate::window::{event_passes, validate_window_query, window_output, WindowState};

/// Write callback type of a [`Sink::Table`].
pub type TableWriter = Arc<dyn Fn(&str, &Schema, &[Row]) -> Result<()> + Send + Sync>;

/// Handle returned by [`EspEngine::attach_sink`]; pass it to
/// [`EspEngine::detach_sink`] to remove exactly that sink.
pub type SinkId = u64;

/// What kind of CCL object a name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EspTargetKind {
    /// Raw input stream.
    Stream,
    /// Aggregating window (rows reach sinks on [`EspEngine::flush_window`]).
    Window,
    /// Stateless derived stream (rows reach sinks per event).
    OutputStream,
}

/// Default bound of a stream's input queue: events admitted into the
/// engine ahead of processing before further [`EspEngine::send`] calls
/// block. Overridable via `HANA_ESP_INPUT_QUEUE_EVENTS`.
pub const DEFAULT_INPUT_QUEUE_EVENTS: usize = 65_536;

/// Per-stream admission gate: a counting semaphore in front of the
/// engine lock. Slow sinks (e.g. an ingest pipeline applying
/// backpressure) hold the engine lock, so waiting producers pile up
/// here instead of growing unboundedly.
struct StreamGate {
    cap: usize,
    queued: std::sync::Mutex<usize>,
    space: std::sync::Condvar,
    engaged: AtomicBool,
}

impl StreamGate {
    fn new(cap: usize) -> StreamGate {
        StreamGate {
            cap: cap.max(1),
            queued: std::sync::Mutex::new(0),
            space: std::sync::Condvar::new(),
            engaged: AtomicBool::new(false),
        }
    }

    fn acquire(&self, stream: &str) {
        let mut q = self.queued.lock().expect("gate poisoned");
        if *q >= self.cap {
            hana_obs::registry()
                .counter("hana_esp_backpressure_engaged_total")
                .inc();
            // Warn once per engagement episode, not once per blocked event.
            if !self.engaged.swap(true, Ordering::Relaxed) {
                hana_obs::warn(format!(
                    "esp: stream '{stream}' input queue full ({} events); \
                     blocking producers (backpressure)",
                    self.cap
                ));
            }
            while *q >= self.cap {
                q = self.space.wait(q).expect("gate poisoned");
            }
        }
        *q += 1;
    }

    fn release(&self) {
        let mut q = self.queued.lock().expect("gate poisoned");
        *q = q.saturating_sub(1);
        if *q * 2 < self.cap {
            self.engaged.store(false, Ordering::Relaxed);
        }
        self.space.notify_one();
    }

    fn depth(&self) -> usize {
        *self.queued.lock().expect("gate poisoned")
    }
}

/// Releases the gate slot even when processing errors or panics.
struct GateGuard<'a>(&'a StreamGate);

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

fn input_queue_cap_from_env() -> usize {
    match std::env::var("HANA_ESP_INPUT_QUEUE_EVENTS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                hana_obs::warn(format!(
                    "esp: ignoring invalid HANA_ESP_INPUT_QUEUE_EVENTS='{raw}' \
                     (want a positive integer); using {DEFAULT_INPUT_QUEUE_EVENTS}"
                ));
                DEFAULT_INPUT_QUEUE_EVENTS
            }
        },
        Err(_) => DEFAULT_INPUT_QUEUE_EVENTS,
    }
}

/// Where emitted rows go.
pub enum Sink {
    /// Forward into a platform table (the writer is wired by
    /// `hana-core`): `(table, schema, rows)`.
    Table {
        /// Target table name.
        table: String,
        /// Write callback.
        writer: TableWriter,
    },
    /// Append raw delimited rows to an HDFS file (the archive adapter
    /// of Figure 8).
    Hdfs {
        /// Target file system.
        hdfs: Arc<Hdfs>,
        /// Target path.
        path: String,
    },
    /// Collect rows in memory (tests, monitoring).
    Memory(Arc<Mutex<Vec<Row>>>),
}

struct WindowDef {
    source: String,
    query: Query,
    state: WindowState,
    input_schema: Schema,
}

struct OutStreamDef {
    source: String,
    query: Query,
    /// Joined evaluation schema (stream + reference bindings).
    eval_schema: Schema,
    /// Reference joins: `(ref_name, stream_key_idx, ref_key_idx)`
    ref_joins: Vec<(String, usize, usize)>,
}

struct PatternDef {
    source: String,
    matcher: PatternMatcher,
    alerts: Vec<Vec<Row>>,
}

#[derive(Default)]
struct Inner {
    streams: HashMap<String, Schema>,
    windows: HashMap<String, WindowDef>,
    out_streams: HashMap<String, OutStreamDef>,
    patterns: HashMap<String, PatternDef>,
    sinks: HashMap<String, Vec<(SinkId, Sink)>>,
    references: HashMap<String, ResultSet>,
    next_sink_id: SinkId,
    events_in: u64,
    events_emitted: u64,
}

/// The ESP engine. All methods take `&self`; state is internally locked
/// so the engine can be shared across ingestion threads.
pub struct EspEngine {
    inner: Mutex<Inner>,
    /// Per-stream admission gates, created lazily on first send.
    gates: Mutex<HashMap<String, Arc<StreamGate>>>,
    /// Bound applied to newly created gates.
    input_cap: AtomicUsize,
}

impl EspEngine {
    /// An empty engine.
    pub fn new() -> EspEngine {
        EspEngine {
            inner: Mutex::new(Inner::default()),
            gates: Mutex::new(HashMap::new()),
            input_cap: AtomicUsize::new(input_queue_cap_from_env()),
        }
    }

    /// Override the per-stream input queue bound (events admitted ahead
    /// of processing before producers block). Applies to streams that
    /// have not sent yet; existing gates keep their bound.
    pub fn set_input_queue_cap(&self, cap: usize) {
        self.input_cap.store(cap.max(1), Ordering::Relaxed);
        self.gates.lock().clear();
    }

    /// Events currently admitted (queued or processing) on a stream.
    /// Observability hook for the backpressure gate.
    pub fn pending_events(&self, stream: &str) -> usize {
        self.gates
            .lock()
            .get(&stream.to_ascii_lowercase())
            .map(|g| g.depth())
            .unwrap_or(0)
    }

    fn gate(&self, key: &str) -> Arc<StreamGate> {
        let mut gates = self.gates.lock();
        Arc::clone(
            gates.entry(key.to_string()).or_insert_with(|| {
                Arc::new(StreamGate::new(self.input_cap.load(Ordering::Relaxed)))
            }),
        )
    }

    /// Deploy a CCL script (streams, windows, derived streams).
    pub fn deploy(&self, ccl: &str) -> Result<()> {
        for stmt in parse_ccl(ccl)? {
            self.deploy_statement(stmt)?;
        }
        Ok(())
    }

    fn deploy_statement(&self, stmt: CclStatement) -> Result<()> {
        let mut inner = self.inner.lock();
        match stmt {
            CclStatement::CreateInputStream { name, schema } => {
                if inner.streams.contains_key(&name) {
                    return Err(HanaError::Stream(format!("stream '{name}' exists")));
                }
                inner.streams.insert(name, schema);
            }
            CclStatement::CreateWindow { name, query, keep } => {
                validate_window_query(&query)?;
                let (source, input_schema) = resolve_source(&inner, &query)?;
                inner.windows.insert(
                    name,
                    WindowDef {
                        source,
                        query,
                        state: WindowState::new(keep),
                        input_schema,
                    },
                );
            }
            CclStatement::CreateOutputStream { name, query } => {
                let def = build_out_stream(&inner, query)?;
                inner.out_streams.insert(name, def);
            }
        }
        Ok(())
    }

    /// Attach a sink to a stream (raw events), window or output stream.
    /// Returns a handle for [`EspEngine::detach_sink`].
    pub fn attach_sink(&self, target: &str, sink: Sink) -> Result<SinkId> {
        let mut inner = self.inner.lock();
        let t = target.to_ascii_lowercase();
        if !inner.streams.contains_key(&t)
            && !inner.windows.contains_key(&t)
            && !inner.out_streams.contains_key(&t)
        {
            return Err(HanaError::Stream(format!("unknown sink target '{target}'")));
        }
        inner.next_sink_id += 1;
        let id = inner.next_sink_id;
        inner.sinks.entry(t).or_default().push((id, sink));
        Ok(id)
    }

    /// Remove one sink by the handle `attach_sink` returned. Returns
    /// whether it was still attached.
    pub fn detach_sink(&self, target: &str, id: SinkId) -> bool {
        let mut inner = self.inner.lock();
        let t = target.to_ascii_lowercase();
        let Some(sinks) = inner.sinks.get_mut(&t) else {
            return false;
        };
        let before = sinks.len();
        sinks.retain(|(sid, _)| *sid != id);
        let removed = sinks.len() < before;
        if sinks.is_empty() {
            inner.sinks.remove(&t);
        }
        removed
    }

    /// Remove every sink attached to a target; returns how many.
    pub fn detach_sinks(&self, target: &str) -> usize {
        self.inner
            .lock()
            .sinks
            .remove(&target.to_ascii_lowercase())
            .map(|v| v.len())
            .unwrap_or(0)
    }

    /// What kind of CCL object `name` refers to.
    pub fn target_kind(&self, name: &str) -> Result<EspTargetKind> {
        let inner = self.inner.lock();
        let key = name.to_ascii_lowercase();
        if inner.streams.contains_key(&key) {
            Ok(EspTargetKind::Stream)
        } else if inner.windows.contains_key(&key) {
            Ok(EspTargetKind::Window)
        } else if inner.out_streams.contains_key(&key) {
            Ok(EspTargetKind::OutputStream)
        } else {
            Err(HanaError::Stream(format!(
                "unknown stream or window '{name}'"
            )))
        }
    }

    /// Push reference data for ESP joins ("slowly changing data is
    /// pushed … from the SAP HANA store into the ESP").
    pub fn register_reference(&self, name: &str, data: ResultSet) {
        self.inner
            .lock()
            .references
            .insert(name.to_ascii_lowercase(), data);
    }

    /// Define a pattern over a stream: `steps` are boolean SQL
    /// expressions that must match successive events within
    /// `within_secs`.
    pub fn define_pattern(
        &self,
        name: &str,
        stream: &str,
        steps: &[&str],
        within_secs: i64,
    ) -> Result<()> {
        let mut inner = self.inner.lock();
        let schema = inner
            .streams
            .get(&stream.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| HanaError::Stream(format!("unknown stream '{stream}'")))?;
        let exprs: Vec<Expr> = steps
            .iter()
            .map(|s| parse_predicate(s))
            .collect::<Result<_>>()?;
        inner.patterns.insert(
            name.to_ascii_lowercase(),
            PatternDef {
                source: stream.to_ascii_lowercase(),
                matcher: PatternMatcher::new(exprs, within_secs, schema),
                alerts: Vec::new(),
            },
        );
        Ok(())
    }

    /// Ingest one event (event time in microseconds). Blocks when the
    /// stream's bounded input queue is full (downstream sinks applying
    /// backpressure) rather than buffering without bound.
    pub fn send(&self, stream: &str, ts: i64, row: Row) -> Result<()> {
        let key = stream.to_ascii_lowercase();
        let gate = self.gate(&key);
        gate.acquire(&key);
        let _slot = GateGuard(&gate);
        let mut inner = self.inner.lock();
        let schema = inner
            .streams
            .get(&key)
            .cloned()
            .ok_or_else(|| HanaError::Stream(format!("unknown stream '{stream}'")))?;
        schema.check_row(row.values())?;
        inner.events_in += 1;

        // 1. Raw sinks on the input stream (HDFS archive, Figure 8).
        if let Some(sinks) = inner.sinks.get(&key) {
            for (_, s) in sinks {
                emit(s, &schema, std::slice::from_ref(&row))?;
            }
        }

        // 2. Stateless output streams (filter / transform / ESP join).
        let out_names: Vec<String> = inner
            .out_streams
            .iter()
            .filter(|(_, d)| d.source == key)
            .map(|(n, _)| n.clone())
            .collect();
        for name in out_names {
            let (rows_out, out_schema) = {
                let def = &inner.out_streams[&name];
                let Some(joined) = enrich(&inner, def, &row)? else {
                    continue; // reference join dropped the event
                };
                if !event_passes(&def.query.filter, &def.eval_schema, &joined) {
                    continue;
                }
                let (rows, out_schema) = hana_sql::finish::project_final(
                    std::slice::from_ref(&joined),
                    &def.eval_schema,
                    &def.query,
                )?;
                (rows, out_schema)
            };
            inner.events_emitted += rows_out.len() as u64;
            if let Some(sinks) = inner.sinks.get(&name) {
                for (_, s) in sinks {
                    emit(s, &out_schema, &rows_out)?;
                }
            }
        }

        // 3. Windows (WHERE applies before retention).
        let win_names: Vec<String> = inner
            .windows
            .iter()
            .filter(|(_, d)| d.source == key)
            .map(|(n, _)| n.clone())
            .collect();
        for name in win_names {
            let def = inner.windows.get_mut(&name).expect("window exists");
            if event_passes(&def.query.filter, &def.input_schema, &row) {
                def.state.push(ts, row.clone());
            } else {
                def.state.retire(ts);
            }
        }

        // 4. Patterns.
        let pat_names: Vec<String> = inner
            .patterns
            .iter()
            .filter(|(_, d)| d.source == key)
            .map(|(n, _)| n.clone())
            .collect();
        for name in pat_names {
            let def = inner.patterns.get_mut(&name).expect("pattern exists");
            let completed = def.matcher.on_event(ts, &row);
            def.alerts.extend(completed);
        }
        Ok(())
    }

    /// Current aggregated content of a window (the HANA-join view).
    pub fn window_snapshot(&self, name: &str) -> Result<ResultSet> {
        let inner = self.inner.lock();
        let def = inner
            .windows
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| HanaError::Stream(format!("unknown window '{name}'")))?;
        // Filter was applied at ingestion; compute on a filter-less copy.
        let mut q = def.query.clone();
        q.filter = None;
        let out = window_output(&def.state, &q, &def.input_schema)?;
        Ok(ResultSet::new(out.schema, out.rows))
    }

    /// The output schema of a window (for catalog registration).
    pub fn window_schema(&self, name: &str) -> Result<Schema> {
        Ok(self.window_snapshot(name)?.schema)
    }

    /// Emit the window's aggregated content to its sinks and clear it
    /// (tumbling "prefilter/pre-aggregate and forward"). Returns what
    /// was emitted.
    pub fn flush_window(&self, name: &str) -> Result<ResultSet> {
        let rs = self.window_snapshot(name)?;
        let mut inner = self.inner.lock();
        let key = name.to_ascii_lowercase();
        if let Some(sinks) = inner.sinks.get(&key) {
            for (_, s) in sinks {
                emit(s, &rs.schema, &rs.rows)?;
            }
        }
        inner.events_emitted += rs.rows.len() as u64;
        if let Some(def) = inner.windows.get_mut(&key) {
            def.state.clear();
        }
        Ok(rs)
    }

    /// Drain the completed matches of a pattern.
    pub fn take_alerts(&self, pattern: &str) -> Vec<Vec<Row>> {
        let mut inner = self.inner.lock();
        inner
            .patterns
            .get_mut(&pattern.to_ascii_lowercase())
            .map(|d| std::mem::take(&mut d.alerts))
            .unwrap_or_default()
    }

    /// Replay archived events from HDFS into a stream (development-side
    /// verification of event patterns, §3.2). `parse` maps one archived
    /// line to `(event_time_us, row)`; unparseable lines are skipped.
    pub fn replay_hdfs(
        &self,
        hdfs: &Hdfs,
        path: &str,
        stream: &str,
        parse: impl Fn(&str) -> Option<(i64, Row)>,
    ) -> Result<u64> {
        let mut replayed = 0;
        for line in hdfs.read_lines(path)? {
            if let Some((ts, row)) = parse(&line) {
                self.send(stream, ts, row)?;
                replayed += 1;
            }
        }
        Ok(replayed)
    }

    /// `(events_in, events_emitted)`.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.events_in, inner.events_emitted)
    }

    /// Names of deployed windows.
    pub fn window_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.lock().windows.keys().cloned().collect();
        names.sort();
        names
    }
}

impl Default for EspEngine {
    fn default() -> Self {
        EspEngine::new()
    }
}

/// Evaluate a sink emission.
fn emit(sink: &Sink, schema: &Schema, rows: &[Row]) -> Result<()> {
    match sink {
        Sink::Table { table, writer } => writer(table, schema, rows),
        Sink::Hdfs { hdfs, path } => {
            let lines: Vec<String> = rows.iter().map(|r| r.to_delimited(',')).collect();
            hdfs.append_lines(path, &lines)
        }
        Sink::Memory(buf) => {
            buf.lock().extend(rows.iter().cloned());
            Ok(())
        }
    }
}

/// Resolve the (single) source stream of a window query.
fn resolve_source(inner: &Inner, query: &Query) -> Result<(String, Schema)> {
    let Some(TableRef::Named { name, .. }) = &query.from else {
        return Err(HanaError::Stream(
            "window FROM must name an input stream".into(),
        ));
    };
    if !query.joins.is_empty() {
        return Err(HanaError::Stream(
            "windows aggregate a single stream; use an output stream for ESP joins".into(),
        ));
    }
    let schema = inner
        .streams
        .get(name)
        .cloned()
        .ok_or_else(|| HanaError::Stream(format!("unknown stream '{name}'")))?;
    Ok((name.clone(), schema))
}

/// Build an output-stream definition, resolving ESP-join references.
fn build_out_stream(inner: &Inner, query: Query) -> Result<OutStreamDef> {
    let Some(TableRef::Named {
        name: source,
        alias,
    }) = &query.from
    else {
        return Err(HanaError::Stream(
            "output stream FROM must name an input stream".into(),
        ));
    };
    let stream_schema = inner
        .streams
        .get(source)
        .cloned()
        .ok_or_else(|| HanaError::Stream(format!("unknown stream '{source}'")))?;
    let stream_binding = alias.clone().unwrap_or_else(|| source.clone());
    let mut eval_schema = stream_schema.qualified(&stream_binding);
    let mut ref_joins = Vec::new();
    for j in &query.joins {
        if j.kind != JoinKind::Inner {
            return Err(HanaError::Stream("ESP joins are inner joins".into()));
        }
        let TableRef::Named {
            name: ref_name,
            alias: ref_alias,
        } = &j.table
        else {
            return Err(HanaError::Stream(
                "ESP join target must be a registered reference".into(),
            ));
        };
        let reference = inner.references.get(ref_name).ok_or_else(|| {
            HanaError::Stream(format!(
                "reference '{ref_name}' not registered; push it from HANA first"
            ))
        })?;
        let ref_binding = ref_alias.clone().unwrap_or_else(|| ref_name.clone());
        let ref_schema = reference.schema.qualified(&ref_binding);
        // The ON must be stream_col = ref_col.
        let (skey, rkey) = join_keys(&j.on, &eval_schema, &ref_schema)?;
        eval_schema = eval_schema.join(&ref_schema)?;
        ref_joins.push((ref_name.clone(), skey, rkey));
    }
    Ok(OutStreamDef {
        source: source.clone(),
        query,
        eval_schema,
        ref_joins,
    })
}

fn join_keys(on: &Expr, left: &Schema, right: &Schema) -> Result<(usize, usize)> {
    if let Expr::Binary {
        left: l,
        op: hana_sql::BinOp::Eq,
        right: r,
    } = on
    {
        if let (
            Expr::Column {
                qualifier: lq,
                name: ln,
            },
            Expr::Column {
                qualifier: rq,
                name: rn,
            },
        ) = (l.as_ref(), r.as_ref())
        {
            if let (Ok(a), Ok(b)) = (
                hana_sql::resolve_column(left, lq.as_deref(), ln),
                hana_sql::resolve_column(right, rq.as_deref(), rn),
            ) {
                return Ok((a, b));
            }
            if let (Ok(a), Ok(b)) = (
                hana_sql::resolve_column(left, rq.as_deref(), rn),
                hana_sql::resolve_column(right, lq.as_deref(), ln),
            ) {
                return Ok((a, b));
            }
        }
    }
    Err(HanaError::Stream(format!(
        "ESP join needs an equi ON, got {on}"
    )))
}

/// Enrich one event through the definition's reference joins; `None`
/// when an inner reference join finds no partner.
fn enrich(inner: &Inner, def: &OutStreamDef, row: &Row) -> Result<Option<Row>> {
    let mut acc = row.clone();
    for (ref_name, skey, rkey) in &def.ref_joins {
        let reference = inner
            .references
            .get(ref_name)
            .ok_or_else(|| HanaError::Stream(format!("reference '{ref_name}' vanished")))?;
        let key = &acc[*skey];
        let found = reference
            .rows
            .iter()
            .find(|r| !key.is_null() && &r[*rkey] == key);
        match found {
            Some(r) => acc = acc.concat(r.clone()),
            None => return Ok(None),
        }
    }
    Ok(Some(acc))
}

/// Parse a boolean expression (pattern steps).
fn parse_predicate(src: &str) -> Result<Expr> {
    let stmt = hana_sql::parse_statement(&format!("SELECT * FROM _s WHERE {src}"))?;
    match stmt {
        hana_sql::Statement::Query(q) => q
            .filter
            .ok_or_else(|| HanaError::Stream(format!("empty predicate '{src}'"))),
        _ => Err(HanaError::Stream(format!("bad predicate '{src}'"))),
    }
}

/// Parse a `Value::Null`-free comma-delimited archive line against a
/// schema (inverse of the HDFS sink format; replay helper).
pub fn parse_archive_line(line: &str, schema: &Schema) -> Option<Row> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != schema.len() {
        return None;
    }
    let mut vals = Vec::with_capacity(fields.len());
    for (f, c) in fields.iter().zip(schema.columns()) {
        vals.push(Value::parse_typed(f, c.data_type).ok()?);
    }
    Some(Row(vals))
}
