//! The CCL subset (Continuous Computation Language, paper footnote 2).
//!
//! Supported statements (semicolon-separated scripts):
//!
//! ```text
//! CREATE INPUT STREAM ticks SCHEMA (cell VARCHAR(10), load DOUBLE);
//! CREATE OUTPUT WINDOW avg_load AS
//!     SELECT cell, AVG(load) FROM ticks WHERE load > 0 GROUP BY cell
//!     KEEP 60 SECONDS;
//! CREATE OUTPUT STREAM alerts AS
//!     SELECT cell, load FROM ticks WHERE load > 95;
//! ```
//!
//! The `KEEP` clause trails the SELECT (a small divergence from Sybase
//! CCL, where it follows the FROM item, chosen so the embedded SELECT is
//! plain SQL parsed by `hana-sql`).

use hana_sql::{parse_statement, Query, Statement};
use hana_types::{DataType, HanaError, Result, Schema};

use crate::window::Keep;

/// A parsed CCL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum CclStatement {
    /// `CREATE INPUT STREAM name SCHEMA (...)`
    CreateInputStream {
        /// Stream name.
        name: String,
        /// Event schema.
        schema: Schema,
    },
    /// `CREATE OUTPUT WINDOW name AS SELECT ... [KEEP ...]`
    CreateWindow {
        /// Window name.
        name: String,
        /// The continuous query.
        query: Query,
        /// Retention.
        keep: Keep,
    },
    /// `CREATE OUTPUT STREAM name AS SELECT ...` (stateless).
    CreateOutputStream {
        /// Derived stream name.
        name: String,
        /// The continuous query (no aggregates).
        query: Query,
    },
}

/// Parse a CCL script (`;`-separated).
pub fn parse_ccl(script: &str) -> Result<Vec<CclStatement>> {
    script
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_ccl_statement)
        .collect()
}

/// Parse one CCL statement.
pub fn parse_ccl_statement(text: &str) -> Result<CclStatement> {
    let upper = text.to_uppercase();
    let bad = |m: &str| HanaError::Stream(format!("{m} in CCL statement: {text}"));

    if let Some(rest) = strip_prefix_ci(text, "CREATE INPUT STREAM") {
        // name SCHEMA (col type, ...)
        let schema_pos =
            find_kw(&rest.to_uppercase(), "SCHEMA").ok_or_else(|| bad("missing SCHEMA clause"))?;
        let name = rest[..schema_pos].trim().to_ascii_lowercase();
        if name.is_empty() || name.contains(' ') {
            return Err(bad("bad stream name"));
        }
        let cols_text = rest[schema_pos + "SCHEMA".len()..].trim();
        let inner = cols_text
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| bad("SCHEMA must be parenthesized"))?;
        let mut cols = Vec::new();
        for item in split_top_level(inner) {
            let mut parts = item.trim().splitn(2, char::is_whitespace);
            let cname = parts.next().ok_or_else(|| bad("bad column"))?;
            let ctype = parts.next().ok_or_else(|| bad("missing column type"))?;
            cols.push(hana_types::ColumnDef::new(
                cname,
                DataType::parse_sql(ctype)?,
            ));
        }
        return Ok(CclStatement::CreateInputStream {
            name,
            schema: Schema::new(cols)?,
        });
    }

    for (kw, is_window) in [
        ("CREATE OUTPUT WINDOW", true),
        ("CREATE WINDOW", true),
        ("CREATE OUTPUT STREAM", false),
    ] {
        if let Some(rest) = strip_prefix_ci(text, kw) {
            let as_pos =
                find_kw(&rest.to_uppercase(), "AS").ok_or_else(|| bad("missing AS SELECT"))?;
            let name = rest[..as_pos].trim().to_ascii_lowercase();
            let mut select_text = rest[as_pos + 2..].trim().to_string();
            let mut keep = Keep::All;
            if is_window {
                if let Some(kpos) = find_kw(&select_text.to_uppercase(), "KEEP") {
                    let keep_clause = select_text[kpos + 4..].trim().to_string();
                    select_text.truncate(kpos);
                    keep = parse_keep(&keep_clause).ok_or_else(|| bad("malformed KEEP clause"))?;
                }
            }
            let Statement::Query(query) = parse_statement(select_text.trim())? else {
                return Err(bad("AS must be followed by SELECT"));
            };
            if !is_window {
                let has_agg = query.select.iter().any(|s| s.expr.contains_aggregate());
                if has_agg || !query.group_by.is_empty() {
                    return Err(bad(
                        "output streams are stateless; use a WINDOW for aggregation",
                    ));
                }
                return Ok(CclStatement::CreateOutputStream { name, query });
            }
            return Ok(CclStatement::CreateWindow { name, query, keep });
        }
    }
    let _ = upper;
    Err(bad("unrecognized CCL statement"))
}

fn parse_keep(clause: &str) -> Option<Keep> {
    let mut it = clause.split_whitespace();
    let n: i64 = it.next()?.parse().ok()?;
    let unit = it.next()?.to_uppercase();
    if it.next().is_some() || n <= 0 {
        return None;
    }
    match unit.as_str() {
        "ROWS" | "ROW" => Some(Keep::Rows(n as usize)),
        "SECONDS" | "SECOND" | "SEC" => Some(Keep::Seconds(n)),
        "MINUTES" | "MINUTE" | "MIN" => Some(Keep::Seconds(n * 60)),
        _ => None,
    }
}

/// Case-insensitive prefix strip (whitespace-tolerant).
fn strip_prefix_ci<'a>(text: &'a str, prefix: &str) -> Option<&'a str> {
    let mut rest = text.trim_start();
    for word in prefix.split_whitespace() {
        let t = rest.trim_start();
        if t.len() < word.len() || !t[..word.len()].eq_ignore_ascii_case(word) {
            return None;
        }
        rest = &t[word.len()..];
        // Must be followed by whitespace or end.
        if !rest.is_empty() && !rest.starts_with(char::is_whitespace) {
            return None;
        }
    }
    Some(rest)
}

/// Find a standalone keyword (not inside quotes/identifiers) in an
/// upper-cased haystack; returns its byte offset.
fn find_kw(upper: &str, kw: &str) -> Option<usize> {
    let bytes = upper.as_bytes();
    let mut i = 0;
    let mut in_str = false;
    while i + kw.len() <= upper.len() {
        let c = bytes[i] as char;
        if c == '\'' {
            in_str = !in_str;
            i += 1;
            continue;
        }
        if !in_str
            && upper[i..].starts_with(kw)
            && (i == 0 || !(bytes[i - 1] as char).is_alphanumeric())
            && upper[i + kw.len()..]
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_')
        {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Split on commas not nested in parentheses.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_input_stream() {
        let s = parse_ccl_statement(
            "CREATE INPUT STREAM ticks SCHEMA (cell VARCHAR(10), load DOUBLE, ok BOOLEAN)",
        )
        .unwrap();
        let CclStatement::CreateInputStream { name, schema } = s else {
            panic!()
        };
        assert_eq!(name, "ticks");
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.column(1).data_type, DataType::Double);
    }

    #[test]
    fn parse_window_with_keep() {
        let s = parse_ccl_statement(
            "CREATE OUTPUT WINDOW avg_load AS SELECT cell, AVG(load) FROM ticks \
             WHERE load > 0 GROUP BY cell KEEP 60 SECONDS",
        )
        .unwrap();
        let CclStatement::CreateWindow { name, query, keep } = s else {
            panic!()
        };
        assert_eq!(name, "avg_load");
        assert_eq!(keep, Keep::Seconds(60));
        assert_eq!(query.group_by.len(), 1);

        let s = parse_ccl_statement("CREATE WINDOW recent AS SELECT * FROM ticks KEEP 100 ROWS")
            .unwrap();
        assert!(matches!(
            s,
            CclStatement::CreateWindow {
                keep: Keep::Rows(100),
                ..
            }
        ));
    }

    #[test]
    fn parse_output_stream_rejects_aggregates() {
        let s = parse_ccl_statement(
            "CREATE OUTPUT STREAM alerts AS SELECT cell FROM ticks WHERE load > 95",
        )
        .unwrap();
        assert!(matches!(s, CclStatement::CreateOutputStream { .. }));
        assert!(
            parse_ccl_statement("CREATE OUTPUT STREAM bad AS SELECT SUM(load) FROM ticks").is_err()
        );
    }

    #[test]
    fn parse_script() {
        let stmts = parse_ccl(
            "CREATE INPUT STREAM s SCHEMA (a INT);\n\
             CREATE OUTPUT WINDOW w AS SELECT a FROM s KEEP 5 ROWS;\n",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn keyword_detection_ignores_strings() {
        // 'KEEP' inside a literal must not terminate the SELECT.
        let s = parse_ccl_statement(
            "CREATE OUTPUT STREAM x AS SELECT cell FROM ticks WHERE cell = 'KEEPALIVE'",
        )
        .unwrap();
        let CclStatement::CreateOutputStream { query, .. } = s else {
            panic!()
        };
        assert!(query.filter.is_some());
    }

    #[test]
    fn errors() {
        assert!(parse_ccl_statement("CREATE INPUT STREAM s").is_err());
        assert!(parse_ccl_statement("CREATE OUTPUT WINDOW w AS DELETE FROM t").is_err());
        assert!(
            parse_ccl_statement("CREATE OUTPUT WINDOW w AS SELECT a FROM s KEEP x ROWS").is_err()
        );
        assert!(parse_ccl_statement("DROP EVERYTHING").is_err());
    }
}
