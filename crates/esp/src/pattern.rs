//! Event pattern detection.
//!
//! §3.2: "The SAP Sybase ESP may also detect predefined patterns in the
//! event stream and trigger corresponding actions on the application
//! side." A pattern is an ordered sequence of predicates that must match
//! successive events within a time budget (`WITHIN n SECONDS`).

use hana_sql::{evaluate_predicate, Expr};
use hana_types::{Row, Schema};

/// A compiled pattern matcher over one stream.
pub struct PatternMatcher {
    steps: Vec<Expr>,
    within_us: i64,
    schema: Schema,
    /// Partial matches: (start event time, next step index, captured rows).
    partial: Vec<(i64, usize, Vec<Row>)>,
}

impl PatternMatcher {
    /// Build a matcher for `steps` (each a boolean expression over the
    /// stream schema) that must complete within `within_secs`.
    pub fn new(steps: Vec<Expr>, within_secs: i64, schema: Schema) -> PatternMatcher {
        PatternMatcher {
            steps,
            within_us: within_secs * 1_000_000,
            schema,
            partial: Vec::new(),
        }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the pattern has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Feed one event; returns the sequences completed by this event
    /// (each is the captured row per step).
    pub fn on_event(&mut self, ts: i64, row: &Row) -> Vec<Vec<Row>> {
        if self.steps.is_empty() {
            return Vec::new();
        }
        // Expire partials that ran out of time.
        self.partial
            .retain(|(start, _, _)| ts - start <= self.within_us);

        let mut completed = Vec::new();
        let matches_step =
            |i: usize| evaluate_predicate(&self.steps[i], &self.schema, row).unwrap_or(false);

        // Advance existing partials (each at most one step per event).
        let mut advanced = Vec::new();
        for (start, next, mut captured) in std::mem::take(&mut self.partial) {
            if matches_step(next) {
                captured.push(row.clone());
                if next + 1 == self.steps.len() {
                    completed.push(captured);
                } else {
                    advanced.push((start, next + 1, captured));
                }
            } else {
                advanced.push((start, next, captured));
            }
        }
        self.partial = advanced;

        // Start a new partial if the event matches step 0.
        if matches_step(0) {
            if self.steps.len() == 1 {
                completed.push(vec![row.clone()]);
            } else {
                self.partial.push((ts, 1, vec![row.clone()]));
            }
        }
        completed
    }

    /// Currently tracked partial matches (monitoring).
    pub fn partial_count(&self) -> usize {
        self.partial.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_sql::{parse_statement, Statement};
    use hana_types::{DataType, Value};

    fn pred(sql: &str) -> Expr {
        let Statement::Query(q) = parse_statement(&format!("SELECT * FROM t WHERE {sql}")).unwrap()
        else {
            panic!()
        };
        q.filter.unwrap()
    }

    fn schema() -> Schema {
        Schema::of(&[("kind", DataType::Varchar), ("v", DataType::Double)])
    }

    fn ev(kind: &str, v: f64) -> Row {
        Row::from_values([Value::from(kind), Value::Double(v)])
    }

    #[test]
    fn sequence_completes_in_order() {
        let mut m = PatternMatcher::new(
            vec![pred("kind = 'warn'"), pred("kind = 'error'")],
            10,
            schema(),
        );
        assert!(m.on_event(0, &ev("ok", 0.0)).is_empty());
        assert!(m.on_event(1_000_000, &ev("warn", 1.0)).is_empty());
        assert_eq!(m.partial_count(), 1);
        let done = m.on_event(2_000_000, &ev("error", 2.0));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].len(), 2);
        assert_eq!(done[0][0][0], Value::from("warn"));
        assert_eq!(m.partial_count(), 0);
    }

    #[test]
    fn timeout_expires_partials() {
        let mut m = PatternMatcher::new(
            vec![pred("kind = 'warn'"), pred("kind = 'error'")],
            5,
            schema(),
        );
        m.on_event(0, &ev("warn", 1.0));
        // 6 seconds later: the partial is stale.
        let done = m.on_event(6_000_000, &ev("error", 2.0));
        assert!(done.is_empty());
        assert_eq!(m.partial_count(), 0);
    }

    #[test]
    fn overlapping_matches() {
        let mut m =
            PatternMatcher::new(vec![pred("kind = 'a'"), pred("kind = 'b'")], 100, schema());
        m.on_event(0, &ev("a", 1.0));
        m.on_event(1, &ev("a", 2.0));
        let done = m.on_event(2, &ev("b", 3.0));
        assert_eq!(done.len(), 2, "both partials complete on one 'b'");
    }

    #[test]
    fn single_step_pattern_fires_immediately() {
        let mut m = PatternMatcher::new(vec![pred("v > 95")], 1, schema());
        assert_eq!(m.on_event(0, &ev("x", 99.0)).len(), 1);
        assert!(m.on_event(1, &ev("x", 10.0)).is_empty());
    }
}
