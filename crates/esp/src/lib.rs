//! # hana-esp
//!
//! The event stream processor ("HANA ESP", §3.2 of the paper): a CCL
//! subset over input streams, count/time windows with retention and
//! aggregation, stateless derived streams with **ESP joins** against
//! reference data pushed from HANA, pattern detection with time budgets,
//! adapters forwarding into HANA tables or archiving raw events to HDFS,
//! and replay of archived streams.
//!
//! ```
//! use hana_esp::EspEngine;
//! use hana_types::{Row, Value};
//!
//! let esp = EspEngine::new();
//! esp.deploy(
//!     "CREATE INPUT STREAM calls SCHEMA (cell VARCHAR(10), dropped INT);
//!      CREATE OUTPUT WINDOW drops AS
//!          SELECT cell, SUM(dropped) AS d FROM calls GROUP BY cell
//!          KEEP 100 ROWS;",
//! ).unwrap();
//! esp.send("calls", 0, Row::from_values([Value::from("c1"), Value::Int(2)])).unwrap();
//! let snap = esp.window_snapshot("drops").unwrap();
//! assert_eq!(snap.len(), 1);
//! ```

mod ccl;
mod engine;
mod pattern;
mod window;

pub use ccl::{parse_ccl, parse_ccl_statement, CclStatement};
pub use engine::{
    parse_archive_line, EspEngine, EspTargetKind, Sink, SinkId, TableWriter,
    DEFAULT_INPUT_QUEUE_EVENTS,
};
pub use pattern::PatternMatcher;
pub use window::{validate_window_query, window_output, Keep, WindowState};
