//! Stream windows with retention and incremental aggregation.

use std::collections::VecDeque;

use hana_sql::finish::{as_aggregate, collect_aggregates};
use hana_sql::{evaluate, Expr, Query};
use hana_types::{Accumulator, AggFunc, HanaError, Result, Row, Schema, Value};

/// Retention policy of a window (`KEEP n ROWS` / `KEEP n SECONDS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keep {
    /// Keep the most recent `n` rows.
    Rows(usize),
    /// Keep rows younger than `n` seconds (event time).
    Seconds(i64),
    /// Keep everything until explicitly flushed (tumbling on demand).
    All,
}

/// One window's live contents: filtered events with their event-time
/// timestamps, plus (for aggregating windows) per-group accumulators
/// maintained incrementally where retraction is supported.
pub struct WindowState {
    keep: Keep,
    rows: VecDeque<(i64, Row)>,
    /// Total events ever admitted (monitoring).
    pub admitted: u64,
    /// Events expired by retention.
    pub expired: u64,
}

impl WindowState {
    /// A fresh window with the given retention.
    pub fn new(keep: Keep) -> WindowState {
        WindowState {
            keep,
            rows: VecDeque::new(),
            admitted: 0,
            expired: 0,
        }
    }

    /// The retention policy.
    pub fn keep(&self) -> Keep {
        self.keep
    }

    /// Admit one event (must arrive in non-decreasing event time for
    /// time-based retention to be exact).
    pub fn push(&mut self, ts: i64, row: Row) {
        self.rows.push_back((ts, row));
        self.admitted += 1;
        self.retire(ts);
    }

    /// Apply retention relative to `now`.
    pub fn retire(&mut self, now: i64) {
        match self.keep {
            Keep::Rows(n) => {
                while self.rows.len() > n {
                    self.rows.pop_front();
                    self.expired += 1;
                }
            }
            Keep::Seconds(s) => {
                let horizon = now - s * 1_000_000;
                while self.rows.front().is_some_and(|(ts, _)| *ts < horizon) {
                    self.rows.pop_front();
                    self.expired += 1;
                }
            }
            Keep::All => {}
        }
    }

    /// Current number of retained rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Snapshot the retained rows.
    pub fn rows(&self) -> Vec<Row> {
        self.rows.iter().map(|(_, r)| r.clone()).collect()
    }

    /// Clear the window (tumbling emission).
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

/// Evaluate the aggregating SELECT of a window definition over the
/// retained rows, producing the window's output relation.
///
/// Uses the shared `_g/_a` convention and driver epilogue, so windows
/// aggregate exactly like every other engine in the platform.
pub fn window_output(
    state: &WindowState,
    query: &Query,
    input_schema: &Schema,
) -> Result<ResultRows> {
    let rows = state.rows();
    let aggs = collect_aggregates(query);
    if query.group_by.is_empty() && aggs.is_empty() {
        // Plain (non-aggregating) window: retained rows, projected.
        let (out, schema) = hana_sql::finish::finish_query(rows, input_schema, query)?;
        return Ok(ResultRows { rows: out, schema });
    }
    // Hash-aggregate the window contents.
    let mut groups: std::collections::HashMap<Vec<Value>, Vec<Accumulator>> =
        std::collections::HashMap::new();
    for r in &rows {
        let mut key = Vec::with_capacity(query.group_by.len());
        for g in &query.group_by {
            key.push(evaluate(g, input_schema, r)?);
        }
        let accs = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|(f, _)| f.accumulator()).collect());
        for (acc, (_, arg)) in accs.iter_mut().zip(&aggs) {
            match arg {
                Some(e) => acc.add(&evaluate(e, input_schema, r)?),
                None => acc.add(&Value::Null),
            }
        }
    }
    if groups.is_empty() && query.group_by.is_empty() {
        groups.insert(
            Vec::new(),
            aggs.iter().map(|(f, _)| f.accumulator()).collect(),
        );
    }
    let agg_schema = hana_sql::finish::aggregate_output_schema(query, input_schema)?;
    let mut agg_rows: Vec<Row> = groups
        .into_iter()
        .map(|(mut k, accs)| {
            k.extend(accs.iter().map(|a| a.finish()));
            Row(k)
        })
        .collect();
    agg_rows.sort();
    let (out, schema) = hana_sql::finish::finish_query(agg_rows, &agg_schema, query)?;
    Ok(ResultRows { rows: out, schema })
}

/// A window's output relation.
pub struct ResultRows {
    /// Output rows.
    pub rows: Vec<Row>,
    /// Output schema.
    pub schema: Schema,
}

/// Validate at definition time that a window query's aggregates are
/// supported (guards against late runtime surprises).
pub fn validate_window_query(query: &Query) -> Result<()> {
    for (f, arg) in collect_aggregates(query) {
        if f == AggFunc::Count && arg.is_none() {
            return Err(HanaError::Stream("COUNT requires an argument".into()));
        }
    }
    for item in &query.select {
        // Nested aggregates are invalid.
        let mut depth_err = false;
        item.expr.walk(&mut |e| {
            if let Some((_, Some(arg))) = as_aggregate(e) {
                if arg.contains_aggregate() {
                    depth_err = true;
                }
            }
        });
        if depth_err {
            return Err(HanaError::Stream(format!(
                "nested aggregate in window select: {}",
                item.expr
            )));
        }
    }
    Ok(())
}

/// Helper used by the engine: evaluate a WHERE filter on one event.
pub fn event_passes(filter: &Option<Expr>, schema: &Schema, row: &Row) -> bool {
    match filter {
        None => true,
        Some(f) => hana_sql::evaluate_predicate(f, schema, row).unwrap_or(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_sql::{parse_statement, Statement};
    use hana_types::DataType;

    fn q(sql: &str) -> Query {
        let Statement::Query(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        q
    }

    fn schema() -> Schema {
        Schema::of(&[("cell", DataType::Varchar), ("load", DataType::Double)])
    }

    fn ev(cell: &str, load: f64) -> Row {
        Row::from_values([Value::from(cell), Value::Double(load)])
    }

    #[test]
    fn row_retention() {
        let mut w = WindowState::new(Keep::Rows(3));
        for i in 0..5 {
            w.push(i, ev("c1", i as f64));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.expired, 2);
        assert_eq!(w.rows()[0][1], Value::Double(2.0));
    }

    #[test]
    fn time_retention() {
        let mut w = WindowState::new(Keep::Seconds(10));
        w.push(0, ev("c1", 1.0));
        w.push(5_000_000, ev("c1", 2.0));
        w.push(11_000_000, ev("c1", 3.0)); // expires ts=0
        assert_eq!(w.len(), 2);
        w.retire(30_000_000);
        assert_eq!(w.len(), 0);
        assert_eq!(w.expired, 3);
    }

    #[test]
    fn aggregating_window_output() {
        let mut w = WindowState::new(Keep::All);
        for (c, l) in [("c1", 10.0), ("c2", 20.0), ("c1", 30.0)] {
            w.push(0, ev(c, l));
        }
        let out = window_output(
            &w,
            &q("SELECT cell, AVG(load) AS avg_load, COUNT(*) FROM s GROUP BY cell ORDER BY cell"),
            &schema(),
        )
        .unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][1], Value::Double(20.0));
        assert_eq!(out.schema.index_of("avg_load"), Some(1));
    }

    #[test]
    fn plain_window_projects() {
        let mut w = WindowState::new(Keep::Rows(10));
        w.push(0, ev("c9", 99.0));
        let out = window_output(&w, &q("SELECT load FROM s WHERE cell = 'c9'"), &schema()).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Double(99.0));
    }

    #[test]
    fn empty_window_global_aggregate() {
        let w = WindowState::new(Keep::Rows(5));
        let out = window_output(&w, &q("SELECT COUNT(*), SUM(load) FROM s"), &schema()).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Int(0));
        assert!(out.rows[0][1].is_null());
    }

    #[test]
    fn validation_rejects_nested_aggregates() {
        assert!(validate_window_query(&q("SELECT SUM(load) FROM s")).is_ok());
        assert!(validate_window_query(&q("SELECT SUM(AVG(load)) FROM s")).is_err());
    }
}
