//! # hana-data-platform
//!
//! Umbrella crate for the reproduction of *"SAP HANA — From Relational
//! OLAP Database to Big Data Infrastructure"* (EDBT 2015).
//!
//! The facade lives in [`hana_core`]; this crate re-exports it together
//! with the individual subsystem crates so examples and integration tests
//! can reach everything through one dependency.
//!
//! ```
//! use hana_data_platform::platform::HanaPlatform;
//!
//! let hana = HanaPlatform::new_in_memory();
//! let session = hana.connect("SYSTEM", "manager").unwrap();
//! hana.execute_sql(&session, "CREATE COLUMN TABLE t (a INTEGER, b VARCHAR(10))").unwrap();
//! hana.execute_sql(&session, "INSERT INTO t VALUES (1, 'x')").unwrap();
//! let rs = hana.execute_sql(&session, "SELECT a, b FROM t").unwrap();
//! assert_eq!(rs.len(), 1);
//! ```

pub use hana_core as platform;

pub use hana_columnar as columnar;
pub use hana_dist as dist;
pub use hana_esp as esp;
pub use hana_hadoop as hadoop;
pub use hana_ingest as ingest;
pub use hana_iq as iq;
pub use hana_obs as obs;
pub use hana_pal as pal;
pub use hana_query as query;
pub use hana_rowstore as rowstore;
pub use hana_sda as sda;
pub use hana_sql as sql;
pub use hana_tpch as tpch;
pub use hana_txn as txn;
pub use hana_types as types;

pub use hana_core::HanaPlatform;
pub use hana_types::{DataType, Date, HanaError, Result, ResultSet, Row, Schema, Value};
